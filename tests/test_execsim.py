"""Tests for the execution simulator."""

import pytest

from repro.amr.trace import AdaptationTrace
from repro.config import SimulatorOptions
from repro.execsim import (
    CostModel,
    ExecutionSimulator,
    StaticSelector,
)
from repro.gridsys import linux_cluster, sp2_blue_horizon
from repro.partitioners import (
    EqualPartitioner,
    GMISPSPPartitioner,
    HeterogeneousPartitioner,
    ISPPartitioner,
)


class TestCostModel:
    def test_defaults_valid(self):
        CostModel()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel(ghost_width=-1.0)
        with pytest.raises(ValueError):
            CostModel(latency_per_neighbor=-1e-3)


class TestSimulatorBasics:
    def test_run_produces_records(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(8))
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert len(res.records) == len(small_rm3d_trace)
        assert res.total_runtime > 0
        assert res.useful_work > 0
        assert 90.0 < res.amr_efficiency_pct <= 100.0

    def test_coarse_step_coverage(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        total_steps = sum(r.coarse_steps for r in res.records)
        assert total_steps == small_rm3d_trace.meta["num_coarse_steps"]

    def test_num_procs_capped_by_cluster(self):
        with pytest.raises(ValueError):
            ExecutionSimulator(sp2_blue_horizon(4), num_procs=8)

    def test_empty_trace_rejected(self):
        sim = ExecutionSimulator(sp2_blue_horizon(2))
        with pytest.raises(ValueError):
            sim.run(AdaptationTrace(), StaticSelector(ISPPartitioner()))

    def test_zero_coarse_steps_rejected(self, small_rm3d_trace):
        """An explicit num_coarse_steps=0 must fail loudly, not silently
        fall back to the trace metadata (falsy-zero coalescing bug)."""
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        selector = StaticSelector(ISPPartitioner())
        with pytest.raises(ValueError, match="num_coarse_steps"):
            sim.run(small_rm3d_trace, selector, num_coarse_steps=0)
        with pytest.raises(ValueError, match="num_coarse_steps"):
            sim.run(small_rm3d_trace, selector, num_coarse_steps=-4)

    def test_explicit_coarse_steps_respected(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        selector = StaticSelector(ISPPartitioner())
        res = sim.run(small_rm3d_trace, selector, num_coarse_steps=200)
        assert sum(r.coarse_steps for r in res.records) == 200

    def test_proc_work_conserved(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        expected = sum(
            s.hierarchy.load_per_coarse_step() * 4 for s in small_rm3d_trace
        )
        assert res.proc_work.sum() == pytest.approx(expected, rel=1e-9)

    def test_partitioner_usage_static(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert res.partitioner_usage() == {"ISP": len(small_rm3d_trace)}


class TestScalingBehaviors:
    def test_more_procs_faster(self, small_rm3d_trace):
        fast = ExecutionSimulator(sp2_blue_horizon(16)).run(
            small_rm3d_trace, StaticSelector(GMISPSPPartitioner())
        )
        slow = ExecutionSimulator(sp2_blue_horizon(2)).run(
            small_rm3d_trace, StaticSelector(GMISPSPPartitioner())
        )
        assert fast.total_runtime < slow.total_runtime

    def test_background_load_slows_run(self, small_rm3d_trace):
        idle = ExecutionSimulator(sp2_blue_horizon(8)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        # same nominal speeds but heavy background load
        from repro.apps.loadgen import LoadPattern

        loaded_cluster = linux_cluster(
            8, load_pattern=LoadPattern.STEPPED, max_load=0.8, seed=3,
            speeds=[sp2_blue_horizon(1).nodes[0].cpu_speed] * 8,
        )
        loaded = ExecutionSimulator(loaded_cluster).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        assert loaded.total_runtime > idle.total_runtime

    def test_capacity_aware_beats_equal_on_loaded_cluster(self, small_rm3d_trace):
        """The Table 5 effect in miniature."""
        from repro.apps.loadgen import LoadPattern
        from repro.core import CapacityCalculator
        from repro.monitoring import ResourceMonitor

        cluster = linux_cluster(8, load_pattern=LoadPattern.STEPPED,
                                max_load=0.8, seed=5)
        monitor = ResourceMonitor(cluster, seed=6)
        monitor.sample_range(0.0, 32.0, 1.0)
        caps = CapacityCalculator(monitor).relative_capacities()

        equal = ExecutionSimulator(cluster).run(
            small_rm3d_trace, StaticSelector(EqualPartitioner())
        )
        adaptive = ExecutionSimulator(cluster, options=SimulatorOptions(capacities=caps)).run(
            small_rm3d_trace, StaticSelector(HeterogeneousPartitioner())
        )
        assert adaptive.total_runtime < equal.total_runtime


class TestCostAttribution:
    def test_comm_zero_on_single_proc(self, small_rm3d_trace):
        res = ExecutionSimulator(sp2_blue_horizon(1)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        assert res.total_comm_time == 0.0
        assert res.mean_imbalance_pct == pytest.approx(0.0)

    def test_regrid_cost_nonzero(self, small_rm3d_trace):
        res = ExecutionSimulator(sp2_blue_horizon(4)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        assert res.total_regrid_time > 0.0

    def test_patch_shuffle_charged_for_sfc(self, small_rm3d_trace):
        from repro.partitioners import SFCPartitioner

        cm = CostModel(seconds_per_patch_shuffle=0.0)
        cm_charged = CostModel(seconds_per_patch_shuffle=1e-2)
        free = ExecutionSimulator(sp2_blue_horizon(4), cost_model=cm).run(
            small_rm3d_trace, StaticSelector(SFCPartitioner())
        )
        charged = ExecutionSimulator(
            sp2_blue_horizon(4), cost_model=cm_charged
        ).run(small_rm3d_trace, StaticSelector(SFCPartitioner()))
        assert charged.total_regrid_time > free.total_regrid_time


class TestFaultTolerantReplay:
    def test_permanent_failure_recovers_natively(self, small_rm3d_trace):
        from repro.gridsys import FailureEvent, linux_cluster

        cluster = linux_cluster(4, seed=1)
        cluster.failures.add(FailureEvent(node_id=2, t_fail=0.0))
        sim = ExecutionSimulator(cluster)
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        # The run completes, no coarse-step work is lost, and the failed
        # processor owns nothing once the failure is detected.
        clean = ExecutionSimulator(linux_cluster(4, seed=1)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        assert sum(r.coarse_steps for r in res.records) == sum(
            r.coarse_steps for r in clean.records
        )
        assert res.num_recoveries >= 1
        assert res.total_recovery_time > 0.0
        for rec in res.records[1:]:
            assert 2 not in rec.owners
            assert set(rec.owners) <= set(rec.live_procs)

    def test_fault_tolerance_disabled_stalls_until_repair(
        self, small_rm3d_trace
    ):
        from repro.gridsys import FailureEvent, sp2_blue_horizon

        cluster = sp2_blue_horizon(4)
        cluster.failures.add(FailureEvent(node_id=2, t_fail=0.0, t_recover=50.0))
        sim = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=False))
        res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert res.num_recoveries == 0
        clean = ExecutionSimulator(
            sp2_blue_horizon(4), options=SimulatorOptions(fault_tolerance=False)
        ).run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert res.total_runtime == pytest.approx(
            clean.total_runtime + 50.0, rel=1e-4
        )

    def test_fault_tolerance_disabled_permanent_failure_raises(
        self, small_rm3d_trace
    ):
        from repro.gridsys import FailureEvent, linux_cluster

        cluster = linux_cluster(4, seed=1)
        cluster.failures.add(FailureEvent(node_id=2, t_fail=0.0))
        sim = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=False))
        with pytest.raises(RuntimeError, match="fault tolerance"):
            sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
