"""Tests for the regridder and regrid policy."""

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.workload import composite_load_map


class TestPolicyValidation:
    def test_defaults_valid(self):
        RegridPolicy()

    def test_thresholds_must_increase(self):
        with pytest.raises(ValueError):
            RegridPolicy(thresholds=(0.5, 0.3))

    def test_ratio_minimum(self):
        with pytest.raises(ValueError):
            RegridPolicy(ratio=1)

    def test_max_refined_levels(self):
        assert RegridPolicy(thresholds=(0.1, 0.2, 0.3)).max_refined_levels == 3


class TestRegrid:
    def setup_method(self):
        self.domain = Box.from_shape((32, 16, 16))
        self.policy = RegridPolicy(thresholds=(0.3, 0.7), buffer_cells=1)
        self.regridder = Regridder(self.domain, self.policy)

    def test_no_error_no_refinement(self):
        h = self.regridder.regrid(np.zeros(self.domain.shape))
        assert h.num_levels == 1

    def test_nested_levels(self):
        err = np.zeros(self.domain.shape)
        err[8:16, 4:12, 4:12] = 0.5
        err[10:14, 6:10, 6:10] = 0.9
        h = self.regridder.regrid(err)
        assert h.num_levels == 3
        assert h.is_properly_nested()

    def test_refinement_covers_flags(self):
        err = np.zeros(self.domain.shape)
        err[8:16, 4:12, 4:12] = 0.5
        h = self.regridder.regrid(err)
        mask = h.refined_mask()
        assert mask[8:16, 4:12, 4:12].all()

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            self.regridder.regrid(np.zeros((4, 4, 4)))

    def test_load_field_sets_patch_cost(self):
        err = np.zeros(self.domain.shape)
        err[4:10, 4:10, 4:10] = 0.5
        load = np.ones(self.domain.shape)
        load[4:10, 4:10, 4:10] = 3.0
        h = self.regridder.regrid(err, load)
        fine_patches = list(h.levels[1])
        assert all(p.load_per_cell > 1.0 for p in fine_patches)

    def test_load_field_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="load field"):
            self.regridder.regrid(
                np.zeros(self.domain.shape), np.zeros((2, 2, 2))
            )

    def test_patch_ids_unique_across_regrids(self):
        err = np.zeros(self.domain.shape)
        err[8:16, 4:12, 4:12] = 0.5
        h1 = self.regridder.regrid(err)
        h2 = self.regridder.regrid(err)
        ids1 = {p.patch_id for lvl in h1 for p in lvl}
        ids2 = {p.patch_id for lvl in h2 for p in lvl}
        assert not ids1 & ids2


class TestWorkloadMap:
    def test_base_only(self):
        domain = Box.from_shape((8, 8, 8))
        rg = Regridder(domain, RegridPolicy())
        h = rg.regrid(np.zeros(domain.shape))
        wm = composite_load_map(h)
        assert wm.total == pytest.approx(domain.num_cells)
        assert (wm.values == 1.0).all()

    def test_refined_column_weight(self):
        """A level-1 (ratio 2) cell column adds 2^4 load per base cell."""
        domain = Box.from_shape((16, 8, 8))
        rg = Regridder(domain, RegridPolicy(thresholds=(0.5,), buffer_cells=0,
                                            min_width=2))
        err = np.zeros(domain.shape)
        err[4:8, 2:6, 2:6] = 0.9
        h = rg.regrid(err)
        wm = composite_load_map(h)
        inside = wm.values[5, 3, 3]
        outside = wm.values[0, 0, 0]
        assert outside == pytest.approx(1.0)
        # base contributes 1, level-1 contributes 2 sweeps * 8 cells = 16
        assert inside == pytest.approx(1.0 + 16.0)

    def test_total_matches_hierarchy_load(self, small_hierarchy):
        wm = composite_load_map(small_hierarchy)
        assert wm.total == pytest.approx(
            small_hierarchy.load_per_coarse_step(), rel=1e-9
        )

    def test_box_load(self, small_hierarchy):
        wm = composite_load_map(small_hierarchy)
        whole = wm.box_load(small_hierarchy.domain)
        assert whole == pytest.approx(wm.total)
        assert wm.box_load(Box((-5, -5, -5), (-1, -1, -1))) == 0.0
