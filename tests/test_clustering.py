"""Tests for Berger–Rigoutsos clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr.box import Box
from repro.amr.clustering import cluster_flags


def coverage_holds(flags, boxes, origin=(0, 0, 0)):
    """Every flagged cell lies inside exactly one box."""
    covered = np.zeros(flags.shape, dtype=int)
    for b in boxes:
        covered[b.shift(tuple(-o for o in origin)).slices()] += 1
    assert (covered <= 1).all(), "boxes overlap"
    assert (covered[flags] == 1).all(), "flag not covered"


class TestBasics:
    def test_empty_flags(self):
        assert cluster_flags(np.zeros((4, 4, 4), dtype=bool)) == []

    def test_single_blob(self):
        flags = np.zeros((16, 16, 16), dtype=bool)
        flags[4:8, 4:8, 4:8] = True
        boxes = cluster_flags(flags)
        coverage_holds(flags, boxes)
        assert len(boxes) == 1
        assert boxes[0] == Box((4, 4, 4), (8, 8, 8))

    def test_two_separated_blobs(self):
        flags = np.zeros((32, 8, 8), dtype=bool)
        flags[2:6, 2:6, 2:6] = True
        flags[20:24, 2:6, 2:6] = True
        boxes = cluster_flags(flags)
        coverage_holds(flags, boxes)
        assert len(boxes) == 2

    def test_origin_offset(self):
        flags = np.zeros((8, 8, 8), dtype=bool)
        flags[1:3, 1:3, 1:3] = True
        boxes = cluster_flags(flags, origin=(10, 20, 30))
        assert boxes[0] == Box((11, 21, 31), (13, 23, 33))

    def test_efficiency_reached(self):
        rng = np.random.default_rng(0)
        flags = rng.random((16, 16, 16)) < 0.15
        boxes = cluster_flags(flags, min_efficiency=0.5, min_width=2)
        coverage_holds(flags, boxes)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            cluster_flags(np.ones((2, 2, 2), dtype=bool), min_efficiency=0.0)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            cluster_flags(np.ones((2, 2), dtype=bool))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_flags_covered(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(x) for x in rng.integers(3, 14, 3))
        flags = rng.random(shape) < rng.uniform(0.02, 0.4)
        boxes = cluster_flags(flags, min_efficiency=0.6, min_width=2)
        coverage_holds(flags, boxes)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_efficiency_of_leaf_boxes(self, seed):
        """Accepted boxes that could still split meet the efficiency bar."""
        rng = np.random.default_rng(seed)
        flags = rng.random((12, 12, 12)) < 0.2
        min_eff, min_width = 0.55, 2
        boxes = cluster_flags(flags, min_efficiency=min_eff, min_width=min_width)
        for b in boxes:
            region = flags[b.slices()]
            splittable = any(s >= 2 * min_width for s in b.shape)
            if splittable:
                # Tight-bounded leaf boxes can fall slightly below the bar
                # only if no legal cut existed; verify they are not empty.
                assert region.any()
            else:
                assert region.any()
