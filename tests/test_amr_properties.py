"""Property-based tests over the AMR pipeline: regrid → workload → units."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.workload import composite_load_map
from repro.partitioners import build_units
from repro.util.rng import ensure_rng


def _random_error_field(rng, shape):
    """A few random bumps, normalized to [0, 1]."""
    field = np.zeros(shape)
    ext = np.asarray(shape, dtype=float)
    for _ in range(int(rng.integers(1, 5))):
        center = rng.uniform(0.1, 0.9, 3) * ext
        sigma = rng.uniform(1.5, 4.0)
        x, y, z = np.ogrid[: shape[0], : shape[1], : shape[2]]
        r2 = (
            ((x + 0.5 - center[0]) / sigma) ** 2
            + ((y + 0.5 - center[1]) / sigma) ** 2
            + ((z + 0.5 - center[2]) / sigma) ** 2
        )
        field = np.maximum(field, rng.uniform(0.4, 1.0) * np.exp(-0.5 * r2))
    return np.clip(field, 0.0, 1.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_regrid_pipeline_invariants(seed):
    """For random error fields: the hierarchy is properly nested, its
    refined mask covers every flagged cell, the composite load map total
    equals the hierarchy load, and composite units conserve it at every
    granularity."""
    rng = ensure_rng(seed)
    shape = tuple(int(v) for v in rng.integers(12, 28, 3))
    domain = Box.from_shape(shape)
    policy = RegridPolicy(thresholds=(0.3, 0.7), buffer_cells=1)
    regridder = Regridder(domain, policy)
    err = _random_error_field(rng, shape)

    h = regridder.regrid(err)
    assert h.is_properly_nested()

    mask = h.refined_mask()
    assert mask[err > 0.3].all(), "flagged cells must be refined"

    wm = composite_load_map(h)
    assert wm.total == pytest.approx(h.load_per_coarse_step(), rel=1e-9)

    for g in (1, 2, 3):
        units = build_units(wm, granularity=g)
        assert units.total_load == pytest.approx(wm.total, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_regrid_deterministic(seed):
    """Same error field → structurally identical hierarchy."""
    rng = ensure_rng(seed)
    shape = (16, 12, 12)
    err = _random_error_field(rng, shape)
    policy = RegridPolicy(thresholds=(0.35, 0.75))
    a = Regridder(Box.from_shape(shape), policy).regrid(err)
    b = Regridder(Box.from_shape(shape), policy).regrid(err)
    assert a.num_levels == b.num_levels
    assert a.total_cells == b.total_cells
    for la, lb in zip(a.levels, b.levels):
        assert [p.box for p in la] == [p.box for p in lb]
