"""Tests for NWS-style monitoring and forecasting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gridsys import FailureEvent, sp2_blue_horizon
from repro.monitoring import (
    AdaptiveMean,
    ExponentialSmoothing,
    ForecasterEnsemble,
    LastValue,
    MeasurementStream,
    ResourceMonitor,
    RunningMean,
    SlidingMedian,
    SlidingWindowMean,
)


class TestStream:
    def test_append_and_read(self):
        s = MeasurementStream("x", capacity=4)
        for t in range(6):
            s.append(float(t), float(t * 10))
        assert len(s) == 4  # bounded window
        assert s.last == 50.0
        assert s.last_time == 5.0
        assert s.values().tolist() == [20.0, 30.0, 40.0, 50.0]
        assert s.values(window=2).tolist() == [40.0, 50.0]

    def test_time_must_advance(self):
        s = MeasurementStream("x")
        s.append(1.0, 0.0)
        with pytest.raises(ValueError):
            s.append(1.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MeasurementStream("x").last


class TestPredictors:
    def test_last_value(self):
        p = LastValue()
        with pytest.raises(ValueError):
            p.predict()
        p.update(3.0)
        p.update(7.0)
        assert p.predict() == 7.0

    def test_running_mean(self):
        p = RunningMean()
        for v in (1.0, 2.0, 3.0):
            p.update(v)
        assert p.predict() == pytest.approx(2.0)

    def test_sliding_window(self):
        p = SlidingWindowMean(2)
        for v in (10.0, 2.0, 4.0):
            p.update(v)
        assert p.predict() == pytest.approx(3.0)

    def test_sliding_median_robust_to_spike(self):
        p = SlidingMedian(5)
        for v in (1.0, 1.0, 9.0, 1.0, 1.0):
            p.update(v)
        assert p.predict() == 1.0

    def test_exponential_smoothing(self):
        p = ExponentialSmoothing(0.5)
        p.update(0.0)
        p.update(10.0)
        assert p.predict() == pytest.approx(5.0)

    def test_adaptive_mean_tracks_level_shift(self):
        slow = RunningMean()
        fast = AdaptiveMean(max_window=16)
        series = [1.0] * 30 + [10.0] * 10
        for v in series:
            slow.update(v)
            fast.update(v)
        assert abs(fast.predict() - 10.0) < abs(slow.predict() - 10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            AdaptiveMean(max_window=2)


class TestEnsemble:
    def test_selects_low_error_predictor(self):
        """On a constant series with one spike, the median beats last-value
        and the ensemble converges on a robust predictor."""
        ens = ForecasterEnsemble()
        rng = np.random.default_rng(0)
        for i in range(200):
            v = 5.0 + 0.01 * rng.standard_normal()
            if i % 17 == 0:
                v = 50.0
            ens.update(v)
        assert abs(ens.predict() - 5.0) < 5.0

    def test_postcast_errors_reported(self):
        ens = ForecasterEnsemble()
        for v in (1.0, 2.0, 3.0):
            ens.update(v)
        errs = ens.postcast_errors()
        assert set(errs) == {p.name for p in ens.predictors}
        assert all(e >= 0 for e in errs.values())

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ForecasterEnsemble().predict()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
    def test_ensemble_never_worse_than_worst(self, series):
        """Ensemble postcast error is bounded by its member errors."""
        ens = ForecasterEnsemble()
        for v in series:
            ens.update(v)
        errs = ens.postcast_errors()
        best = ens.predictors[ens.best_index].name
        assert errs[best] == min(errs.values())


class TestResourceMonitor:
    def test_sampling_and_state(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, seed=1)
        mon.sample_range(0.0, 20.0, 1.0)
        state = mon.current(3)
        assert 0.0 <= state.cpu <= 1.0
        assert state.memory > 0
        assert state.bandwidth > 0

    def test_forecast_vector_shape(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, seed=1)
        mon.sample_range(0.0, 10.0, 1.0)
        vec = mon.forecast_vector("cpu")
        assert vec.shape == (8,)
        assert (vec >= 0).all()

    def test_unknown_attribute(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, seed=1)
        mon.sample(0.0)
        with pytest.raises(ValueError):
            mon.forecast(0, "disk")

    def test_failure_visible_in_cpu(self):
        cluster = sp2_blue_horizon(2)
        cluster.failures.add(FailureEvent(0, 5.0, 100.0))
        mon = ResourceMonitor(cluster, noise=0.0, seed=0)
        mon.sample(1.0)
        mon.sample(6.0)
        assert mon.stream(0, "cpu").last == 0.0
        assert mon.stream(1, "cpu").last == 1.0

    def test_forecast_tracks_stepped_load(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, noise=0.01, seed=3)
        mon.sample_range(0.0, 60.0, 1.0)
        # node 0 is idle, node 7 heavily loaded (stepped pattern)
        assert mon.forecast(0, "cpu") > mon.forecast(7, "cpu")
