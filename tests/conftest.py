"""Shared fixtures: small reference hierarchies, traces and clusters."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# CI runs with HYPOTHESIS_PROFILE=ci: derandomized, bounded examples, no
# deadline flakes on loaded runners.  Locally the default profile keeps
# hypothesis's own randomized exploration.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.trace import AdaptationTrace
from repro.apps.rm3d import RM3D, RM3DConfig
from repro.apps.base import generate_trace
from repro.gridsys.cluster import linux_cluster, sp2_blue_horizon


@pytest.fixture(scope="session")
def small_domain() -> Box:
    return Box((0, 0, 0), (32, 16, 16))


@pytest.fixture(scope="session")
def small_hierarchy(small_domain):
    """A 3-level hierarchy refined around one off-center blob."""
    err = np.zeros(small_domain.shape)
    err[6:14, 4:10, 4:10] = 0.6
    err[8:12, 5:8, 5:8] = 0.95
    rg = Regridder(small_domain, RegridPolicy(thresholds=(0.3, 0.8)))
    return rg.regrid(err)


@pytest.fixture(scope="session")
def small_rm3d_trace() -> AdaptationTrace:
    """A reduced RM3D trace: small domain, short run (fast in CI)."""
    cfg = RM3DConfig(shape=(64, 16, 16), interface_x=20.0, shock_entry_snapshot=6.0,
                     shock_speed=3.0, reshock_snapshot=30.0, num_seed_clumps=5,
                     num_mixing_structures=10)
    app = RM3D(cfg)
    policy = RegridPolicy(thresholds=(0.2, 0.45, 0.7), regrid_interval=4)
    return generate_trace(app, policy, 160)


@pytest.fixture()
def sp2_small():
    return sp2_blue_horizon(8)


@pytest.fixture()
def loaded_cluster():
    return linux_cluster(8, seed=7)
