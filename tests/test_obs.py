"""Tests for the observability layer (repro.obs) and its instrumentation."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.agents.message_center import MessageCenter
from repro.agents.messages import Message
from repro.core.meta_partitioner import MetaPartitioner
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import sp2_blue_horizon
from repro.obs.export import export_json, export_jsonl, observability_snapshot
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.tracing import NullTracer, Tracer
from repro.partitioners import ISPPartitioner


@pytest.fixture(autouse=True)
def _obs_disabled_between_tests():
    obs.disable()
    yield
    obs.disable()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(2.5)
        assert reg.counter_value("x") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("phase", phase="compute").inc(2)
        reg.counter("phase", phase="comm").inc(5)
        assert reg.counter_value("phase", phase="compute") == 2
        assert reg.counter_value("phase", phase="comm") == 5
        assert reg.sum_counters("phase") == 7

    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a", k=1) is reg.counter("a", k=1)
        assert reg.counter("a", k=1) is not reg.counter("a", k=2)

    def test_gauge_set_max(self):
        g = MetricsRegistry().gauge("depth")
        g.set_max(3)
        g.set_max(1)
        assert g.value == 3

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("imb")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)

    def test_empty_histogram_summary_is_finite(self):
        s = MetricsRegistry().histogram("h").summary()
        assert s == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                     "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", a="x").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["c"][0]["labels"] == {"a": "x"}
        assert snap["gauges"]["g"][0]["value"] == 2.0
        assert snap["histograms"]["h"][0]["value"]["count"] == 1

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.counter_value("c") == 0.0


class TestNullDefaults:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert isinstance(obs.get_registry(), NullRegistry)
        assert isinstance(obs.get_tracer(), NullTracer)

    def test_null_instruments_record_nothing(self):
        obs.counter("x").inc()
        obs.gauge("y").set(5)
        obs.histogram("z").observe(1.0)
        with obs.span("nothing"):
            pass
        assert obs.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert obs.get_tracer().to_dicts() == []

    def test_null_instruments_are_shared_singletons(self):
        assert obs.counter("a") is obs.counter("b")
        assert obs.counter("a") is obs.gauge("c")

    def test_enable_disable(self):
        reg, tracer = obs.enable()
        assert obs.enabled()
        obs.counter("x").inc()
        assert reg.counter_value("x") == 1.0
        obs.disable()
        assert not obs.enabled()

    def test_collect_window_restores_previous(self):
        with obs.collect() as window:
            assert obs.enabled()
            obs.counter("inside").inc()
        assert not obs.enabled()
        assert window.registry.counter_value("inside") == 1.0


class TestTracer:
    def test_nested_paths(self):
        t = Tracer()
        with t.span("run"):
            with t.span("interval", step=4):
                pass
            with t.span("interval", step=8):
                pass
        paths = t.counts_by_path()
        assert paths == {"run": 1, "run/interval": 2}
        assert t.records[0].attrs == {"step": 4}
        assert all(r.duration >= 0.0 for r in t.records)

    def test_totals_cover_children(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        totals = t.totals_by_path()
        assert totals["outer"] >= totals["outer/inner"]

    def test_reset(self):
        t = Tracer()
        with t.span("s"):
            pass
        t.reset()
        assert t.to_dicts() == []


class TestExport:
    def test_export_json_file(self, tmp_path):
        path = tmp_path / "snap.json"
        export_json({"a": 1}, path)
        assert json.loads(path.read_text()) == {"a": 1}

    def test_export_jsonl_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        export_jsonl({"run": 1}, path)
        export_jsonl({"run": 2}, path)
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["run"] for ln in lines] == [1, 2]

    def test_observability_snapshot_shape(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        reg.counter("c").inc()
        with tracer.span("s"):
            pass
        doc = observability_snapshot(reg, tracer, spans=True)
        assert doc["metrics"]["counters"]["c"][0]["value"] == 1.0
        assert doc["trace"]["counts_by_path"] == {"s": 1}
        assert doc["trace"]["spans"][0]["name"] == "s"


class TestMessageCenterPubSub:
    def _mc(self):
        mc = MessageCenter()
        mc.register("a")
        mc.register("b")
        return mc

    def test_round_trip(self):
        """register -> subscribe -> publish -> unsubscribe -> unregister."""
        mc = self._mc()
        mc.subscribe("b", "octant")
        assert mc.publish("a", "octant", {"v": 1}) == 1
        msg = mc.receive("b")
        assert msg is not None and msg.payload == {"v": 1}
        mc.unsubscribe("b", "octant")
        assert mc.publish("a", "octant", {"v": 2}) == 0
        assert mc.receive("b") is None
        mc.unregister("b")
        assert not mc.has_port("b")

    def test_unsubscribe_prunes_empty_topics(self):
        mc = self._mc()
        mc.subscribe("a", "t1")
        mc.subscribe("b", "t1")
        mc.unsubscribe("a", "t1")
        assert mc.topics() == ("t1",)
        mc.unsubscribe("b", "t1")
        assert mc.topics() == ()

    def test_unregister_prunes_empty_topics(self):
        mc = self._mc()
        mc.subscribe("b", "t1")
        mc.subscribe("b", "t2")
        mc.subscribe("a", "t2")
        mc.unregister("b")
        assert mc.topics() == ("t2",)

    def test_unsubscribe_unknown_port_raises(self):
        mc = self._mc()
        with pytest.raises(KeyError):
            mc.unsubscribe("ghost", "t")

    def test_unsubscribe_is_idempotent(self):
        mc = self._mc()
        mc.unsubscribe("a", "never-subscribed")
        mc.subscribe("a", "t")
        mc.unsubscribe("a", "t")
        mc.unsubscribe("a", "t")
        assert mc.topics() == ()

    def test_counters_track_traffic(self):
        with obs.collect() as window:
            mc = self._mc()
            mc.subscribe("a", "t")
            mc.subscribe("b", "t")
            mc.publish("a", "t", {})
            mc.send(Message(sender="a", dest="b", topic="direct", payload={}))
        reg = window.registry
        assert reg.counter_value("mc.publishes") == 1.0
        assert reg.counter_value("mc.fanout", topic="t") == 2.0
        # two fan-out deliveries plus one direct send
        assert reg.counter_value("mc.sends") == 3.0
        assert window.registry.gauge("mc.mailbox_hwm", port="b").value == 2.0


class TestSimulatorInstrumentation:
    def test_counters_match_record_lengths(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        with obs.collect() as window:
            res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        reg = window.registry
        assert reg.sum_counters("execsim.intervals") == len(res.records)
        assert reg.counter_value("execsim.coarse_steps") == sum(
            r.coarse_steps for r in res.records
        )
        hist = reg.histogram("execsim.imbalance_pct")
        assert hist.count == len(res.records)

    def test_phase_seconds_match_result(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        with obs.collect() as window:
            res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        reg = window.registry
        compute = reg.counter_value("execsim.sim_seconds", phase="compute")
        comm = reg.counter_value("execsim.sim_seconds", phase="comm")
        regrid = reg.counter_value("execsim.sim_seconds", phase="regrid")
        partition = reg.counter_value("execsim.sim_seconds", phase="partition")
        assert compute == pytest.approx(
            sum(r.compute_time for r in res.records)
        )
        assert comm == pytest.approx(sum(r.comm_time for r in res.records))
        assert regrid + partition == pytest.approx(res.total_regrid_time)

    def test_meta_partitioner_counters(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        with obs.collect() as window:
            meta = MetaPartitioner()
            res = sim.run(small_rm3d_trace, meta)
        reg = window.registry
        assert reg.sum_counters("meta.classifications") == len(res.records)
        switches = sum(
            1
            for prev, cur in zip(res.records, res.records[1:])
            if prev.label != cur.label
        )
        assert reg.counter_value("meta.switches") == switches
        assert reg.counter_value("meta.policy_lookups", result="hit") == len(
            res.records
        )

    def test_spans_cover_the_run(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        with obs.collect() as window:
            sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        counts = window.tracer.counts_by_path()
        assert counts["execsim.run"] == 1
        assert counts["execsim.run/partition"] == len(small_rm3d_trace)

    def test_disabled_run_is_equivalent(self, small_rm3d_trace):
        sim = ExecutionSimulator(sp2_blue_horizon(4))
        baseline = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        with obs.collect():
            observed = sim.run(
                small_rm3d_trace, StaticSelector(ISPPartitioner())
            )
        # compute/comm are deterministic; regrid embeds *measured*
        # partitioner wall-time, so the totals only match loosely.
        assert sum(r.compute_time for r in observed.records) == pytest.approx(
            sum(r.compute_time for r in baseline.records)
        )
        assert sum(r.comm_time for r in observed.records) == pytest.approx(
            sum(r.comm_time for r in baseline.records)
        )
        assert observed.total_runtime == pytest.approx(
            baseline.total_runtime, rel=1e-2
        )
        assert len(observed.records) == len(baseline.records)


class TestRunReport:
    @pytest.fixture(scope="class")
    def tiny_report(self):
        from repro.amr.regrid import RegridPolicy
        from repro.apps import RM3D, RM3DConfig
        from repro.core.pragma import PragmaRuntime
        from repro.obs.report import collect_run_report

        config = RM3DConfig(
            shape=(16, 8, 8), interface_x=5.0, shock_entry_snapshot=2.0,
            reshock_snapshot=8.0, num_seed_clumps=2, num_mixing_structures=3,
        )
        policy = RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                              regrid_interval=4)
        runtime = PragmaRuntime(cluster=sp2_blue_horizon(4), num_procs=4)
        return collect_run_report(
            app=RM3D(config), policy=policy, runtime=runtime,
            num_coarse_steps=24, online_steps=12,
        )

    def test_phases_present_and_positive(self, tiny_report):
        d = tiny_report.to_dict()
        assert set(d["phases"]) == {
            "compute", "comm", "regrid", "partition", "checkpoint",
            "recovery",
        }
        assert d["phases"]["compute"] > 0.0

    def test_partitioning_and_messaging_sections(self, tiny_report):
        d = tiny_report.to_dict()
        assert "switches" in d["partitioning"]
        assert d["partitioning"]["policy_hits"] > 0
        assert d["message_center"]["publishes"] > 0
        assert d["monitoring"]["samples"] > 0

    def test_document_is_json_serializable(self, tiny_report):
        doc = json.loads(json.dumps(tiny_report.to_dict()))
        assert doc["scenario"]["num_procs"] == 4

    def test_render_mentions_every_section(self, tiny_report):
        text = tiny_report.render()
        for token in ("compute", "comm", "regrid", "partition", "switches",
                      "message center", "resource monitor"):
            assert token in text

    def test_mismatched_scenario_args_rejected(self):
        from repro.obs.report import collect_run_report

        with pytest.raises(ValueError):
            collect_run_report(app=object())

    def test_collection_disabled_after_report(self, tiny_report):
        assert not obs.enabled()


class TestReportCli:
    def test_report_json_to_file(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.obs import report as report_mod

        original_collect = report_mod.collect_run_report

        def tiny_collect(**kwargs):
            from repro.amr.regrid import RegridPolicy
            from repro.apps import RM3D, RM3DConfig
            from repro.core.pragma import PragmaRuntime

            config = RM3DConfig(
                shape=(16, 8, 8), interface_x=5.0, shock_entry_snapshot=2.0,
                reshock_snapshot=8.0, num_seed_clumps=2,
                num_mixing_structures=3,
            )
            return original_collect(
                app=RM3D(config),
                policy=RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                                    regrid_interval=4),
                runtime=PragmaRuntime(cluster=sp2_blue_horizon(4),
                                      num_procs=4),
                num_coarse_steps=kwargs.get("num_coarse_steps", 24),
                online_steps=kwargs.get("online_steps", 8),
            )

        monkeypatch.setattr(
            "repro.obs.report.collect_run_report", tiny_collect
        )
        out = tmp_path / "report.json"
        assert main(["report", "--json", str(out), "--steps", "24",
                     "--online-steps", "8"]) == 0
        doc = json.loads(out.read_text())
        assert set(doc["phases"]) == {"compute", "comm", "regrid",
                                      "partition", "checkpoint",
                                      "recovery"}

    def test_report_rejects_bad_steps(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "--steps", "0"])
