"""Tests for adaptation traces."""

import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.trace import AdaptationTrace, Snapshot


def snap(step, shape=(8, 8, 8)):
    return Snapshot(step=step, hierarchy=GridHierarchy(Box.from_shape(shape)))


class TestSnapshot:
    def test_properties(self):
        s = snap(4)
        assert s.num_patches == 1
        assert s.total_cells == 512
        assert s.load == 512.0

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            snap(-1)

    def test_roundtrip(self):
        s = snap(8)
        back = Snapshot.from_dict(s.to_dict())
        assert back.step == 8 and back.total_cells == 512


class TestTrace:
    def test_append_ordering(self):
        tr = AdaptationTrace()
        tr.append(snap(0))
        tr.append(snap(4))
        with pytest.raises(ValueError):
            tr.append(snap(4))
        with pytest.raises(ValueError):
            tr.append(snap(2))

    def test_constructor_validates_order(self):
        with pytest.raises(ValueError):
            AdaptationTrace(snapshots=[snap(4), snap(0)])

    def test_at_step(self):
        tr = AdaptationTrace(snapshots=[snap(0), snap(4), snap(8)])
        assert tr.at_step(0).step == 0
        assert tr.at_step(5).step == 4
        assert tr.at_step(100).step == 8
        with pytest.raises(ValueError):
            tr.at_step(-1)

    def test_at_step_empty(self):
        with pytest.raises(ValueError):
            AdaptationTrace().at_step(0)

    def test_series(self):
        tr = AdaptationTrace(snapshots=[snap(0), snap(4)])
        assert tr.steps() == [0, 4]
        assert tr.load_series().shape == (2,)
        assert tr.patch_count_series().tolist() == [1, 1]

    def test_refinement_activity_constant_trace(self):
        tr = AdaptationTrace(snapshots=[snap(0), snap(4), snap(8)])
        assert (tr.refinement_activity() == 0).all()

    def test_json_roundtrip(self):
        tr = AdaptationTrace(snapshots=[snap(0), snap(4)], meta={"app": "x"})
        back = AdaptationTrace.from_json(tr.to_json())
        assert len(back) == 2
        assert back.meta["app"] == "x"

    def test_file_roundtrip(self, tmp_path):
        tr = AdaptationTrace(snapshots=[snap(0)], meta={"app": "y"})
        path = tmp_path / "trace.json.gz"
        tr.save(path)
        back = AdaptationTrace.load(path)
        assert len(back) == 1 and back.meta["app"] == "y"


class TestReports:
    def test_hierarchy_report(self):
        from repro.amr import hierarchy_report

        h = snap(0).hierarchy
        text = hierarchy_report(h)
        assert "GridHierarchy" in text and "level" in text

    def test_trace_report(self):
        from repro.amr import trace_report

        tr = AdaptationTrace(snapshots=[snap(0), snap(4), snap(8)],
                             meta={"app": "demo"})
        text = trace_report(tr, every=2)
        assert "3 snapshots" in text and "demo" in text

    def test_trace_report_validation(self):
        from repro.amr import trace_report

        with pytest.raises(ValueError):
            trace_report(AdaptationTrace(), every=0)
