"""Tests for the scenario sweep engine (repro.sweep)."""

import json

import pytest

from repro.sweep import (
    FunctionScenario,
    ResultCache,
    SweepRunner,
    atomic_write_json,
    cache_key,
    canonical_params,
    derive_seed,
    filter_scenarios,
    get_scenario,
    jsonify,
    register,
    run_sweep,
    unregister,
)


class TestScenarioIdentity:
    def test_canonical_params_order_independent(self):
        a = canonical_params({"a": 1, "b": [2, 3], "c": {"x": 1, "y": 2}})
        b = canonical_params({"c": {"y": 2, "x": 1}, "b": [2, 3], "a": 1})
        assert a == b

    def test_derive_seed_stable_and_separated(self):
        s1 = derive_seed("t", {"a": 1, "b": 2})
        s2 = derive_seed("t", {"b": 2, "a": 1})
        assert s1 == s2
        assert derive_seed("t", {"a": 1}) != s1
        assert derive_seed("u", {"a": 1, "b": 2}) != s1
        assert derive_seed("t", {"a": 1, "b": 2}, base_seed=1) != s1

    def test_jsonify_normalizes_numpy(self):
        import numpy as np

        doc = jsonify({"x": np.int64(3), "y": np.array([1.5, 2.5]),
                       "z": np.bool_(True)})
        assert doc == {"x": 3, "y": [1.5, 2.5], "z": True}
        json.dumps(doc)  # plain JSON, no fallback needed


class TestRegistry:
    def test_register_roundtrip(self):
        s = FunctionScenario("t-reg", lambda ctx: {"ok": 1}, {"p": 1},
                             tags={"test"})
        try:
            register(s)
            assert get_scenario("t-reg") is s
            assert s in filter_scenarios("t-reg")
            assert s in filter_scenarios(tags=["test"])
            assert s in filter_scenarios("t-*")
        finally:
            unregister("t-reg")
        with pytest.raises(KeyError):
            get_scenario("t-reg")

    def test_duplicate_names_rejected(self):
        s = FunctionScenario("t-dup", lambda ctx: {})
        try:
            register(s)
            with pytest.raises(ValueError):
                register(FunctionScenario("t-dup", lambda ctx: {}))
            register(FunctionScenario("t-dup", lambda ctx: {}), replace=True)
        finally:
            unregister("t-dup")

    def test_builtin_set_registers_everything(self):
        import repro.sweep.builtin  # noqa: F401 - populates the registry

        names = {s.name for s in filter_scenarios()}
        assert {"table1", "table2", "table3", "table4", "table5",
                "fig1", "fig2", "fig3", "fig4",
                "chaos-s0", "chaos-s1",
                "ablation-sfc-curves", "ablation-granularity"} <= names


class TestCacheKey:
    def test_stable_across_param_ordering(self):
        k1 = cache_key("t", {"a": 1, "b": 2})
        k2 = cache_key("t", {"b": 2, "a": 1})
        assert k1 == k2

    def test_invalidated_on_version_change(self):
        base = cache_key("t", {"a": 1})
        assert cache_key("t", {"a": 1}, version="2") != base

    def test_invalidated_on_salt_change(self):
        base = cache_key("t", {"a": 1})
        assert cache_key("t", {"a": 1}, salt="other") != base

    def test_separated_by_name_and_params(self):
        assert cache_key("t", {"a": 1}) != cache_key("u", {"a": 1})
        assert cache_key("t", {"a": 1}) != cache_key("t", {"a": 2})


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", {"a": 1})
        assert cache.get(key) is None
        cache.put(key, {"result": [1, 2, 3]})
        assert cache.get(key) == {"result": [1, 2, 3]}
        # no temp files left behind by the atomic write
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("t", {"a": 1})
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_atomic_write_json(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert not list(tmp_path.glob("*.tmp"))


class TestSweepRunner:
    def _cheap(self, name):
        return FunctionScenario(
            name, lambda ctx: {"seed": ctx.seed, "p": ctx.params}, {"k": 1}
        )

    def test_serial_run_and_cache_hit(self, tmp_path):
        s = self._cheap("t-serial")
        runner = SweepRunner(cache=ResultCache(tmp_path))
        cold = runner.run([s])
        assert cold.ok and cold.cache_misses == 1 and cold.cache_hits == 0
        warm = runner.run([s])
        assert warm.ok and warm.cache_hits == 1 and warm.cache_misses == 0
        assert warm.tasks[0].result == cold.tasks[0].result

    def test_no_cache_always_executes(self, tmp_path):
        s = self._cheap("t-nocache")
        runner = SweepRunner(cache=ResultCache(tmp_path), use_cache=False)
        assert runner.run([s]).cache_misses == 1
        assert runner.run([s]).cache_misses == 1
        assert not list(tmp_path.iterdir())

    def test_task_error_is_isolated(self, tmp_path):
        def boom(ctx):
            raise RuntimeError("boom")

        bad = FunctionScenario("t-bad", boom)
        good = self._cheap("t-good")
        result = SweepRunner(cache=ResultCache(tmp_path)).run([bad, good])
        assert not result.ok
        assert [t.ok for t in result.tasks] == [False, True]
        assert "boom" in result.tasks[0].error
        # failures are never cached
        rerun = SweepRunner(cache=ResultCache(tmp_path)).run([bad, good])
        assert not rerun.tasks[0].cached and rerun.tasks[1].cached

    def test_base_seed_changes_derived_seeds(self, tmp_path):
        s = self._cheap("t-seed")
        r0 = SweepRunner(cache=ResultCache(tmp_path / "a")).run([s])
        r1 = SweepRunner(cache=ResultCache(tmp_path / "b"),
                         base_seed=7).run([s])
        assert r0.tasks[0].seed != r1.tasks[0].seed
        assert r0.tasks[0].result["seed"] == r0.tasks[0].seed

    def test_to_dict_bench_shape(self, tmp_path):
        s = self._cheap("t-shape")
        doc = SweepRunner(cache=ResultCache(tmp_path)).run([s]).to_dict()
        assert doc["bench"] == "sweep"
        assert set(doc["cache"]) == {"dir", "enabled", "hits", "misses"}
        json.dumps(doc)


class TestParallelDeterminism:
    """``--jobs N`` must be bit-identical to ``--jobs 1``."""

    def test_two_job_sweep_matches_serial(self, tmp_path):
        serial = run_sweep("*2", jobs=1, cache_dir=tmp_path / "serial")
        twojob = run_sweep("*2", jobs=2, cache_dir=tmp_path / "twojob")
        names = [t.name for t in serial.tasks]
        assert "table2" in names and "fig2" in names
        assert names == [t.name for t in twojob.tasks]
        for a, b in zip(serial.tasks, twojob.tasks):
            assert a.ok and b.ok
            assert json.dumps(a.result, sort_keys=True) == json.dumps(
                b.result, sort_keys=True
            )

    def test_warm_rerun_hits_without_workers(self, tmp_path):
        cold = run_sweep("*2", jobs=2, cache_dir=tmp_path)
        warm = run_sweep("*2", jobs=2, cache_dir=tmp_path)
        assert cold.cache_misses == len(cold.tasks)
        assert warm.cache_hits == len(warm.tasks)
        for a, b in zip(cold.tasks, warm.tasks):
            assert json.dumps(a.result, sort_keys=True) == json.dumps(
                b.result, sort_keys=True
            )


class TestDeprecationShims:
    def test_run_and_render_warn(self):
        from repro.experiments import fig2, table2

        with pytest.warns(DeprecationWarning, match="table2.run"):
            raw = table2.run()
        with pytest.warns(DeprecationWarning, match="table2.render"):
            out = table2.render(raw)
        assert "Table 2" in out
        with pytest.warns(DeprecationWarning, match="fig2.run"):
            fig2.run()

    def test_scenario_entrypoints_do_not_warn(self):
        import warnings

        from repro.experiments import table2
        from repro.sweep.scenario import ScenarioContext

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = table2.run_scenario(ScenarioContext())
            table2.render_scenario(result)


class TestCurveOrderMemo:
    def test_memo_hit_returns_readonly_cached_array(self):
        from repro.sfc import clear_curve_memo, curve_order

        clear_curve_memo()
        a = curve_order((4, 4, 2), "hilbert")
        b = curve_order((4, 4, 2), "hilbert")
        assert a is b
        assert not a.flags.writeable
        assert curve_order((4, 4, 2), "morton") is not a

    def test_memo_matches_fresh_computation(self):
        import numpy as np

        from repro.sfc import clear_curve_memo, curve_order

        clear_curve_memo()
        first = np.array(curve_order((8, 4, 4)))
        clear_curve_memo()
        again = np.array(curve_order((8, 4, 4)))
        assert (first == again).all()


class TestAtomicTraceCache:
    def test_small_trace_cached_atomically(self, tmp_path):
        from repro.experiments.common import rm3d_small_trace

        t1 = rm3d_small_trace(cache_dir=tmp_path)
        files = list(tmp_path.iterdir())
        assert len(files) == 1 and files[0].suffix == ".gz"
        assert not list(tmp_path.glob("*.tmp"))
        t2 = rm3d_small_trace(cache_dir=tmp_path)
        assert len(t1) == len(t2)
