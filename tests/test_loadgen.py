"""Tests for the synthetic load generator."""

import numpy as np
import pytest

from repro.apps.loadgen import LoadPattern, SyntheticLoadGenerator


class TestValidation:
    def test_bad_nodes(self):
        with pytest.raises(ValueError):
            SyntheticLoadGenerator(0)

    def test_bad_max_load(self):
        with pytest.raises(ValueError):
            SyntheticLoadGenerator(4, max_load=1.0)

    def test_bad_node_query(self):
        gen = SyntheticLoadGenerator(4)
        with pytest.raises(ValueError):
            gen.load_at(4, 0.0)
        with pytest.raises(ValueError):
            gen.load_at(0, -1.0)


class TestPatterns:
    def test_uniform_is_zero(self):
        gen = SyntheticLoadGenerator(4, pattern=LoadPattern.UNIFORM)
        assert all(gen.load_at(n, t) == 0.0 for n in range(4) for t in (0, 10, 99))

    def test_stepped_monotone_means(self):
        gen = SyntheticLoadGenerator(8, pattern=LoadPattern.STEPPED, seed=3)
        means = [
            np.mean([gen.load_at(n, float(t)) for t in range(100)])
            for n in range(8)
        ]
        assert means[0] < means[3] < means[7]
        assert means[7] <= 0.98

    def test_random_walk_in_range(self):
        gen = SyntheticLoadGenerator(3, pattern=LoadPattern.RANDOM_WALK, seed=5)
        vals = [gen.load_at(1, float(t)) for t in range(300)]
        assert 0.0 <= min(vals) and max(vals) <= 0.98

    def test_bursty_has_idle_and_busy(self):
        gen = SyntheticLoadGenerator(2, pattern=LoadPattern.BURSTY, seed=11)
        vals = np.array([gen.load_at(0, float(t)) for t in range(600)])
        assert (vals == 0).any()
        assert (vals > 0.2).any()


class TestDeterminism:
    def test_same_seed_same_series(self):
        a = SyntheticLoadGenerator(4, seed=9)
        b = SyntheticLoadGenerator(4, seed=9)
        assert all(
            a.load_at(n, float(t)) == b.load_at(n, float(t))
            for n in range(4)
            for t in range(50)
        )

    def test_horizon_extension_consistent(self):
        """Sampling far into the future then re-reading early times agrees."""
        a = SyntheticLoadGenerator(2, seed=13)
        early_first = [a.load_at(0, float(t)) for t in range(10)]
        a.load_at(0, 5000.0)  # force regeneration with a longer horizon
        early_again = [a.load_at(0, float(t)) for t in range(10)]
        assert early_first == early_again


class TestHelpers:
    def test_available_fraction(self):
        gen = SyntheticLoadGenerator(2, pattern=LoadPattern.UNIFORM)
        assert gen.available_fraction(0, 3.0) == 1.0

    def test_mean_available(self):
        gen = SyntheticLoadGenerator(2, pattern=LoadPattern.UNIFORM)
        assert gen.mean_available(0, 0.0, 10.0) == 1.0
        with pytest.raises(ValueError):
            gen.mean_available(0, 5.0, 1.0)
