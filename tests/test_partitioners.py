"""Tests for the SAMR partitioner suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr.box import Box
from repro.amr.workload import WorkloadMap
from repro.partitioners import (
    EqualPartitioner,
    GMISPPartitioner,
    GMISPSPPartitioner,
    HeterogeneousPartitioner,
    ISPPartitioner,
    PARTITIONER_REGISTRY,
    PartitionError,
    PBDISPPartitioner,
    SFCPartitioner,
    SPISPPartitioner,
    build_units,
    evaluate_partition,
)

ALL_PARTITIONERS = [
    SFCPartitioner,
    ISPPartitioner,
    GMISPPartitioner,
    GMISPSPPartitioner,
    PBDISPPartitioner,
    SPISPPartitioner,
]


@pytest.fixture(scope="module")
def units(small_hierarchy_module):
    return build_units(small_hierarchy_module, granularity=2)


@pytest.fixture(scope="module")
def small_hierarchy_module():
    from repro.amr.regrid import Regridder, RegridPolicy

    domain = Box((0, 0, 0), (32, 16, 16))
    err = np.zeros(domain.shape)
    err[6:14, 4:10, 4:10] = 0.6
    err[8:12, 5:8, 5:8] = 0.95
    rg = Regridder(domain, RegridPolicy(thresholds=(0.3, 0.8)))
    return rg.regrid(err)


class TestBuildUnits:
    def test_total_load_preserved(self, small_hierarchy_module, units):
        assert units.total_load == pytest.approx(
            small_hierarchy_module.load_per_coarse_step()
        )

    def test_unit_count(self, units):
        assert len(units) == (32 // 2) * (16 // 2) * (16 // 2)

    def test_unit_boxes_tile_domain(self, units):
        total = sum(units.unit_box(i).num_cells for i in range(len(units)))
        assert total == 32 * 16 * 16

    def test_curve_positions_consistent(self, units):
        assert (units.curve_position[units.lattice_index]
                == np.arange(len(units))).all()

    def test_clipped_edge_units(self):
        # domain not a multiple of granularity
        wm = WorkloadMap(Box((0, 0, 0), (10, 6, 6)), np.ones((10, 6, 6)))
        u = build_units(wm, granularity=4)
        assert u.total_load == pytest.approx(360.0)
        shapes = u.unit_shapes()
        assert shapes.min() >= 1 and shapes.max() <= 4

    def test_adjacency_symmetric_and_complete(self, units):
        i, j, axis = units.adjacency_arrays()
        nx, ny, nz = units.grid_shape
        expected = ((nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1))
        assert len(i) == expected

    def test_validation(self, small_hierarchy_module):
        with pytest.raises(ValueError):
            build_units(small_hierarchy_module, granularity=0)
        with pytest.raises(ValueError):
            build_units(small_hierarchy_module, curve="zigzag")


class TestPartitionObject:
    def test_proc_loads_sum(self, units):
        p = ISPPartitioner().partition(units, 5)
        assert p.proc_loads().sum() == pytest.approx(units.total_load)

    def test_invalid_assignment_rejected(self, units):
        from repro.partitioners.base import Partition

        with pytest.raises(ValueError):
            Partition(
                units=units,
                num_procs=2,
                assignment=np.full(len(units), 7),
                partitioner_name="bad",
            )

    def test_owner_lattice_shape(self, units):
        p = ISPPartitioner().partition(units, 4)
        assert p.owner_lattice().shape == units.grid_shape

    def test_rect_fragments_lower_bound(self, units):
        p = PBDISPPartitioner().partition(units, 4)
        assert p.rect_fragments() >= 4

    def test_partition_time_deterministic(self, units):
        """Two identical calls must return identical partitions — wall
        clock used to leak into ``partition_time`` and, through the
        simulator, into every downstream result."""
        a = ISPPartitioner().partition(units, 5)
        b = ISPPartitioner().partition(units, 5)
        assert a.partition_time == b.partition_time
        assert a.partition_time > 0.0

    def test_partition_time_wall_clock_opt_in(self, units):
        from repro.partitioners.base import DEFAULT_SECONDS_PER_UNIT

        modeled = ISPPartitioner().partition(units, 5)
        assert modeled.partition_time == DEFAULT_SECONDS_PER_UNIT * len(units)
        measured = ISPPartitioner().partition(
            units, 5, measure_wall_clock=True
        )
        assert measured.partition_time != modeled.partition_time

    def test_deterministic_partition_time_overrides_rate(self, units):
        from repro.partitioners.base import deterministic_partition_time

        with deterministic_partition_time(seconds_per_unit=1e-3):
            p = ISPPartitioner().partition(units, 5)
        assert p.partition_time == 1e-3 * len(units)

    def test_partition_time_override_is_thread_local(self, units):
        """Concurrent scopes must not clobber or leak into each other —
        the serve workers wrap every job in this context, so a shared
        module global would let one job's exit restore ``None`` under a
        still-running neighbour (and leak the override afterwards)."""
        import threading

        from repro.partitioners.base import (
            DEFAULT_SECONDS_PER_UNIT,
            deterministic_partition_time,
        )

        entered = threading.Event()
        other_done = threading.Event()
        seen: dict[str, float] = {}

        def _inner():
            with deterministic_partition_time(seconds_per_unit=1e-5):
                seen["inner"] = ISPPartitioner().partition(units, 5).partition_time
            other_done.set()

        def _outer():
            with deterministic_partition_time(seconds_per_unit=1e-3):
                entered.set()
                assert other_done.wait(timeout=10.0)
                # the inner thread set *and restored* its own override;
                # ours must be untouched
                seen["outer"] = ISPPartitioner().partition(units, 5).partition_time

        t_outer = threading.Thread(target=_outer)
        t_outer.start()
        assert entered.wait(timeout=10.0)
        t_inner = threading.Thread(target=_inner)
        t_inner.start()
        t_inner.join(timeout=10.0)
        t_outer.join(timeout=10.0)
        assert seen["inner"] == 1e-5 * len(units)
        assert seen["outer"] == 1e-3 * len(units)
        # nothing leaked into this (main) thread
        p = ISPPartitioner().partition(units, 5)
        assert p.partition_time == DEFAULT_SECONDS_PER_UNIT * len(units)


class TestAllPartitioners:
    @pytest.mark.parametrize("cls", ALL_PARTITIONERS)
    def test_complete_valid_assignment(self, cls, units):
        part = cls().partition(units, 7)
        assert part.assignment.shape == (len(units),)
        assert part.assignment.min() >= 0
        assert part.assignment.max() < 7
        assert part.proc_loads().sum() == pytest.approx(units.total_load)

    @pytest.mark.parametrize("cls", ALL_PARTITIONERS)
    def test_single_proc(self, cls, units):
        part = cls().partition(units, 1)
        assert (part.assignment == 0).all()

    @pytest.mark.parametrize("cls", ALL_PARTITIONERS)
    def test_all_procs_used_when_reasonable(self, cls, units):
        part = cls().partition(units, 4)
        assert len(np.unique(part.assignment)) == 4

    def test_zero_procs_rejected(self, units):
        with pytest.raises(PartitionError):
            ISPPartitioner().partition(units, 0)

    def test_registry_names(self):
        assert set(PARTITIONER_REGISTRY) == {
            "SFC", "ISP", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP"
        }
        for name, cls in PARTITIONER_REGISTRY.items():
            assert cls.name == name


class TestQualityOrdering:
    """The characteristic trade-offs the policy base relies on."""

    def test_gmisp_sp_balances_best(self, units):
        sp = GMISPSPPartitioner().partition(units, 8)
        sfc = SFCPartitioner(patch_units=8).partition(units, 8)
        m_sp = evaluate_partition(sp)
        m_sfc = evaluate_partition(sfc)
        assert m_sp.load_imbalance_pct <= m_sfc.load_imbalance_pct

    def test_pbd_is_rectangular(self, units):
        pbd = PBDISPPartitioner().partition(units, 8)
        gm = GMISPSPPartitioner().partition(units, 8)
        # pBD produces near-minimal rectangular fragments.
        assert pbd.rect_fragments() <= gm.rect_fragments() * 2

    def test_sp_isp_matches_optimal_bottleneck(self, units):
        from repro.partitioners.sequence import optimal_sequence_partition, segment_loads

        part = SPISPPartitioner().partition(units, 8)
        direct = optimal_sequence_partition(units.loads, 8)
        assert segment_loads(units.loads, part.assignment, 8).max() == pytest.approx(
            segment_loads(units.loads, direct, 8).max()
        )


class TestHeterogeneous:
    def test_requires_capacities(self, units):
        with pytest.raises(PartitionError):
            HeterogeneousPartitioner().partition(units, 4)

    def test_proportional_loads(self, units):
        caps = np.array([0.1, 0.2, 0.3, 0.4])
        part = HeterogeneousPartitioner().partition(units, 4, caps)
        loads = part.proc_loads() / units.total_load
        assert loads[3] > loads[0]

    def test_equal_partitioner_balances(self, units):
        part = EqualPartitioner().partition(units, 4)
        m = evaluate_partition(part)
        assert m.load_imbalance_pct < 50.0

    def test_bad_capacities_rejected(self, units):
        with pytest.raises(PartitionError):
            HeterogeneousPartitioner().partition(units, 4, np.zeros(4))
        with pytest.raises(PartitionError):
            HeterogeneousPartitioner().partition(units, 4, np.ones(3))


class TestMetrics:
    def test_migration_zero_without_previous(self, units):
        p = ISPPartitioner().partition(units, 4)
        assert evaluate_partition(p).data_migration == 0.0

    def test_migration_zero_for_identical(self, units):
        p1 = ISPPartitioner().partition(units, 4)
        p2 = ISPPartitioner().partition(units, 4)
        assert evaluate_partition(p2, p1).data_migration == 0.0

    def test_migration_positive_when_owners_move(self, units):
        p1 = ISPPartitioner().partition(units, 4)
        p2 = PBDISPPartitioner().partition(units, 4)
        assert evaluate_partition(p2, p1).data_migration > 0.0

    def test_comm_zero_single_proc(self, units):
        p = ISPPartitioner().partition(units, 1)
        assert evaluate_partition(p).comm_volume == 0.0

    def test_metric_dict(self, units):
        m = evaluate_partition(ISPPartitioner().partition(units, 4))
        d = m.as_dict()
        assert set(d) == {
            "load_imbalance_pct", "comm_volume", "data_migration",
            "partition_time", "overhead",
        }

    def test_migration_across_granularities(self, units, small_hierarchy_module):
        coarse = build_units(small_hierarchy_module, granularity=4)
        p1 = ISPPartitioner().partition(coarse, 4)
        p2 = ISPPartitioner().partition(units, 4)
        m = evaluate_partition(p2, p1)
        assert m.data_migration >= 0.0  # nearest-resample path exercised


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 9))
def test_property_partitioners_conserve_load(seed, p):
    """Random workloads: every partitioner assigns all load exactly once."""
    rng = np.random.default_rng(seed)
    shape = (8, 8, 8)
    wm = WorkloadMap(Box.from_shape(shape), rng.random(shape) * 10)
    units = build_units(wm, granularity=2)
    for cls in ALL_PARTITIONERS:
        part = cls().partition(units, p)
        assert part.proc_loads().sum() == pytest.approx(units.total_load)
