"""Property-based tests over the simtest workload-script format.

Hypothesis draws :class:`WorkloadScript` values directly through the
shared strategy (same shape the seeded generator and repro files use),
so a failing example shrinks to a small script that embeds in a repro
file unchanged.  Under ``HYPOTHESIS_PROFILE=ci`` (the tier-1 profile)
these run derandomized with bounded examples.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtest import WorkloadScript, run_script
from repro.simtest.strategies import HAVE_HYPOTHESIS, workload_scripts

#: one fixed schedule seed per drawn script keeps each example cheap;
#: schedule diversity comes from the seeded corpus sweep instead
_SCHEDULE_SEED = 1234


def test_strategy_reports_hypothesis_available():
    assert HAVE_HYPOTHESIS


@given(script=workload_scripts())
@settings(max_examples=20, deadline=None)
def test_every_drawn_script_runs_green(script):
    report = run_script(script, _SCHEDULE_SEED)
    assert report.ok, report.violations
    assert report.steps > 0


@given(script=workload_scripts())
@settings(max_examples=20, deadline=None)
def test_script_json_roundtrip(script):
    doc = script.to_dict()
    assert WorkloadScript.from_dict(doc).to_dict() == doc


@given(script=workload_scripts(max_ops=8),
       seed=st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=12, deadline=None)
def test_same_seed_same_digest(script, seed):
    first = run_script(script, seed)
    second = run_script(script, seed)
    assert first.digest == second.digest
    assert first.ok == second.ok
