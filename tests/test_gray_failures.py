"""Gray-failure tolerance: graded suspicion, degraded-mode repartitioning,
flap hysteresis, network partitions, and the chaos matrix."""

import math

import pytest

from repro import obs
from repro.agents import (
    DeliveryPolicy,
    ManagedComponent,
    Message,
    MessageCenter,
    MigrateActuator,
)
from repro.agents.component import ComponentState
from repro.agents.message_center import DEDUP_WINDOW
from repro.config import SimulatorOptions
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import (
    DegradedWindow,
    FailureEvent,
    FailureSchedule,
    FlappingNode,
    NetworkPartition,
    sp2_blue_horizon,
)
from repro.partitioners import ISPPartitioner
from repro.resilience import (
    DetectorConfig,
    FailureDetector,
    FaultTolerance,
)


class TestGrayVocabulary:
    def test_degraded_window_active_and_validation(self):
        w = DegradedWindow(2, 10.0, 30.0, capacity_factor=0.4)
        assert not w.active(9.9)
        assert w.active(10.0)
        assert w.active(29.9)
        assert not w.active(30.0)
        with pytest.raises(ValueError):
            DegradedWindow(0, -1.0, 5.0, capacity_factor=0.5)
        with pytest.raises(ValueError):
            DegradedWindow(0, 5.0, 5.0, capacity_factor=0.5)
        for bad in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError):
                DegradedWindow(0, 0.0, 5.0, capacity_factor=bad)

    def test_flapping_expands_to_clipped_outages(self):
        spec = FlappingNode(3, t_start=10.0, t_end=40.0, period=10.0,
                            down_time=4.0)
        events = spec.events()
        assert spec.num_flaps == 3
        assert events == [
            FailureEvent(3, 10.0, 14.0),
            FailureEvent(3, 20.0, 24.0),
            FailureEvent(3, 30.0, 34.0),
        ]
        # A flap straddling t_end is clipped, not dropped.
        tail = FlappingNode(0, 0.0, 12.0, period=10.0, down_time=5.0)
        assert tail.events()[-1] == FailureEvent(0, 10.0, 12.0)

    def test_flapping_validation(self):
        with pytest.raises(ValueError):
            FlappingNode(0, 10.0, 5.0, period=1.0, down_time=0.5)
        with pytest.raises(ValueError):
            FlappingNode(0, 0.0, 10.0, period=0.0, down_time=0.5)
        with pytest.raises(ValueError):
            FlappingNode(0, 0.0, 10.0, period=2.0, down_time=2.0)

    def test_partition_groups_and_severed(self):
        p = NetworkPartition(10.0, 20.0, groups=((0, 1), (2, 3)))
        assert p.group_of(1) == 0
        assert p.group_of(3) == 1
        assert p.group_of(99) is None
        assert p.severed(0, 2, 15.0)
        assert not p.severed(0, 1, 15.0)       # same group
        assert not p.severed(0, 2, 25.0)       # window over
        assert not p.severed(0, 99, 15.0)      # control plane (unlisted)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            NetworkPartition(0.0, 10.0, groups=((0, 1),))
        with pytest.raises(ValueError):
            NetworkPartition(0.0, 10.0, groups=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            NetworkPartition(10.0, 10.0, groups=((0,), (1,)))

    def test_schedule_capacity_factor_multiplies_overlaps(self):
        sched = FailureSchedule()
        sched.add_degraded(DegradedWindow(1, 0.0, 100.0, capacity_factor=0.5))
        sched.add_degraded(DegradedWindow(1, 50.0, 100.0, capacity_factor=0.5))
        assert sched.capacity_factor(1, 25.0) == pytest.approx(0.5)
        assert sched.capacity_factor(1, 75.0) == pytest.approx(0.25)
        assert sched.capacity_factor(1, 100.0) == 1.0
        assert sched.capacity_factor(0, 75.0) == 1.0

    def test_schedule_add_flapping_registers_events(self):
        sched = FailureSchedule()
        added = sched.add_flapping(
            FlappingNode(2, 0.0, 30.0, period=10.0, down_time=2.0)
        )
        assert len(added) == 3
        assert not sched.is_alive(2, 11.0)
        assert sched.is_alive(2, 15.0)

    def test_schedule_severed_queries_partitions(self):
        sched = FailureSchedule()
        sched.add_partition(
            NetworkPartition(5.0, 15.0, groups=((0,), (1,)))
        )
        assert sched.severed(0, 1, 10.0)
        assert not sched.severed(0, 1, 20.0)


class TestGradedSuspicion:
    """The polling face's healthy → degraded → suspect → dead ladder."""

    def _detector(self, config=None, degraded=(), events=()):
        cluster = sp2_blue_horizon(4)
        for w in degraded:
            cluster.failures.add_degraded(w)
        for e in events:
            cluster.failures.add(e)
        return FailureDetector(cluster, config)

    def test_degraded_state_from_sensor_stream(self):
        det = self._detector(
            DetectorConfig(track_degraded=True),
            degraded=[DegradedWindow(2, 10.0, 30.0, capacity_factor=0.4)],
        )
        det.sweep(0.0, 10.0)
        assert det.node_state(2) == "healthy"
        events = det.sweep(10.0, 11.0)
        assert [(e.node_id, e.kind) for e in events] == [(2, "degraded")]
        assert det.node_state(2) == "degraded"
        assert det.suspicion(2) == 0.0          # heartbeats still answered
        restored = det.sweep(11.0, 31.0)
        assert [(e.node_id, e.kind) for e in restored] == [(2, "restored")]
        assert det.node_state(2) == "healthy"

    def test_degraded_events_off_by_default(self):
        det = self._detector(
            degraded=[DegradedWindow(2, 10.0, 30.0, capacity_factor=0.4)]
        )
        det.sweep(0.0, 40.0)
        assert det.events == []                  # transitions not recorded
        assert det.node_state(2) == "healthy"    # window over by t=30

    def test_capacity_estimate_ewma_tracks_degradation(self):
        det = self._detector(
            DetectorConfig(capacity_ewma_alpha=0.3),
            degraded=[DegradedWindow(1, 10.0, 1000.0, capacity_factor=0.4)],
        )
        det.sweep(0.0, 10.0)
        assert det.capacity_estimate(1) == pytest.approx(1.0)
        det.poll(10.0)
        assert det.capacity_estimate(1) == pytest.approx(0.82)  # 1+0.3*(0.4-1)
        det.sweep(11.0, 60.0)
        assert det.capacity_estimate(1) == pytest.approx(0.4, abs=1e-3)
        assert det.capacity_estimate(0) == pytest.approx(1.0)

    def test_suspicion_score_ladder(self):
        det = self._detector(
            DetectorConfig(eviction_hysteresis_polls=2),
            events=[FailureEvent(1, 10.0, 100.0)],
        )
        det.sweep(0.0, 10.0)
        assert det.suspicion(1) == 0.0
        det.poll(10.0)
        assert det.suspicion(1) == pytest.approx(1 / 3)
        det.poll(11.0)
        det.poll(12.0)
        assert det.suspicion(1) == pytest.approx(1.0)
        assert det.node_state(1) == "suspect"    # lease expired, not dead yet
        det.poll(13.0)
        assert det.suspicion(1) == pytest.approx(4 / 3)
        assert det.node_state(1) == "suspect"
        det.poll(14.0)                           # 5th miss = declare_at
        assert math.isinf(det.suspicion(1))
        assert det.node_state(1) == "dead"
        assert det.capacity_estimate(1) == 0.0

    def test_hysteresis_delays_declaration(self):
        outage = [FailureEvent(1, 10.0, 100.0)]
        base = self._detector(events=outage)
        base.sweep(0.0, 20.0)
        assert [e.t_detected for e in base.events] == [12.0]

        lagged = self._detector(
            DetectorConfig(eviction_hysteresis_polls=2), events=outage
        )
        lagged.sweep(0.0, 20.0)
        assert [e.t_detected for e in lagged.events] == [14.0]

    def test_flap_shorter_than_hysteresis_suppressed(self):
        det = self._detector(
            DetectorConfig(eviction_hysteresis_polls=3),
            events=[FailureEvent(1, 10.0, 14.0)],   # 4 misses < declare_at 6
        )
        with obs.collect() as window:
            det.sweep(0.0, 20.0)
        assert det.events == []
        assert det.node_state(1) == "healthy"
        assert window.registry.counter_value("resilience.flap_suppressed") >= 1

    def test_publish_carries_capacity_payload(self):
        mc = MessageCenter()
        mc.register("adm")
        mc.subscribe("adm", "node-failed")
        mc.subscribe("adm", "node-recovered")
        cluster = sp2_blue_horizon(4)
        cluster.failures.add(FailureEvent(2, 10.0, 30.0))
        det = FailureDetector(cluster, message_center=mc)
        det.sweep(0.0, 40.0)
        msgs = mc.drain("adm")
        assert [m.topic for m in msgs] == ["node-failed", "node-recovered"]
        assert msgs[0].payload["node"] == 2
        assert "capacity" in msgs[0].payload


class TestEvictionFace:
    """Analytic eviction face: the suspect → dead hysteresis in closed form."""

    def _detector(self, events, polls=3):
        cluster = sp2_blue_horizon(4)
        for e in events:
            cluster.failures.add(e)
        return FailureDetector(
            cluster, DetectorConfig(eviction_hysteresis_polls=polls)
        )

    def test_flap_visible_to_detection_not_eviction(self):
        # 4s outage: crosses the 3s detection line, not the 6s eviction line.
        det = self._detector([FailureEvent(1, 10.0, 14.0)])
        assert det.detected_down(1, 13.5)
        assert not det.evictable_down(1, 13.5)
        assert math.isinf(det.eviction_fire_time(1, 10.5))
        assert det.detection_fire_time(1, 10.5) == 13.0
        assert 1 in det.live_nodes(13.5)

    def test_long_outage_crosses_both_lines(self):
        det = self._detector([FailureEvent(2, 50.0, 90.0)])
        assert det.detection_fire_time(2, 50.0) == 53.0
        assert det.eviction_fire_time(2, 50.0) == 56.0
        assert det.detected_down(2, 54.0)
        assert not det.evictable_down(2, 54.0)   # suspect window
        assert det.evictable_down(2, 60.0)
        assert 2 not in det.live_nodes(60.0)
        assert det.next_evictable_alive(2, 60.0) == 91.0

    def test_zero_hysteresis_faces_identical(self):
        events = [FailureEvent(1, 10.0, 40.0), FailureEvent(3, 20.0, 22.0)]
        det = self._detector(events, polls=0)
        for t in (0.0, 11.0, 13.5, 25.0, 40.5, 41.5):
            for node in range(4):
                assert det.evictable_down(node, t) == det.detected_down(node, t)
                assert det.eviction_fire_time(node, t) == \
                    det.detection_fire_time(node, t)

    def test_detected_capacity_factor_latency_shifted(self):
        cluster = sp2_blue_horizon(4)
        cluster.failures.add_degraded(
            DegradedWindow(2, 10.0, 30.0, capacity_factor=0.5)
        )
        det = FailureDetector(cluster)
        # Visible over [t_start + detection_latency, t_end + recovery_latency).
        assert det.detected_capacity_factor(2, 12.0) == 1.0
        assert det.detected_capacity_factor(2, 13.0) == pytest.approx(0.5)
        assert det.detected_capacity_factor(2, 30.5) == pytest.approx(0.5)
        assert det.detected_capacity_factor(2, 31.0) == 1.0
        assert det.degraded_nodes(15.0) == [2]
        assert det.degraded_nodes(5.0) == []


class TestDegradedReplay:
    """Simulator: degraded nodes are down-weighted, never evacuated."""

    def _run(self, trace, degraded=(), procs=8):
        cluster = sp2_blue_horizon(procs)
        for w in degraded:
            cluster.failures.add_degraded(w)
        sim = ExecutionSimulator(cluster)
        with obs.collect() as window:
            res = sim.run(trace, StaticSelector(ISPPartitioner()))
        return res, window

    def test_degraded_node_downweighted_not_evacuated(self, small_rm3d_trace):
        windows = [DegradedWindow(2, 1.0, 1e9, capacity_factor=0.35)]
        res, window = self._run(small_rm3d_trace, degraded=windows)
        planned = small_rm3d_trace.meta["num_coarse_steps"]
        assert sum(r.coarse_steps for r in res.records) == planned
        assert res.num_recoveries == 0           # slow ≠ dead: no rollback
        assert window.registry.counter_value(
            "resilience.degraded_downweights"
        ) >= 1
        owned = set()
        for rec in res.records:
            owned |= set(rec.owners)
        assert 2 in owned                        # still owns work

    def test_degradation_slows_but_completes(self, small_rm3d_trace):
        clean, _ = self._run(small_rm3d_trace)
        slowed, _ = self._run(
            small_rm3d_trace,
            degraded=[DegradedWindow(1, 0.0, 1e9, capacity_factor=0.25),
                      DegradedWindow(5, 0.0, 1e9, capacity_factor=0.25)],
        )
        assert slowed.total_runtime > clean.total_runtime
        assert slowed.num_recoveries == 0

    def test_no_degradation_no_downweight_counter(self, small_rm3d_trace):
        res, window = self._run(small_rm3d_trace)
        assert window.registry.counter_value(
            "resilience.degraded_downweights"
        ) == 0.0
        assert res.num_recoveries == 0


class TestFlappingReplay:
    """Simulator: eviction hysteresis bounds flap-induced rollbacks."""

    def _run(self, trace, ft, flaps=(), procs=8):
        cluster = sp2_blue_horizon(procs)
        for spec in flaps:
            cluster.failures.add_flapping(spec)
        sim = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft))
        with obs.collect() as window:
            res = sim.run(trace, StaticSelector(ISPPartitioner()))
        return res, window

    def test_hysteresis_absorbs_flaps_without_rollback(self, small_rm3d_trace):
        clean, _ = self._run(small_rm3d_trace, False)
        horizon = clean.total_runtime
        # Flaps of 4s: past the 3s detection latency, short of the 6s
        # eviction latency under 3 hysteresis polls.
        flaps = [FlappingNode(
            3, 0.2 * horizon, 0.9 * horizon,
            period=max(0.25 * horizon, 12.0), down_time=4.0,
        )]
        ft = FaultTolerance(
            detector=DetectorConfig(eviction_hysteresis_polls=3)
        )
        res, window = self._run(small_rm3d_trace, ft, flaps=flaps)
        planned = small_rm3d_trace.meta["num_coarse_steps"]
        assert sum(r.coarse_steps for r in res.records) == planned
        assert res.num_recoveries == 0
        assert window.registry.counter_value("resilience.flap_suppressed") >= 1
        assert res.total_runtime >= clean.total_runtime  # stalls, not rollbacks

        # The same schedule with zero hysteresis evicts on every flap.
        naive, _ = self._run(small_rm3d_trace, FaultTolerance(), flaps=flaps)
        assert naive.num_recoveries >= 1


class TestPartitionedMessaging:
    def _center(self, ports=("a", "b", "c"), policy=None):
        mc = MessageCenter(policy or DeliveryPolicy())
        for p in ports:
            mc.register(p)
        return mc

    def test_severed_send_dead_letters_partitioned(self):
        mc = self._center()
        mc.bind_port("a", 0)
        mc.bind_port("b", 1)
        mc.inject_partition(NetworkPartition(10.0, 20.0, groups=((0,), (1,))))
        assert mc.send(Message(sender="a", dest="b", topic="t", time=15.0)) \
            is False
        dl = mc.dead_letters[0]
        assert dl.reason == "partitioned"
        assert dl.attempts == 0                  # retries cannot cross a cut
        assert mc.receive("b") is None

    def test_same_group_and_unbound_unaffected(self):
        mc = self._center()
        mc.bind_port("a", 0)
        mc.bind_port("b", 0)                     # same side of the cut
        mc.inject_partition(NetworkPartition(10.0, 20.0, groups=((0,), (1,))))
        assert mc.send(Message(sender="a", dest="b", topic="t", time=15.0))
        # "c" is unbound: control-plane traffic crosses freely.
        assert mc.send(Message(sender="a", dest="c", topic="t", time=15.0))
        assert mc.dead_letter_count == 0

    def test_partition_window_and_heal(self):
        mc = self._center()
        mc.bind_port("a", 0)
        mc.bind_port("b", 1)
        cut = NetworkPartition(10.0, 20.0, groups=((0,), (1,)))
        mc.inject_partition(cut)
        assert mc.send(Message(sender="a", dest="b", topic="t", time=5.0))
        assert not mc.send(Message(sender="a", dest="b", topic="t", time=15.0))
        assert mc.send(Message(sender="a", dest="b", topic="t", time=20.0))
        mc.inject_partition(cut)
        mc.heal_partitions()
        assert mc.send(Message(sender="a", dest="b", topic="t", time=15.0))

    def test_duplicate_injection_suppressed_by_dedup(self):
        mc = self._center(policy=DeliveryPolicy(duplicate_rate=0.8, seed=3))
        with obs.collect() as window:
            for i in range(50):
                assert mc.send(Message(sender="a", dest="b", topic=f"t{i}"))
        injected = window.registry.counter_value("mc.duplicates_injected")
        assert injected > 0
        assert window.registry.counter_value("mc.duplicates_suppressed") \
            == injected
        assert mc.duplicates_suppressed_count == injected
        seqs = [m.seq for m in mc.drain("b")]
        assert len(seqs) == 50                   # exactly-once at the mailbox
        assert len(set(seqs)) == 50

    def test_resent_message_suppressed(self):
        mc = self._center()
        msg = Message(sender="a", dest="b", topic="t")
        assert mc.send(msg)
        assert mc.send(msg)                      # duplicate seq: absorbed
        assert mc.duplicates_suppressed_count == 1
        assert len(mc.drain("b")) == 1

    def test_dedup_window_is_bounded(self):
        mc = self._center()
        first = Message(sender="a", dest="b", topic="t")
        mc.send(first)
        for i in range(DEDUP_WINDOW + 1):
            mc.send(Message(sender="a", dest="b", topic=f"t{i}"))
        # first's seq has been evicted from the window: a replay lands.
        mc.send(first)
        assert mc.duplicates_suppressed_count == 0
        assert len(mc.drain("b")) == DEDUP_WINDOW + 3


class TestBackoffJitter:
    def test_default_ladder_unchanged(self):
        policy = DeliveryPolicy(backoff_base=0.1, backoff_factor=2.0,
                                backoff_cap=1.0)
        for retry in range(6):
            expected = min(0.1 * 2.0**retry, 1.0)
            assert policy.backoff(retry) == pytest.approx(expected)
            # A key without jitter enabled changes nothing.
            assert policy.backoff(retry, key=123) == pytest.approx(expected)

    def test_jitter_deterministic_and_bounded(self):
        a = DeliveryPolicy(backoff_base=0.1, backoff_factor=2.0,
                           backoff_cap=1.0, backoff_jitter=True, seed=7)
        b = DeliveryPolicy(backoff_base=0.1, backoff_factor=2.0,
                           backoff_cap=1.0, backoff_jitter=True, seed=7)
        for key in (1, 2, 999):
            for retry in range(5):
                bound = min(0.1 * 2.0**retry, 1.0)
                w = a.backoff(retry, key=key)
                assert 0.0 <= w < bound
                assert w == b.backoff(retry, key=key)
        # Distinct messages desynchronize.
        waits = {a.backoff(2, key=k) for k in range(20)}
        assert len(waits) > 1
        # No key → no jitter (nothing to seed by).
        assert a.backoff(2) == pytest.approx(0.4)

    def test_jittered_lossy_run_deterministic(self):
        def run():
            mc = MessageCenter(DeliveryPolicy(
                loss_rate=0.5, max_retries=10, seed=5, backoff_jitter=True
            ))
            mc.register("a")
            mc.register("b")
            for i in range(20):
                mc.send(Message(sender="a", dest="b", topic=f"t{i}"))
            return mc.retry_count, mc.delivered_count

        assert run() == run()

    def test_duplicate_rate_validation(self):
        with pytest.raises(ValueError):
            DeliveryPolicy(duplicate_rate=1.0)
        with pytest.raises(ValueError):
            DeliveryPolicy(duplicate_rate=-0.1)


class TestActuatorIdempotency:
    def _component(self, node=0):
        return ManagedComponent(
            name="c", cluster=sp2_blue_horizon(4), node_id=node,
            total_work=1e6,
        )

    def test_duplicate_migrate_order_is_noop(self):
        comp = self._component(node=2)
        comp.state = ComponentState.RUNNING
        act = MigrateActuator(comp)
        assert act.actuate(5.0, target=1) is True
        assert comp.migrations == 1
        # A re-sent order (fresh seq, same target) must not migrate again.
        assert act.actuate(6.0, target=1) is True
        assert comp.migrations == 1
        assert comp.node_id == 1

    def test_failed_component_on_target_still_restarts(self):
        comp = self._component(node=1)
        comp.progress = 5e5
        comp.checkpoint = 3e5
        comp.state = ComponentState.FAILED
        act = MigrateActuator(comp)
        # Failed-in-place: the "same target" shortcut must not skip the
        # checkpoint restart.
        assert act.actuate(1.0, target=1) is True
        assert comp.progress == 3e5
        assert comp.state is ComponentState.RUNNING
        assert comp.migrations == 1


class TestChaosMatrix:
    def test_config_validation(self):
        from repro.resilience.chaos import MatrixConfig

        with pytest.raises(ValueError):
            MatrixConfig(num_procs=1)
        with pytest.raises(ValueError):
            MatrixConfig(fault_types=("crash", "meteor"))
        with pytest.raises(ValueError):
            MatrixConfig(intensities=("medium",))
        with pytest.raises(ValueError):
            MatrixConfig(intensities=())
        with pytest.raises(ValueError):
            MatrixConfig(hysteresis_polls=0)

    def test_matrix_smoke_invariants_hold(self):
        from repro.resilience.chaos import MatrixConfig, run_chaos_matrix

        config = MatrixConfig(
            num_coarse_steps=12,
            fault_types=("degraded", "partition", "checkpoint"),
            intensities=("low",),
        )
        result = run_chaos_matrix(config)
        agg = result["aggregate"]
        assert agg["cells"] == 3
        assert agg["cells_failed"] == 0
        assert agg["all_invariants_hold"]
        for cell in result["cells"]:
            assert all(cell["invariants"].values()), cell

    def test_matrix_scenarios_registered(self):
        from repro.resilience.chaos import FAULT_TYPES
        from repro.sweep.builtin import ensure_registered
        from repro.sweep.scenario import get_scenario

        ensure_registered()
        for fault in FAULT_TYPES:
            scenario = get_scenario(f"chaos-matrix-{fault}")
            assert "matrix" in scenario.tags
