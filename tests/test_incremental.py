"""The incremental regrid path: diffing, map updates, and the reuse cache.

Two layers of guarantees:

1. unit semantics of :func:`repro.amr.diff.diff_hierarchies` (what is
   dirty, what is compatible), and
2. **bit-identity** — the incremental workload-map update, the
   geometry-reusing unit rebuild, and a fully incremental simulator run
   must match their full-recompute counterparts byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.diff import diff_hierarchies, patch_signature
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.trace import AdaptationTrace, Snapshot
from repro.amr.workload import composite_load_map, update_composite_load_map
from repro.config import SimulatorOptions
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.execsim.reuse import REUSE_DIRTY_THRESHOLD, UnitsReuseCache
from repro.gridsys import sp2_blue_horizon
from repro.partitioners import ISPPartitioner
from repro.partitioners.units import rebuild_units, units_from_map

DOMAIN = Box((0, 0, 0), (24, 12, 12))


def _hier(fine_boxes, ratio=2, load=1.0, base_load=1.0):
    """Two-level hierarchy with the given fine-level boxes (fine index space)."""
    base = Level(index=0, ratio=1)
    base.add(Patch(box=DOMAIN, level=0, patch_id=0, load_per_cell=base_load))
    levels = [base]
    if fine_boxes:
        lvl = Level(index=1, ratio=ratio)
        for n, b in enumerate(fine_boxes):
            lvl.add(Patch(box=Box(*b), level=1, patch_id=n,
                          load_per_cell=load))
        levels.append(lvl)
    return GridHierarchy(domain=DOMAIN, levels=levels)


class TestDiff:
    def test_identical_hierarchies(self):
        a = _hier([((4, 4, 4), (12, 8, 8))])
        b = _hier([((4, 4, 4), (12, 8, 8))])
        d = diff_hierarchies(a, b)
        assert d.compatible and d.identical
        assert d.dirty_fraction == 0.0
        assert not d.dirty_mask.any()

    def test_moved_patch_marks_both_footprints(self):
        a = _hier([((4, 4, 4), (12, 8, 8))])
        b = _hier([((8, 4, 4), (16, 8, 8))])
        d = diff_hierarchies(a, b)
        assert d.compatible and not d.identical
        # base footprints: old [2:6), new [4:8) along x, [2:4) in y/z
        assert d.dirty_mask[2:8, 2:4, 2:4].all()
        assert not d.dirty_mask[:2].any() and not d.dirty_mask[8:].any()
        assert 0.0 < d.dirty_fraction < 1.0

    def test_load_change_dirties_patch(self):
        a = _hier([((4, 4, 4), (12, 8, 8))], load=1.0)
        b = _hier([((4, 4, 4), (12, 8, 8))], load=2.0)
        d = diff_hierarchies(a, b)
        assert d.compatible and not d.identical
        assert d.dirty_mask[2:6, 2:4, 2:4].all()

    def test_level_count_change_dirties_new_level(self):
        a = _hier([])
        b = _hier([((4, 4, 4), (12, 8, 8))])
        d = diff_hierarchies(a, b)
        assert d.compatible and not d.identical
        assert 1 in d.dirty_levels

    def test_domain_change_incompatible(self):
        a = _hier([])
        other = GridHierarchy(domain=Box((0, 0, 0), (16, 12, 12)))
        d = diff_hierarchies(a, other)
        assert not d.compatible
        assert d.dirty_fraction == 1.0

    def test_ratio_change_incompatible(self):
        a = _hier([((4, 4, 4), (12, 8, 8))], ratio=2)
        b = _hier([((8, 8, 8), (24, 16, 16))], ratio=4)
        d = diff_hierarchies(a, b)
        assert not d.compatible

    def test_reordered_level_fully_dirty(self):
        boxes = [((0, 0, 0), (8, 4, 4)), ((16, 8, 8), (24, 12, 12))]
        a = _hier(boxes)
        b = _hier(list(reversed(boxes)))
        d = diff_hierarchies(a, b)
        assert d.compatible and not d.identical
        assert 1 in d.dirty_levels

    def test_signature_ignores_patch_id(self):
        p1 = Patch(box=Box((0, 0, 0), (4, 4, 4)), level=1, patch_id=3)
        p2 = Patch(box=Box((0, 0, 0), (4, 4, 4)), level=1, patch_id=9)
        assert patch_signature(p1) == patch_signature(p2)


class TestIncrementalMapUpdate:
    def _assert_incremental_equals_full(self, old_h, new_h):
        d = diff_hierarchies(old_h, new_h)
        assert d.compatible
        updated = update_composite_load_map(
            composite_load_map(old_h), new_h, d.dirty_mask
        )
        full = composite_load_map(new_h)
        np.testing.assert_array_equal(updated.values, full.values)

    def test_moved_patch(self):
        self._assert_incremental_equals_full(
            _hier([((4, 4, 4), (12, 8, 8))]),
            _hier([((8, 4, 4), (16, 8, 8))]),
        )

    def test_added_and_removed_patches(self):
        self._assert_incremental_equals_full(
            _hier([((0, 0, 0), (8, 4, 4)), ((16, 8, 8), (24, 12, 12))]),
            _hier([((0, 0, 0), (8, 4, 4)), ((32, 16, 16), (40, 20, 20))]),
        )

    def test_unaligned_patch_edges(self):
        # odd extents: partial base-cell coverage on the trailing edges
        self._assert_incremental_equals_full(
            _hier([((3, 3, 3), (11, 9, 7))]),
            _hier([((5, 3, 3), (13, 9, 7))]),
        )

    def test_randomized_regrid_sequences(self):
        rng = np.random.default_rng(7)
        domain = Box((0, 0, 0), (20, 20, 10))
        rg = Regridder(domain, RegridPolicy(thresholds=(0.4, 0.8)))
        prev = None
        checked = 0
        for k in range(12):
            # a refinement front drifting across the domain, with noise
            err = np.zeros(domain.shape)
            x0 = 2 + k
            err[x0:x0 + 5, 6:14, 2:8] = 0.6
            err[x0 + 1:x0 + 3, 8:12, 3:6] = 0.95
            err += 0.1 * rng.random(domain.shape)
            h = rg.regrid(err)
            if prev is not None:
                d = diff_hierarchies(prev, h)
                if d.compatible and not d.identical:
                    updated = update_composite_load_map(
                        composite_load_map(prev), h, d.dirty_mask
                    )
                    np.testing.assert_array_equal(
                        updated.values, composite_load_map(h).values
                    )
                    checked += 1
            prev = h
        assert checked > 0

    def test_domain_mismatch_rejected(self):
        h = _hier([])
        other = GridHierarchy(domain=Box((0, 0, 0), (16, 12, 12)))
        with pytest.raises(ValueError):
            update_composite_load_map(
                composite_load_map(other), h, np.zeros(h.domain.shape, bool)
            )


class TestRebuildUnits:
    def test_matches_full_build(self):
        h = _hier([((4, 4, 4), (12, 8, 8))])
        wmap1 = composite_load_map(h)
        cached = units_from_map(wmap1, granularity=4, curve="hilbert")
        h2 = _hier([((8, 4, 4), (16, 8, 8))], load=3.0)
        wmap2 = composite_load_map(h2)
        rebuilt = rebuild_units(cached, wmap2)
        full = units_from_map(wmap2, granularity=4, curve="hilbert")
        np.testing.assert_array_equal(rebuilt.loads, full.loads)
        np.testing.assert_array_equal(rebuilt.ijk, full.ijk)
        np.testing.assert_array_equal(rebuilt.lattice_index, full.lattice_index)
        np.testing.assert_array_equal(
            rebuilt.curve_position, full.curve_position
        )

    def test_domain_change_rejected(self):
        h = _hier([])
        cached = units_from_map(composite_load_map(h), granularity=4,
                                curve="hilbert")
        other = GridHierarchy(domain=Box((0, 0, 0), (16, 12, 12)))
        with pytest.raises(ValueError):
            rebuild_units(cached, composite_load_map(other))


def _trace(hierarchies, steps_per=4):
    t = AdaptationTrace(meta={"num_coarse_steps": steps_per * len(hierarchies)})
    for k, h in enumerate(hierarchies):
        t.append(Snapshot(step=k * steps_per, hierarchy=h))
    return t


class TestReuseCache:
    def test_localized_transition_hits_incrementally(self):
        cache = UnitsReuseCache()
        a = _hier([((4, 4, 4), (12, 8, 8))])
        b = _hier([((8, 4, 4), (16, 8, 8))])
        ua = cache.units_for(a, granularity=4)
        ub = cache.units_for(b, granularity=4)
        assert cache.misses == 1 and cache.hits == 1
        np.testing.assert_array_equal(
            ub.loads, units_from_map(
                composite_load_map(b), granularity=4, curve="hilbert"
            ).loads,
        )
        # geometry shared with the first build, not recomputed
        assert ub.lattice_index is ua.lattice_index

    def test_all_patches_moved_falls_back_to_full_recompute(self):
        """Above the dirty threshold the masked update is abandoned."""
        cache = UnitsReuseCache()
        a = _hier([((0, 0, 0), (48, 24, 24))], load=1.0)
        b = _hier([((0, 0, 0), (48, 24, 24))], load=2.0)  # every cell dirty
        assert diff_hierarchies(a, b).dirty_fraction > REUSE_DIRTY_THRESHOLD
        cache.units_for(a, granularity=4)
        ub = cache.units_for(b, granularity=4)
        assert cache.hits == 1  # geometry-only reuse still counts
        np.testing.assert_array_equal(
            ub.loads, units_from_map(
                composite_load_map(b), granularity=4, curve="hilbert"
            ).loads,
        )

    def test_incompatible_transition_is_a_miss(self):
        cache = UnitsReuseCache()
        cache.units_for(_hier([((4, 4, 4), (12, 8, 8))], ratio=2),
                        granularity=4)
        cache.units_for(_hier([((8, 8, 8), (24, 16, 16))], ratio=4),
                        granularity=4)
        assert cache.misses == 2 and cache.hits == 0

    def test_hit_rate(self):
        cache = UnitsReuseCache()
        h = _hier([((4, 4, 4), (12, 8, 8))])
        cache.units_for(h, granularity=4)
        cache.units_for(h, granularity=4)
        cache.units_for(h, granularity=4)
        assert cache.hit_rate == pytest.approx(2.0 / 3.0)


class TestSimulatorEquivalence:
    """Incremental runs must be byte-identical to full-recompute runs."""

    def _assert_runs_identical(self, trace, cluster):
        res_inc = ExecutionSimulator(cluster, options=SimulatorOptions(incremental=True)).run(
            trace, StaticSelector(ISPPartitioner())
        )
        res_full = ExecutionSimulator(cluster, options=SimulatorOptions(incremental=False)).run(
            trace, StaticSelector(ISPPartitioner())
        )
        assert len(res_inc.records) == len(res_full.records)
        for a, b in zip(res_inc.records, res_full.records):
            assert a == b
        assert res_inc.useful_work == res_full.useful_work
        assert res_inc.ghost_work == res_full.ghost_work
        np.testing.assert_array_equal(res_inc.proc_work, res_full.proc_work)

    def test_localized_adaptation(self):
        hierarchies = [
            _hier([((4 + 2 * k, 4, 4), (12 + 2 * k, 8, 8))])
            for k in range(5)
        ]
        self._assert_runs_identical(_trace(hierarchies), sp2_blue_horizon(8))

    def test_every_patch_moves_every_snapshot(self):
        """Worst case: nothing reusable but geometry; still identical."""
        hierarchies = [
            _hier([((4, 4, 4), (12, 8, 8))], load=1.0 + 0.37 * k)
            for k in range(4)
        ]
        self._assert_runs_identical(_trace(hierarchies), sp2_blue_horizon(4))

    def test_rm3d_trace(self, small_rm3d_trace):
        self._assert_runs_identical(small_rm3d_trace, sp2_blue_horizon(8))
