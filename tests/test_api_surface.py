"""The public API surface matches its committed snapshot.

``repro.api`` is the stable facade; ``tests/golden/api_surface.json``
records every export's kind, defining module and signature, plus the
top-level ``repro.__all__`` list.  Any drift — an addition, a removal,
a signature change — fails here until the snapshot is regenerated
deliberately (``PYTHONPATH=src python tests/golden/regen_api_surface.py``)
in the same commit as the change.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

TESTS = Path(__file__).parent
GOLDEN = TESTS / "golden" / "api_surface.json"
REGEN = TESTS / "golden" / "regen_api_surface.py"

_HINT = (
    "public API surface drifted from tests/golden/api_surface.json; if the "
    "change is intended, regenerate with "
    "'PYTHONPATH=src python tests/golden/regen_api_surface.py'"
)


def _describe_surface():
    """The live surface, computed by the committed regen script itself."""
    spec = importlib.util.spec_from_file_location("_regen_api_surface", REGEN)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.describe_surface()


@pytest.fixture(scope="module")
def surfaces():
    return json.loads(GOLDEN.read_text()), _describe_surface()


def test_facade_names_match_snapshot(surfaces):
    golden, live = surfaces
    assert sorted(live["repro.api"]) == sorted(golden["repro.api"]), _HINT


def test_facade_entries_match_snapshot(surfaces):
    golden, live = surfaces
    for name in golden["repro.api"]:
        assert live["repro.api"].get(name) == golden["repro.api"][name], (
            f"{name}: {_HINT}"
        )


def test_top_level_all_matches_snapshot(surfaces):
    golden, live = surfaces
    assert live["repro.__all__"] == golden["repro.__all__"], _HINT


def test_top_level_reexports_facade():
    """Every facade name is importable from the bare ``repro`` package."""
    import repro
    import repro.api

    for name in repro.api.__all__:
        assert name in repro.__all__, f"{name} missing from repro.__all__"
        assert getattr(repro, name) is getattr(repro.api, name)


def test_all_exports_resolve():
    """Everything in ``repro.__all__`` is an attribute or a submodule."""
    import importlib

    import repro

    for name in repro.__all__:
        if getattr(repro, name, None) is not None:
            continue
        # submodules are importable on demand rather than eagerly bound
        assert importlib.import_module(f"repro.{name}") is not None, name
