"""Supplemental tests for behaviors not covered elsewhere."""

import numpy as np
import pytest

from repro.agents import ApplicationDelegatedManager, ManagementScheme, MessageCenter
from repro.amr.box import Box
from repro.amr.workload import WorkloadMap
from repro.gridsys import FailureEvent, linux_cluster, sp2_blue_horizon
from repro.monitoring import ResourceMonitor
from repro.partitioners import ISPPartitioner, PBDISPPartitioner, build_units
from repro.sfc import curve_order


class TestWorkloadMapExtras:
    def test_flat_loads_follows_order(self):
        domain = Box.from_shape((4, 4, 4))
        values = np.arange(64, dtype=float).reshape(4, 4, 4)
        wm = WorkloadMap(domain, values)
        order = curve_order((4, 4, 4))
        flat = wm.flat_loads(order)
        assert flat.shape == (64,)
        assert flat.sum() == pytest.approx(values.sum())
        # first element corresponds to the first cell along the curve
        assert flat[0] == values.reshape(-1)[order[0]]

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(Box.from_shape((2, 2, 2)), -np.ones((2, 2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(Box.from_shape((2, 2, 2)), np.ones((3, 3, 3)))


class TestSubdomainCount:
    def test_contiguous_partition_counts_segments(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = ISPPartitioner().partition(units, 5)
        assert p.subdomain_count() == 5

    def test_geometric_partition_crosses_curve(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = PBDISPPartitioner().partition(units, 5)
        assert p.subdomain_count() >= 5


class TestADMInternals:
    def test_select_scheme_default(self):
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(
            message_center=mc, cluster=sp2_blue_horizon(2)
        )
        assert adm.select_scheme("component-failed") is ManagementScheme.MIGRATION

    def test_best_node_without_monitor_skips_dead(self):
        cluster = sp2_blue_horizon(3)
        cluster.failures.add(FailureEvent(1, 0.0, 100.0))
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(message_center=mc, cluster=cluster)
        best = adm.best_node(5.0, exclude=0)
        assert best == 2  # node 1 is down, node 0 excluded

    def test_best_node_with_monitor_prefers_forecast_fast(self):
        cluster = linux_cluster(4, seed=9)
        monitor = ResourceMonitor(cluster, seed=10)
        monitor.sample_range(0.0, 32.0, 1.0)
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(
            message_center=mc, cluster=cluster, monitor=monitor
        )
        # stepped load: node 0 is the least loaded
        assert adm.best_node(40.0, exclude=3) == 0


class TestMonitorEnsembleAccess:
    def test_ensemble_diagnostics(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, seed=2)
        mon.sample_range(0.0, 12.0, 1.0)
        ens = mon.ensemble(0, "cpu")
        errs = ens.postcast_errors()
        assert errs and all(v >= 0 or np.isnan(v) for v in errs.values())


class TestClusterPresetsScale:
    @pytest.mark.parametrize("n", [1, 4, 64])
    def test_sp2_sizes(self, n):
        c = sp2_blue_horizon(n)
        assert c.num_nodes == n

    def test_sp2_rejects_zero(self):
        with pytest.raises(ValueError):
            sp2_blue_horizon(0)

    def test_linux_rejects_zero(self):
        with pytest.raises(ValueError):
            linux_cluster(0)
