"""Supplemental tests for behaviors not covered elsewhere."""

import numpy as np
import pytest

from repro.agents import ApplicationDelegatedManager, ManagementScheme, MessageCenter
from repro.amr.box import Box
from repro.amr.workload import WorkloadMap
from repro.gridsys import FailureEvent, linux_cluster, sp2_blue_horizon
from repro.monitoring import ResourceMonitor
from repro.partitioners import ISPPartitioner, PBDISPPartitioner, build_units
from repro.sfc import curve_order


class TestWorkloadMapExtras:
    def test_flat_loads_follows_order(self):
        domain = Box.from_shape((4, 4, 4))
        values = np.arange(64, dtype=float).reshape(4, 4, 4)
        wm = WorkloadMap(domain, values)
        order = curve_order((4, 4, 4))
        flat = wm.flat_loads(order)
        assert flat.shape == (64,)
        assert flat.sum() == pytest.approx(values.sum())
        # first element corresponds to the first cell along the curve
        assert flat[0] == values.reshape(-1)[order[0]]

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(Box.from_shape((2, 2, 2)), -np.ones((2, 2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMap(Box.from_shape((2, 2, 2)), np.ones((3, 3, 3)))


class TestSubdomainCount:
    def test_contiguous_partition_counts_segments(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = ISPPartitioner().partition(units, 5)
        assert p.subdomain_count() == 5

    def test_geometric_partition_crosses_curve(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = PBDISPPartitioner().partition(units, 5)
        assert p.subdomain_count() >= 5


class TestADMInternals:
    def test_select_scheme_default(self):
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(
            message_center=mc, cluster=sp2_blue_horizon(2)
        )
        assert adm.select_scheme("component-failed") is ManagementScheme.MIGRATION

    def test_best_node_without_monitor_skips_dead(self):
        cluster = sp2_blue_horizon(3)
        cluster.failures.add(FailureEvent(1, 0.0, 100.0))
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(message_center=mc, cluster=cluster)
        best = adm.best_node(5.0, exclude=0)
        assert best == 2  # node 1 is down, node 0 excluded

    def test_best_node_with_monitor_prefers_forecast_fast(self):
        cluster = linux_cluster(4, seed=9)
        monitor = ResourceMonitor(cluster, seed=10)
        monitor.sample_range(0.0, 32.0, 1.0)
        mc = MessageCenter()
        adm = ApplicationDelegatedManager(
            message_center=mc, cluster=cluster, monitor=monitor
        )
        # stepped load: node 0 is the least loaded
        assert adm.best_node(40.0, exclude=3) == 0


class TestMonitorEnsembleAccess:
    def test_ensemble_diagnostics(self, loaded_cluster):
        mon = ResourceMonitor(loaded_cluster, seed=2)
        mon.sample_range(0.0, 12.0, 1.0)
        ens = mon.ensemble(0, "cpu")
        errs = ens.postcast_errors()
        assert errs and all(v >= 0 or np.isnan(v) for v in errs.values())


class TestClusterPresetsScale:
    @pytest.mark.parametrize("n", [1, 4, 64])
    def test_sp2_sizes(self, n):
        c = sp2_blue_horizon(n)
        assert c.num_nodes == n

    def test_sp2_rejects_zero(self):
        with pytest.raises(ValueError):
            sp2_blue_horizon(0)

    def test_linux_rejects_zero(self):
        with pytest.raises(ValueError):
            linux_cluster(0)


class TestPACMetricsEdges:
    """PAC metric edge cases: empty adjacency and lattice resampling."""

    def test_comm_volume_zero_for_single_unit(self):
        from repro.partitioners import evaluate_partition

        wm = WorkloadMap(Box.from_shape((4, 4, 4)), np.ones((4, 4, 4)))
        units = build_units(wm, granularity=4)  # one unit, no adjacency
        assert len(units) == 1
        m = evaluate_partition(ISPPartitioner().partition(units, 1))
        assert m.comm_volume == 0.0
        assert m.load_imbalance_pct == pytest.approx(0.0)

    def test_migration_resamples_mismatched_lattices(self, small_hierarchy):
        from repro.partitioners import evaluate_partition

        coarse = build_units(small_hierarchy, granularity=4)
        fine = build_units(small_hierarchy, granularity=2)
        prev = ISPPartitioner().partition(coarse, 4)
        cur = ISPPartitioner().partition(fine, 4)
        m = evaluate_partition(cur, prev)
        assert np.isfinite(m.data_migration)
        assert 0.0 <= m.data_migration <= cur.units.total_load

    def test_migration_resample_identity_when_owners_align(self):
        from repro.partitioners import evaluate_partition

        wm = WorkloadMap(Box.from_shape((8, 4, 4)), np.ones((8, 4, 4)))
        coarse = build_units(wm, granularity=4)
        fine = build_units(wm, granularity=2)
        # One processor: every lattice cell is owned by 0 at both
        # granularities, so the nearest-neighbor resample must report
        # zero migration.
        prev = ISPPartitioner().partition(coarse, 1)
        cur = ISPPartitioner().partition(fine, 1)
        assert evaluate_partition(cur, prev).data_migration == 0.0


class TestClusteringEdges:
    """Berger–Rigoutsos paths not reached by the main clustering suite."""

    def test_min_width_validation(self):
        from repro.amr.clustering import cluster_flags

        with pytest.raises(ValueError):
            cluster_flags(np.ones((2, 2, 2), dtype=bool), min_width=0)

    def test_min_width_blocks_splitting(self):
        from repro.amr.clustering import cluster_flags

        flags = np.zeros((8, 2, 2), dtype=bool)
        flags[0], flags[7] = True, True  # sparse: efficiency 0.25
        boxes = cluster_flags(flags, min_efficiency=0.9, min_width=8)
        assert len(boxes) == 1
        assert boxes[0] == Box((0, 0, 0), (8, 2, 2))

    def test_max_boxes_caps_fanout(self):
        from repro.amr.clustering import cluster_flags

        rng = np.random.default_rng(3)
        flags = rng.random((16, 16, 16)) < 0.05
        uncapped = cluster_flags(flags, min_efficiency=0.95)
        capped = cluster_flags(flags, min_efficiency=0.95, max_boxes=3)
        # The cap stops further splitting once reached; branches already
        # in flight still emit one box each, so the output shrinks far
        # below the uncapped fan-out without losing coverage.
        assert 1 <= len(capped) < len(uncapped)
        covered = np.zeros_like(flags)
        for b in capped:
            covered[b.slices()] = True
        assert covered[flags].all()

    def test_uniform_signature_falls_back_to_halving(self):
        from repro.amr.clustering import cluster_flags

        # A diagonal line: every per-axis signature is constant (no holes,
        # zero Laplacian), forcing the midpoint-of-longest-axis fallback.
        flags = np.zeros((8, 8, 8), dtype=bool)
        for i in range(8):
            flags[i, i, i] = True
        boxes = cluster_flags(flags, min_efficiency=0.5, min_width=2)
        assert len(boxes) >= 2
        covered = np.zeros_like(flags)
        for b in boxes:
            covered[b.slices()] = True
        assert covered[flags].all()

    def test_hole_split_prefers_separable_regions(self):
        from repro.amr.clustering import cluster_flags

        flags = np.zeros((16, 4, 4), dtype=bool)
        flags[0:3], flags[13:16] = True, True  # two blobs, wide hole
        boxes = cluster_flags(flags, min_efficiency=0.9, min_width=2)
        assert sorted(b.lo[0] for b in boxes) == [0, 13]
        assert all(b.shape[0] == 3 for b in boxes)
