"""Shared CLI flags parse and document identically across every verb.

``--json`` / ``--seed`` / ``--cache-dir`` come from one parent parser
(:func:`repro.cli._common_parent`), so their help text, defaults, and
parsing behavior cannot drift between ``run``, ``sweep``, ``chaos``,
``report``, ``trace``, ``serve`` and the bench verbs.  Also covers the
``serve`` verb's own argument validation and its one-shot stream mode.
"""

from __future__ import annotations

import argparse
import json
import time

import pytest

from repro.cli import SHARED_OPTION_HELP, VERBS, build_parser, main

#: minimal extra argv each verb needs to parse successfully
REQUIRED_ARGS = {
    "run": ["table2"],
    "benchdiff": ["a.json", "b.json"],
    "top": ["--socket", "/tmp/repro.sock"],
}


def _subparsers() -> dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return dict(action.choices)


def test_every_verb_is_a_subparser():
    assert sorted(_subparsers()) == sorted(VERBS)


@pytest.mark.parametrize("verb", VERBS)
def test_shared_flags_parse_identically(verb):
    parser = build_parser()
    argv = [verb, *REQUIRED_ARGS.get(verb, []),
            "--seed", "7", "--cache-dir", "/tmp/x", "--json", "out.json"]
    args = parser.parse_args(argv)
    assert args.seed == 7
    assert args.cache_dir == "/tmp/x"
    assert args.json == "out.json"


@pytest.mark.parametrize("verb", VERBS)
def test_shared_flag_defaults_identical(verb):
    parser = build_parser()
    args = parser.parse_args([verb, *REQUIRED_ARGS.get(verb, [])])
    assert args.seed == 0
    assert args.cache_dir is None
    assert args.json is None


@pytest.mark.parametrize("verb", VERBS)
def test_bare_json_flag_means_stdout(verb):
    parser = build_parser()
    args = parser.parse_args([verb, *REQUIRED_ARGS.get(verb, []), "--json"])
    assert args.json == "-"


@pytest.mark.parametrize("verb", VERBS)
def test_shared_help_text_identical(verb):
    """Every verb documents the shared options with the same one-liner."""
    help_text = _subparsers()[verb].format_help()
    for flag, text in SHARED_OPTION_HELP.items():
        assert flag in help_text
        # argparse wraps help across lines; compare word sequences
        assert " ".join(text.split()) in " ".join(help_text.split())


class TestServeVerbValidation:
    @pytest.mark.parametrize("argv", [
        ["serve", "--workers", "0"],
        ["serve", "--queue-capacity", "0"],
        ["serve", "--max-batch", "0"],
        ["serve", "--requests", "a.jsonl", "--socket", "/tmp/s.sock"],
        ["serve", "--snapshot-interval", "0"],
        ["top"],
        ["top", "--socket", "/tmp/s.sock", "--interval", "0"],
        ["top", "--socket", "/tmp/s.sock", "--count", "0"],
        ["top", "--socket", "/tmp/s.sock", "--flight-tail", "-1"],
    ])
    def test_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2


def test_serve_stream_mode_end_to_end(tmp_path, capsys):
    from repro.sweep.scenario import FunctionScenario, register, unregister

    # a scenario slow enough that the duplicate submit always lands
    # while the first execution is still in flight (table2 can finish
    # in single-digit ms, turning the dedup into a racy cache hit)
    def _slow(ctx):
        time.sleep(0.2)
        return {"ok": True}

    register(FunctionScenario("cli-slow", _slow), replace=True)
    requests = tmp_path / "jobs.jsonl"
    requests.write_text(
        '{"op": "submit", "id": "a", "scenario": "cli-slow"}\n'
        '{"op": "submit", "id": "b", "scenario": "cli-slow"}\n'
        '{"op": "submit", "id": "c", "scenario": "no-such"}\n'
    )
    summary_path = tmp_path / "summary.json"
    try:
        code = main([
            "serve", "--requests", str(requests),
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(summary_path),
        ])
    finally:
        unregister("cli-slow")
    assert code == 0
    docs = [json.loads(line) for line in
            capsys.readouterr().out.splitlines()]
    results = {d["id"]: d for d in docs if d["op"] == "result"}
    assert results["a"]["status"] == "done"
    # the duplicate submit coalesced onto the same job
    assert results["a"]["job"] == results["b"]["job"]
    assert results["c"]["status"] == "shed"
    summary = json.loads(summary_path.read_text())
    assert summary["by_status"] == {"done": 2, "shed": 1}
    assert summary["stats"]["counters"]["dedup_hits"] == 1


def test_serve_stream_mode_failure_exit_code(tmp_path, capsys, monkeypatch):
    """A failed job makes the serve verb exit non-zero (shed does not)."""
    from repro.sweep.scenario import FunctionScenario, register, unregister

    def _boom(ctx):
        raise RuntimeError("no")

    register(FunctionScenario("cli-boom", _boom), replace=True)
    try:
        requests = tmp_path / "jobs.jsonl"
        requests.write_text('{"op": "submit", "scenario": "cli-boom"}\n')
        code = main(["serve", "--requests", str(requests)])
    finally:
        unregister("cli-boom")
    assert code == 1
