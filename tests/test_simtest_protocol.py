"""Wire-protocol edge cases under simulated schedules.

Satellite to the simtest harness: fixed, hand-written workloads aimed at
specific protocol windows — a cancel racing the terminal commit, a drain
landing inside a duplicate-submit burst — swept across many seeded
schedules so both sides of each race actually occur; plus a stats-stream
that keeps ticking across an injected worker death on a real server,
paced by an injected sleeper instead of wall-clock sleeps.
"""

from __future__ import annotations

from repro.config import LiveObsOptions
from repro.serve.jsonl import Session
from repro.serve.server import ScenarioServer
from repro.simtest import WorkloadScript, run_script
from repro.simtest.world import register_sim_scenarios


def _trace_kinds(report):
    return {rec["kind"] for rec in report.trace if rec.get("e") == "ev"}


class TestCancelRacesTerminalCommit:
    """One client cancels while the job is anywhere between queued and
    committed; every schedule must end in a clean terminal state."""

    SCRIPT = WorkloadScript(ops=[
        {"op": "submit", "client": 0, "handle": "h1",
         "scenario": "sim-slow", "x": 2, "priority": "normal"},
        {"op": "cancel", "client": 1, "handle": "h1"},
        {"op": "await", "client": 0, "handle": "h1"},
    ])

    def test_all_schedules_green_and_both_outcomes_reachable(self):
        outcomes = set()
        for seed in range(40):
            report = run_script(self.SCRIPT, seed)
            assert report.ok, (seed, report.violations)
            for rec in report.trace:
                if rec.get("e") == "await-result":
                    outcomes.add(rec["status"])
        # the sweep must actually exercise both sides of the race:
        # cancel landing before dispatch and cancel losing to the commit
        assert {"cancelled", "done"} <= outcomes, outcomes


class TestDrainDuringDuplicateBurst:
    """Same-key submits force dedup attaches; a drain lands mid-burst
    while twins are attaching and the queue is bouncing off capacity."""

    @staticmethod
    def _script() -> WorkloadScript:
        ops = []
        for i in range(1, 7):
            ops.append({
                "op": "submit", "client": i % 2, "handle": f"h{i}",
                "scenario": "sim-fast", "x": 1, "priority": "normal",
            })
            if i == 3:
                ops.append({"op": "drain", "client": 0})
        for i in range(1, 7):
            ops.append({"op": "await", "client": 0, "handle": f"h{i}"})
        return WorkloadScript(
            ops=ops, workers=2, clients=2, queue_capacity=3,
            max_batch=2, use_cache=False, max_retries=0,
        )

    def test_burst_is_green_and_dedup_is_exercised(self):
        script = self._script()
        kinds = set()
        drained = False
        for seed in range(25):
            report = run_script(script, seed)
            assert report.ok, (seed, report.violations)
            kinds |= _trace_kinds(report)
            drained = drained or any(
                rec.get("e") == "drain-result" and rec["ok"]
                for rec in report.trace
            )
        assert "dedup-attach" in kinds, kinds
        assert drained


class TestStatsStreamAcrossWorkerDeath:
    """The telemetry stream must keep ticking while the only worker
    dies and retries — paced by the injected sleeper, no wall sleeps."""

    def test_stream_ticks_through_death_and_retry(self):
        register_sim_scenarios()  # sim_yield is a no-op off-schedule
        server = ScenarioServer(
            workers=1,
            scenario_modules=(),
            death_injector=lambda job, attempt: (
                "before" if attempt == 0 else None
            ),
            max_retries=2,
            live_obs=LiveObsOptions(enabled=True),
        )
        try:
            ticks: list[float] = []
            session = Session(server, sleeper=ticks.append)
            resp = session.dispatch({
                "op": "submit", "id": "r1",
                "scenario": "sim-fast", "params": {"x": 3},
            })
            assert resp["op"] == "accepted"
            frames = list(session.dispatch_iter({
                "op": "stats-stream", "count": 3, "interval_s": 0.5,
            }))
            assert [f["seq"] for f in frames] == [0, 1, 2]
            assert all(f["of"] == 3 for f in frames)
            assert ticks == [0.5, 0.5]  # sleeper paced, never slept
            result = session.dispatch({
                "op": "result", "id": "r1", "timeout_s": 30,
            })
            assert result["status"] == "done"
            assert result["result"]["square"] == 9
            # the death actually happened and was retried through
            assert server.metrics.counter_value("serve.worker_deaths") >= 1
            assert server.metrics.counter_value("serve.retries") >= 1
        finally:
            server.shutdown()
