"""Tests for the experiments package and the CLI."""

import pytest

from repro.experiments import EXPERIMENTS, fig2, table1, table2, table3
from repro.experiments.fig3 import ascii_profile
from repro.cli import main as cli_main


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "fig1", "fig2", "fig3", "fig4",
        }

    def test_modules_expose_run_and_render(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.render)


class TestLightweightExperiments:
    def test_table2_render(self):
        out = table2.render(table2.run())
        assert "Table 2" in out
        for octant in ("I", "VIII"):
            assert octant in out

    def test_fig2_runs_clean(self):
        results = fig2.run()
        assert len(results) == 8
        out = fig2.render(results)
        assert "MISS" not in out

    def test_table3_on_small_trace(self, small_rm3d_trace):
        rows = table3.run(small_rm3d_trace)
        assert len(rows) == len(small_rm3d_trace)
        # render compares against paper indices; needs >= 202 rows, so
        # just exercise the row structure here.
        assert all(r.partitioner for r in rows)

    def test_table1_paper_constants(self):
        assert set(table1.PAPER) == {200, 400, 600, 800, 1000}

    def test_ascii_profile(self):
        import numpy as np

        strip = ascii_profile(np.linspace(0, 1, 128), bins=16)
        assert len(strip) == 16
        assert strip[0] == " " and strip[-1] == "@"


class TestCLI:
    def test_cli_lightweight_experiment(self, capsys):
        assert cli_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_cli_multiple(self, capsys):
        assert cli_main(["table2", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 2" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["table99"])
