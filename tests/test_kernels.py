"""Differential tests: kernel backends vs the frozen scalar oracle.

Every vectorized kernel in :mod:`repro.kernels` must be *bit-identical*
to the scalar loop it replaces.  The oracle is the frozen copy under
``tests/reference/`` (see its freeze rule); both backends are compared
against it over a randomized corpus and a committed golden corpus of
serialized hierarchies + partition digests under ``tests/golden/``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.trace import Snapshot
from repro.amr.workload import VECTOR_MIN_PATCHES, composite_load_map
from repro.core.meta_partitioner import MetaPartitioner
from repro.partitioners import PARTITIONER_REGISTRY, build_units
from repro.partitioners.gmisp import variable_grain_segments
from repro.partitioners.pbd_isp import pbd_partition_cube
from repro.partitioners.sequence import (
    greedy_sequence_partition,
    optimal_sequence_partition,
    weighted_sequence_partition,
)

TESTS = Path(__file__).parent
BACKENDS = kernels.BACKENDS


def _load_reference(name: str):
    path = TESTS / "reference" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


ref_sequence = _load_reference("ref_sequence")
ref_gmisp = _load_reference("ref_gmisp")
ref_pbd = _load_reference("ref_pbd")
ref_workload = _load_reference("ref_workload")


def digest(arr: np.ndarray) -> str:
    """Byte-exact sha256 of an array (int64 for owners, float64 for loads)."""
    arr = np.asarray(arr)
    dtype = np.float64 if np.issubdtype(arr.dtype, np.floating) else np.int64
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=dtype).tobytes()
    ).hexdigest()


# -- randomized corpora -------------------------------------------------------


def _loads_corpus(rng: np.random.Generator):
    """(loads, p) cases spanning the shapes the partitioners meet."""
    cases = []
    for n, p in [(1, 1), (3, 5), (7, 3), (64, 8), (100, 7), (250, 16), (997, 31)]:
        loads = rng.random(n)
        cases.append((loads, p))
        spiky = loads.copy()
        spiky[:: max(n // 5, 1)] *= 200.0
        cases.append((spiky, p))
        sparse = loads * (rng.random(n) > 0.6)
        cases.append((sparse, p))
    cases.append((np.zeros(40), 6))        # degenerate: no load at all
    cases.append((np.ones(12), 12))        # exactly one unit per processor
    cases.append((np.ones(5), 9))          # fewer units than processors
    return cases


def _capacities_corpus(rng: np.random.Generator, p: int):
    caps = [np.ones(p), rng.random(p) + 0.05]
    if p > 1:
        zeroed = rng.random(p) + 0.5
        zeroed[:: 2] = 0.0                 # half the nodes unavailable
        caps.append(zeroed)
    return caps


def _hierarchy_corpus():
    """Regridded hierarchies: blob, bulky noise, sparse spikes."""
    rng = np.random.default_rng(42)
    out = []

    blob_domain = Box((0, 0, 0), (32, 16, 16))
    err = np.zeros(blob_domain.shape)
    err[6:14, 4:10, 4:10] = 0.6
    err[8:12, 5:8, 5:8] = 0.95
    out.append(
        Regridder(blob_domain, RegridPolicy(thresholds=(0.3, 0.8))).regrid(err)
    )

    noise_domain = Box((0, 0, 0), (24, 24, 12))
    noise = rng.random(noise_domain.shape)
    out.append(
        Regridder(noise_domain, RegridPolicy(thresholds=(0.55, 0.85))).regrid(noise)
    )

    sparse_domain = Box((0, 0, 0), (32, 32, 16))
    spikes = (rng.random(sparse_domain.shape) > 0.985).astype(float)
    out.append(
        Regridder(sparse_domain, RegridPolicy(thresholds=(0.5,))).regrid(spikes)
    )
    return out


# -- sequence kernels ---------------------------------------------------------


class TestSequenceDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_greedy_matches_oracle(self, backend):
        rng = np.random.default_rng(1234)
        with kernels.use_backend(backend):
            for loads, p in _loads_corpus(rng):
                got = greedy_sequence_partition(loads, p)
                want = ref_sequence.greedy_sequence_partition(loads, p)
                np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_optimal_matches_oracle(self, backend):
        rng = np.random.default_rng(5678)
        with kernels.use_backend(backend):
            for loads, p in _loads_corpus(rng):
                got = optimal_sequence_partition(loads, p)
                want = ref_sequence.optimal_sequence_partition(loads, p)
                np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_weighted_matches_oracle(self, backend):
        rng = np.random.default_rng(91011)
        with kernels.use_backend(backend):
            for loads, p in _loads_corpus(rng):
                for caps in _capacities_corpus(rng, p):
                    got = weighted_sequence_partition(loads, p, caps)
                    want = ref_sequence.weighted_sequence_partition(loads, p, caps)
                    np.testing.assert_array_equal(got, want)

    def test_backends_agree_pairwise(self):
        """vector == scalar directly, not just both == oracle."""
        rng = np.random.default_rng(1213)
        for loads, p in _loads_corpus(rng):
            with kernels.use_backend("vector"):
                v = greedy_sequence_partition(loads, p)
            with kernels.use_backend("scalar"):
                s = greedy_sequence_partition(loads, p)
            np.testing.assert_array_equal(v, s)


# -- G-MISP segmentation ------------------------------------------------------


class TestGMISPDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_segments_match_oracle(self, backend):
        rng = np.random.default_rng(1415)
        with kernels.use_backend(backend):
            for loads, p in _loads_corpus(rng):
                for coarse in (4, 16, 64):
                    for split_factor in (0.25, 1.0):
                        got = variable_grain_segments(loads, p, coarse, split_factor)
                        want = ref_gmisp.variable_grain_segments(
                            loads, p, coarse, split_factor
                        )
                        np.testing.assert_array_equal(got, want)


# -- pBD-ISP dissection -------------------------------------------------------


class TestPBDDifferential:
    CUBES = [(8, 8, 8), (16, 8, 4), (5, 7, 3), (2, 2, 2), (1, 9, 1)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cube_owners_match_oracle(self, backend):
        rng = np.random.default_rng(1617)
        with kernels.use_backend(backend):
            for shape in self.CUBES:
                for procs in (1, 2, 3, 7, 13):
                    cube = rng.random(shape)
                    got = pbd_partition_cube(cube, procs)
                    want = ref_pbd.pbd_partition_cube(cube, procs)
                    np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_load_cube(self, backend):
        with kernels.use_backend(backend):
            got = pbd_partition_cube(np.zeros((6, 4, 2)), 5)
            want = ref_pbd.pbd_partition_cube(np.zeros((6, 4, 2)), 5)
            np.testing.assert_array_equal(got, want)


# -- composite load map -------------------------------------------------------


class TestWorkloadDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_values_match_oracle(self, backend):
        hierarchies = _hierarchy_corpus()
        # the corpus must actually exercise the batched scatter kernel
        assert any(h.num_patches >= VECTOR_MIN_PATCHES for h in hierarchies)
        with kernels.use_backend(backend):
            for hierarchy in hierarchies:
                got = composite_load_map(hierarchy).values
                want = ref_workload.composite_values(hierarchy)
                np.testing.assert_array_equal(got, want)


# -- golden corpus ------------------------------------------------------------

# costmodel.json is the comm-cost kernel corpus (different schema) owned
# by tests/test_execsim_kernels.py; api_surface.json is the public-API
# snapshot owned by tests/test_api_surface.py; simtest_seeds.json is the
# simulation-fuzzer seed corpus owned by tests/test_simtest.py.
GOLDEN = sorted(
    p for p in (TESTS / "golden").glob("*.json")
    if p.name not in ("costmodel.json", "api_surface.json",
                      "simtest_seeds.json")
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("path", GOLDEN, ids=lambda p: p.stem)
def test_golden_corpus(path, backend):
    doc = json.loads(path.read_text())
    hierarchy = GridHierarchy.from_dict(doc["hierarchy"])
    with kernels.use_backend(backend):
        workload = composite_load_map(hierarchy)
        assert digest(workload.values) == doc["workload_digest"]
        units = build_units(hierarchy, granularity=doc["granularity"])
        for name, want in doc["partitions"].items():
            part = PARTITIONER_REGISTRY[name]().partition(units, doc["num_procs"])
            assert digest(part.assignment) == want, (
                f"{name} drifted from golden digest under {backend} backend"
            )


def test_golden_corpus_exists():
    assert len(GOLDEN) >= 2
    for path in GOLDEN:
        doc = json.loads(path.read_text())
        assert set(doc["partitions"]) == set(PARTITIONER_REGISTRY)


# -- backend switch -----------------------------------------------------------


class TestBackendSwitch:
    def test_env_read_once_lazily(self, monkeypatch):
        monkeypatch.setattr(kernels, "_backend", None)
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        assert kernels.active_backend() == "scalar"
        monkeypatch.setenv(kernels.ENV_VAR, "vector")
        assert kernels.active_backend() == "scalar"

    def test_default_when_env_unset(self, monkeypatch):
        monkeypatch.setattr(kernels, "_backend", None)
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels.active_backend() == kernels.DEFAULT_BACKEND

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "_backend", None)
        monkeypatch.setenv(kernels.ENV_VAR, "simd")
        with pytest.raises(ValueError, match="simd"):
            kernels.active_backend()

    def test_set_backend_normalizes_and_validates(self):
        prev = kernels.active_backend()
        try:
            assert kernels.set_backend("  SCALAR ") == "scalar"
            assert kernels.active_backend() == "scalar"
            with pytest.raises(ValueError):
                kernels.set_backend("bogus")
            assert kernels.active_backend() == "scalar"
        finally:
            kernels.set_backend(prev)

    def test_use_backend_restores_on_exception(self):
        prev = kernels.active_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("scalar"):
                assert kernels.active_backend() == "scalar"
                raise RuntimeError("boom")
        assert kernels.active_backend() == prev

    def test_vectorized_flag(self):
        with kernels.use_backend("vector"):
            assert kernels.vectorized()
        with kernels.use_backend("scalar"):
            assert not kernels.vectorized()

    def test_meta_partitioner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="bogus"):
            MetaPartitioner(kernel_backend="bogus")

    def test_meta_partitioner_pins_backend(self, small_hierarchy):
        prev = kernels.active_backend()
        try:
            kernels.set_backend("vector")
            meta = MetaPartitioner(kernel_backend="scalar")
            meta.decide(Snapshot(step=0, hierarchy=small_hierarchy), None)
            assert kernels.active_backend() == "scalar"
        finally:
            kernels.set_backend(prev)

    def test_unpinned_meta_partitioner_leaves_backend(self, small_hierarchy):
        with kernels.use_backend("scalar"):
            MetaPartitioner().decide(
                Snapshot(step=0, hierarchy=small_hierarchy), None
            )
            assert kernels.active_backend() == "scalar"
