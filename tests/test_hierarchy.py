"""Tests for the grid-hierarchy container."""

import pytest

from repro.amr.box import Box
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy


def make_two_level(domain_shape=(16, 8, 8), fine_lo=(4, 2, 2), fine_hi=(8, 6, 6)):
    domain = Box.from_shape(domain_shape)
    base = Level(index=0, ratio=1)
    base.add(Patch(box=domain, level=0, patch_id=0))
    fine = Level(index=1, ratio=2)
    fine.add(
        Patch(
            box=Box(fine_lo, fine_hi).refine(2),
            level=1,
            patch_id=1,
        )
    )
    return GridHierarchy(domain=domain, levels=[base, fine])


class TestStructure:
    def test_default_base_level(self):
        h = GridHierarchy(domain=Box.from_shape((8, 8, 8)))
        assert h.num_levels == 1
        assert h.total_cells == 512

    def test_cumulative_ratio(self):
        h = make_two_level()
        assert h.cumulative_ratio(0) == 1
        assert h.cumulative_ratio(1) == 2

    def test_cumulative_ratio_out_of_range(self):
        h = make_two_level()
        with pytest.raises(ValueError):
            h.cumulative_ratio(5)

    def test_level_domain(self):
        h = make_two_level()
        assert h.level_domain(1).shape == (32, 16, 16)

    def test_base_must_have_ratio_1(self):
        lvl = Level(index=0, ratio=2)
        lvl.add(Patch(box=Box.from_shape((4, 4, 4)), level=0, patch_id=0))
        with pytest.raises(ValueError):
            GridHierarchy(domain=Box.from_shape((4, 4, 4)), levels=[lvl])


class TestLoadAccounting:
    def test_load_includes_subcycling(self):
        h = make_two_level()
        base_load = 16 * 8 * 8
        fine_cells = 8 * 8 * 8  # (4x4x4 base box) refined by 2
        # level 1 sweeps twice per coarse step
        assert h.load_per_coarse_step() == pytest.approx(
            base_load + 2 * fine_cells
        )

    def test_refined_fraction(self):
        h = make_two_level()
        frac = h.refined_fraction(1)
        assert frac == pytest.approx((4 * 4 * 4) / (16 * 8 * 8))


class TestNesting:
    def test_properly_nested(self, small_hierarchy):
        assert small_hierarchy.is_properly_nested()

    def test_not_nested_detected(self):
        domain = Box.from_shape((8, 8, 8))
        base = Level(index=0, ratio=1)
        base.add(Patch(box=Box((0, 0, 0), (4, 8, 8)), level=0, patch_id=0))
        fine = Level(index=1, ratio=2)
        # Fine patch extends over base cells not covered by level 0 patches.
        fine.add(Patch(box=Box((6, 0, 0), (16, 4, 4)), level=1, patch_id=1))
        h = GridHierarchy(domain=domain, levels=[base, fine])
        assert not h.is_properly_nested()


class TestSignals:
    def test_refined_mask_matches_footprints(self, small_hierarchy):
        mask = small_hierarchy.refined_mask()
        assert mask.shape == small_hierarchy.domain.shape
        covered = sum(
            b.num_cells
            for p, b in small_hierarchy.patches_in_base_space()
            if p.level == 1
        )
        # Level-1 footprint is a superset of deeper levels in base space.
        assert mask.sum() == covered

    def test_scatter_zero_without_refinement(self):
        h = GridHierarchy(domain=Box.from_shape((8, 8, 8)))
        assert h.adaptation_scatter() == 0.0

    def test_scatter_increases_with_separation(self):
        compact = make_two_level(fine_lo=(4, 2, 2), fine_hi=(8, 6, 6))
        domain = Box.from_shape((16, 8, 8))
        base = Level(index=0, ratio=1)
        base.add(Patch(box=domain, level=0, patch_id=0))
        fine = Level(index=1, ratio=2)
        fine.add(Patch(box=Box((0, 0, 0), (4, 4, 4)), level=1, patch_id=1))
        fine.add(Patch(box=Box((28, 12, 12), (32, 16, 16)), level=1, patch_id=2))
        spread = GridHierarchy(domain=domain, levels=[base, fine])
        assert spread.adaptation_scatter() > compact.adaptation_scatter()

    def test_comm_ratio_thin_vs_bulky(self):
        thin = make_two_level(fine_lo=(4, 0, 0), fine_hi=(5, 8, 8))
        bulky = make_two_level(fine_lo=(4, 2, 2), fine_hi=(8, 6, 6))
        assert thin.comm_to_comp_ratio() > bulky.comm_to_comp_ratio()

    def test_comm_ratio_base_only_is_zero(self):
        h = GridHierarchy(domain=Box.from_shape((8, 8, 8)))
        assert h.comm_to_comp_ratio() == 0.0


class TestSerialization:
    def test_roundtrip(self, small_hierarchy):
        d = small_hierarchy.to_dict()
        back = GridHierarchy.from_dict(d)
        assert back.num_levels == small_hierarchy.num_levels
        assert back.total_cells == small_hierarchy.total_cells
        assert back.load_per_coarse_step() == pytest.approx(
            small_hierarchy.load_per_coarse_step()
        )

    def test_copy_is_deep_for_levels(self, small_hierarchy):
        c = small_hierarchy.copy()
        c.levels[0].patches.clear()
        assert len(small_hierarchy.levels[0]) == 1
