"""Legacy keyword shims: warn exactly once, behave byte-identically.

``ExecutionSimulator`` grew a composed :class:`repro.config.SimulatorOptions`
entry point; the old per-keyword spellings (``capacities``,
``partition_time_scale``, ``fault_tolerance``, ``incremental``) still
work but emit one :class:`DeprecationWarning` per call naming every
legacy keyword used — and must produce results identical to the
options-based spelling.
"""

from __future__ import annotations

import json

import pytest

from repro.config import RuntimeConfig, SimulatorOptions
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import sp2_blue_horizon
from repro.partitioners import ISPPartitioner
from repro.resilience import FaultTolerance
from repro.sweep.scenario import jsonify


def _run(sim, trace):
    result = sim.run(trace, StaticSelector(ISPPartitioner()))
    doc = {
        "total_runtime": result.total_runtime,
        "useful_work": result.useful_work,
        "ghost_work": result.ghost_work,
        "records": [
            (r.compute_time, r.comm_time, r.regrid_time,
             r.checkpoint_time, r.recovery_time)
            for r in result.records
        ],
    }
    return json.dumps(jsonify(doc), sort_keys=True)


LEGACY_KWARGS = {
    "capacities": [1.0, 0.5, 1.0, 0.5],
    "partition_time_scale": 2.0,
    "fault_tolerance": True,
    "incremental": False,
}


@pytest.mark.parametrize("kwarg", sorted(LEGACY_KWARGS))
def test_each_legacy_kwarg_warns_exactly_once(kwarg):
    cluster = sp2_blue_horizon(4)
    with pytest.warns(DeprecationWarning) as record:
        ExecutionSimulator(cluster, **{kwarg: LEGACY_KWARGS[kwarg]})
    assert len(record) == 1
    assert kwarg in str(record[0].message)
    assert "SimulatorOptions" in str(record[0].message)


def test_combined_legacy_kwargs_warn_once_naming_all():
    cluster = sp2_blue_horizon(4)
    with pytest.warns(DeprecationWarning) as record:
        ExecutionSimulator(
            cluster, partition_time_scale=2.0, incremental=False
        )
    assert len(record) == 1
    message = str(record[0].message)
    assert "partition_time_scale" in message
    assert "incremental" in message


def test_options_spelling_is_warning_free(recwarn):
    ExecutionSimulator(
        sp2_blue_horizon(4),
        options=SimulatorOptions(partition_time_scale=2.0, incremental=False),
    )
    assert not [w for w in recwarn if w.category is DeprecationWarning]


@pytest.mark.parametrize("kwarg", sorted(LEGACY_KWARGS))
def test_legacy_results_identical(kwarg, small_rm3d_trace):
    """Old and new spellings of the same knob produce identical runs."""
    cluster = sp2_blue_horizon(4)
    with pytest.warns(DeprecationWarning):
        legacy = ExecutionSimulator(cluster, **{kwarg: LEGACY_KWARGS[kwarg]})
    modern = ExecutionSimulator(
        cluster, options=SimulatorOptions(**{kwarg: LEGACY_KWARGS[kwarg]})
    )
    assert _run(legacy, small_rm3d_trace) == _run(modern, small_rm3d_trace)


def test_legacy_kwargs_override_options():
    """An explicit legacy kwarg wins over the options field (and warns)."""
    cluster = sp2_blue_horizon(4)
    with pytest.warns(DeprecationWarning):
        sim = ExecutionSimulator(
            cluster,
            options=SimulatorOptions(partition_time_scale=1.0),
            partition_time_scale=3.0,
        )
    assert sim.partition_time_scale == 3.0


def test_runtime_config_composes_fault_tolerance():
    """RuntimeConfig folds its composed FaultTolerance into the simulator."""
    config = RuntimeConfig()
    ft = config.fault_tolerance()
    assert isinstance(ft, FaultTolerance)
    sim = config.build_simulator(sp2_blue_horizon(4))
    assert sim.fault_tolerance is not None
    assert sim.fault_tolerance.detector == config.detector


def test_runtime_config_respects_explicit_simulator_ft():
    """An explicit SimulatorOptions.fault_tolerance is not overwritten."""
    ft = FaultTolerance()
    config = RuntimeConfig(simulator=SimulatorOptions(fault_tolerance=ft))
    sim = config.build_simulator(sp2_blue_horizon(4))
    assert sim.fault_tolerance is ft
