"""Tests for the scenario-serving runtime (:mod:`repro.serve`).

Covers the protocol validators, the bounded priority queue (admission,
shedding, batching, withdrawal), the server (dedup, caching, priorities,
cancellation in every phase, timeouts, worker-death retries with
exactly-once commitment) and the JSONL transports (stream + socket).
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.serve import (
    JobCancelled,
    JobFailed,
    JobQueue,
    ScenarioServer,
    ServerHandle,
    ShedError,
)
from repro.serve.jsonl import run_requests, serve_socket
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.queue import (
    SHED_QUEUE_FULL,
    SHED_SHUTTING_DOWN,
    SHED_UNKNOWN_SCENARIO,
    Job,
)
from repro.sweep.scenario import FunctionScenario, register, unregister

# -- test scenarios ------------------------------------------------------------

_EXEC_LOG: list[tuple[str, int]] = []
_EXEC_LOCK = threading.Lock()
_GATE = threading.Event()


def _quick(ctx):
    with _EXEC_LOCK:
        _EXEC_LOG.append(("quick", ctx.params["x"]))
    return {"square": ctx.params["x"] ** 2, "seed": ctx.seed}


def _gated(ctx):
    _GATE.wait(timeout=10.0)
    return {"released": True}


def _slow(ctx):
    time.sleep(ctx.params.get("delay", 5.0))
    return {"slept": True}


def _boom(ctx):
    raise RuntimeError("scenario exploded")


_TEST_SCENARIOS = {
    "srv-quick": (_quick, {"x": 3}),
    "srv-gated": (_gated, {}),
    "srv-slow": (_slow, {}),
    "srv-boom": (_boom, {}),
}


@pytest.fixture(autouse=True)
def _register_serve_scenarios():
    for name, (fn, params) in _TEST_SCENARIOS.items():
        register(FunctionScenario(name, fn, dict(params)), replace=True)
    _EXEC_LOG.clear()
    _GATE.clear()
    yield
    for name in _TEST_SCENARIOS:
        unregister(name)


def make_server(**kwargs):
    kwargs.setdefault("scenario_modules", ())
    return ScenarioServer(**kwargs)


# -- protocol ------------------------------------------------------------------


class TestProtocol:
    def test_valid_submit(self):
        req = parse_request(
            '{"op": "submit", "scenario": "s", "priority": "high"}'
        )
        assert req["op"] == "submit"

    @pytest.mark.parametrize("line", [
        "",
        "not json",
        "[1, 2]",
        '{"op": "frobnicate"}',
        '{"op": "submit"}',
        '{"op": "submit", "scenario": ""}',
        '{"op": "submit", "scenario": "s", "params": [1]}',
        '{"op": "submit", "scenario": "s", "priority": "urgent"}',
        '{"op": "submit", "scenario": "s", "timeout_s": -1}',
        '{"op": "cancel"}',
        '{"op": "result"}',
    ])
    def test_malformed_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)


# -- queue ---------------------------------------------------------------------


def _job(seq, priority="normal", requires=()):
    return Job(name=f"j{seq}", params={}, priority=priority, seq=seq,
               requires=tuple(requires))


class TestJobQueue:
    def test_priority_drain_order_fifo_within_lane(self):
        q = JobQueue(capacity=8)
        for job in (_job(1, "low"), _job(2, "normal"), _job(3, "high"),
                    _job(4, "normal")):
            assert q.offer(job) is None
        assert [q.take().seq for _ in range(4)] == [3, 2, 4, 1]

    def test_sheds_beyond_capacity(self):
        q = JobQueue(capacity=2)
        assert q.offer(_job(1)) is None
        assert q.offer(_job(2)) is None
        # the bound is a hard promise: even a high-priority offer sheds
        assert q.offer(_job(3, "high")) == SHED_QUEUE_FULL
        assert len(q) == 2

    def test_closed_queue_sheds_and_drains(self):
        q = JobQueue(capacity=2)
        q.offer(_job(1))
        q.close()
        assert q.offer(_job(2)) == SHED_SHUTTING_DOWN
        assert q.take().seq == 1
        assert q.take() is None

    def test_take_batch_coalesces_compatible_only(self):
        q = JobQueue(capacity=8)
        for job in (_job(1), _job(2, requires=("trace:a",)), _job(3),
                    _job(4, "high")):
            q.offer(job)
        # the high-priority job drains first and has no lane-mates
        assert [j.seq for j in q.take_batch(max_batch=4)] == [4]
        # then the normal lane coalesces compatible jobs, preserving the
        # skipped incompatible job's place
        assert [j.seq for j in q.take_batch(max_batch=4)] == [1, 3]
        assert q.take().seq == 2

    def test_remove_pending(self):
        q = JobQueue(capacity=4)
        job = _job(1)
        q.offer(job)
        assert q.remove(job) is True
        assert q.remove(job) is False
        assert len(q) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)


# -- server --------------------------------------------------------------------


class TestScenarioServer:
    def test_submit_executes_and_caches(self):
        with make_server(workers=1) as server:
            h1 = server.submit("srv-quick", {"x": 4})
            assert h1.result(timeout=10) == {
                "square": 16, "seed": h1._job.seed,
            }
            h2 = server.submit("srv-quick", {"x": 4})
            assert h2.result(timeout=10) == h1.result()
            assert h2.record()["cached"] is True
            stats = server.stats()["counters"]
            assert stats["executions"] == 1
            assert stats["cache_hits"] == 1
        assert len(_EXEC_LOG) == 1

    def test_pending_requests_coalesce(self):
        server = make_server(workers=1, start=False)
        h1 = server.submit("srv-quick", {"x": 5})
        h2 = server.submit("srv-quick", {"x": 5})
        h3 = server.submit("srv-quick", {"x": 6})
        assert h1.job_id == h2.job_id
        assert h1.job_id != h3.job_id
        assert server.stats()["counters"]["dedup_hits"] == 1
        server.start()
        assert h1.result(timeout=10) == h2.result(timeout=10)
        assert h3.result(timeout=10)["square"] == 36
        server.shutdown()
        # one execution for the coalesced pair, one for the distinct job
        assert len(_EXEC_LOG) == 2

    def test_unknown_scenario_shed(self):
        with make_server() as server:
            handle = server.submit("no-such-scenario")
            assert handle.status == "shed"
            with pytest.raises(ShedError) as exc:
                handle.result(timeout=1)
            assert SHED_UNKNOWN_SCENARIO in str(exc.value)
            assert server.stats()["counters"][
                f"shed:{SHED_UNKNOWN_SCENARIO}"] == 1

    def test_queue_full_shed(self):
        server = make_server(workers=1, queue_capacity=2, start=False)
        handles = [server.submit("srv-quick", {"x": i}) for i in range(4)]
        statuses = [h.status for h in handles]
        assert statuses == ["queued", "queued", "shed", "shed"]
        assert server.stats()["counters"][f"shed:{SHED_QUEUE_FULL}"] == 2
        server.start()
        assert handles[0].result(timeout=10)["square"] == 0
        server.shutdown()

    def test_submit_after_shutdown_shed(self):
        server = make_server()
        server.shutdown()
        handle = server.submit("srv-quick", {"x": 1})
        assert handle.status == "shed"
        assert handle.record()["error"] == SHED_SHUTTING_DOWN

    def test_priority_governs_execution_order(self):
        server = make_server(workers=1, max_batch=1, start=False)
        server.submit("srv-quick", {"x": 1}, priority="low")
        server.submit("srv-quick", {"x": 2}, priority="normal")
        server.submit("srv-quick", {"x": 3}, priority="high")
        server.start()
        assert server.drain(timeout=10)
        server.shutdown()
        assert [x for _, x in _EXEC_LOG] == [3, 2, 1]

    def test_cancel_pending(self):
        server = make_server(workers=1, start=False)
        handle = server.submit("srv-quick", {"x": 9})
        assert handle.cancel() is True
        assert handle.status == "cancelled"
        assert len(server.queue) == 0
        with pytest.raises(JobCancelled):
            handle.result(timeout=1)
        # double-cancel is a no-op
        assert handle.cancel() is False
        server.start()
        server.shutdown()
        assert _EXEC_LOG == []

    def test_cancel_detaches_shared_subscriber(self):
        server = make_server(workers=1, start=False)
        h1 = server.submit("srv-quick", {"x": 7})
        h2 = server.submit("srv-quick", {"x": 7})
        assert h1.cancel() is True
        assert h1.status == "cancelled"
        server.start()
        # the surviving subscriber still gets the result
        assert h2.result(timeout=10)["square"] == 49
        with pytest.raises(JobCancelled):
            h1.result(timeout=1)
        server.shutdown()

    def test_cancel_running_is_cooperative(self):
        with make_server(workers=1, start=False) as server:
            running = threading.Event()
            server.add_listener(
                lambda job, kind, t, attrs:
                running.set() if kind == "running" else None
            )
            handle = server.submit("srv-gated")
            server.start()
            # event-driven: the "running" event fires after the status
            # flip, so no status polling loop is needed
            assert running.wait(timeout=10)
            assert handle._job.status == "running"
            assert handle.cancel() is True
            _GATE.set()
            # the detached handle reports done immediately; wait on the
            # job itself for the cooperative post-run commit
            assert handle._job.done.wait(timeout=10)
            assert handle._job.status == "cancelled"
            with pytest.raises(JobCancelled):
                handle.result(timeout=1)

    def test_job_timeout(self):
        with make_server(workers=1) as server:
            handle = server.submit(
                "srv-slow", {"delay": 5.0}, timeout_s=0.05
            )
            assert handle.wait(timeout=10)
            assert handle.record()["status"] == "timeout"
            with pytest.raises(JobFailed):
                handle.result(timeout=1)
            assert server.stats()["counters"]["timeout"] == 1

    def test_failing_scenario_isolated(self):
        with make_server(workers=1) as server:
            bad = server.submit("srv-boom")
            good = server.submit("srv-quick", {"x": 2})
            assert good.result(timeout=10)["square"] == 4
            assert bad.wait(timeout=10)
            assert bad.record()["status"] == "failed"
            assert "scenario exploded" in bad.record()["error"]

    def test_worker_death_retries_exactly_once_commit(self):
        deaths: dict[int, int] = {}

        def injector(job, attempt):
            # first attempt of every job dies before doing any work
            if deaths.get(job.seq, 0) == 0:
                deaths[job.seq] = 1
                return "before"
            return None

        with make_server(workers=1, death_injector=injector) as server:
            handles = [server.submit("srv-quick", {"x": i}) for i in range(3)]
            results = [h.result(timeout=10) for h in handles]
        assert [r["square"] for r in results] == [0, 1, 4]
        # every job executed exactly once despite the injected deaths
        assert sorted(x for _, x in _EXEC_LOG) == [0, 1, 2]
        for h in handles:
            record = h.record()
            assert record["retries"] == 1
            assert record["attempts"] == 2

    def test_worker_death_after_run_commits_once(self):
        """An 'after' death re-executes (at-least-once) but commits once."""
        state = {"n": 0}

        def injector(job, attempt):
            state["n"] += 1
            return "after" if state["n"] == 1 else None

        with make_server(workers=1, death_injector=injector) as server:
            handle = server.submit("srv-quick", {"x": 8})
            assert handle.result(timeout=10)["square"] == 64
            stats = server.stats()["counters"]
        assert len(_EXEC_LOG) == 2  # the work ran twice ...
        assert stats["executions"] == 1  # ... but committed exactly once
        assert stats["completed"] == 1

    def test_worker_death_exhausts_retries(self):
        def injector(job, attempt):
            return "before"

        with make_server(
            workers=1, death_injector=injector, max_retries=2
        ) as server:
            handle = server.submit("srv-quick", {"x": 1})
            assert handle.wait(timeout=10)
            record = handle.record()
        assert record["status"] == "failed"
        assert record["attempts"] == 3
        assert "retries exhausted" in record["error"]
        assert _EXEC_LOG == []

    def test_batched_dispatch_completes_everything(self):
        server = make_server(workers=1, max_batch=4, start=False)
        handles = [server.submit("srv-quick", {"x": i}) for i in range(6)]
        server.start()
        assert [h.result(timeout=10)["square"] for h in handles] == [
            i ** 2 for i in range(6)
        ]
        server.shutdown()

    def test_disk_cache_round_trip(self, tmp_path):
        with make_server(workers=1, cache_dir=str(tmp_path)) as server:
            server.submit("srv-quick", {"x": 3}).result(timeout=10)
        # a fresh server instance sees the on-disk result
        with make_server(workers=1, cache_dir=str(tmp_path)) as server:
            handle = server.submit("srv-quick", {"x": 3})
            assert handle.record()["cached"] is True
            assert handle.result(timeout=10)["square"] == 9
        assert len(_EXEC_LOG) == 1

    def test_stats_shape(self):
        with make_server() as server:
            stats = server.stats()
        for key in ("counters", "queue_depth", "queue_capacity",
                    "queue_by_priority", "inflight", "workers", "max_batch",
                    "running", "uptime_wall_s"):
            assert key in stats

    def test_events_stream_through_listener(self):
        seen: list[str] = []
        with make_server(workers=1) as server:
            server.add_listener(
                lambda job, kind, t, attrs: seen.append(kind)
            )
            server.submit("srv-quick", {"x": 2}).result(timeout=10)
            server.drain(timeout=10)
        assert "queued" in seen
        assert "running" in seen
        assert "done" in seen


class TestServerHandle:
    def test_facade_round_trip(self):
        with ServerHandle(workers=1, scenario_modules=()) as pragma:
            handle = pragma.submit("srv-quick", {"x": 5}, priority="high")
            assert handle.result(timeout=10)["square"] == 25
            assert pragma.drain(timeout=10)
            assert pragma.stats()["counters"]["completed"] == 1
        assert pragma.server.running is False

    def test_submit_many_order(self):
        with ServerHandle(workers=1, scenario_modules=()) as pragma:
            handles = pragma.submit_many([
                {"scenario": "srv-quick", "params": {"x": 1}},
                {"scenario": "srv-quick", "params": {"x": 2}},
            ])
            assert [h.result(timeout=10)["square"] for h in handles] == [1, 4]


# -- JSONL transports ----------------------------------------------------------


class TestJsonlStream:
    def test_one_shot_stream(self):
        lines = [
            "# comment lines and blanks are skipped",
            "",
            '{"op": "submit", "id": "a", "scenario": "srv-quick", '
            '"params": {"x": 2}}',
            '{"op": "submit", "id": "b", "scenario": "srv-quick", '
            '"params": {"x": 2}}',
            '{"op": "submit", "id": "c", "scenario": "missing"}',
            "this is not json",
            '{"op": "stats"}',
        ]
        out = io.StringIO()
        with make_server(workers=1) as server:
            summary = run_requests(server, lines, out)
        docs = [json.loads(line) for line in out.getvalue().splitlines()]
        assert summary["requests"] == 3
        assert summary["by_status"] == {"done": 2, "shed": 1}
        errors = [d for d in docs if d["op"] == "error"]
        assert len(errors) == 1 and "invalid JSON" in errors[0]["error"]
        results = {d["id"]: d for d in docs if d["op"] == "result"}
        assert results["a"]["result"]["square"] == 4
        # the duplicate submit rode the same job
        assert results["a"]["job"] == results["b"]["job"]
        assert results["c"]["status"] == "shed"
        assert docs[-1]["op"] == "stats"

    def test_cancel_and_shutdown_ops(self):
        lines = [
            '{"op": "submit", "id": "a", "scenario": "srv-quick"}',
            '{"op": "cancel", "id": "zzz"}',
            '{"op": "drain"}',
            '{"op": "shutdown"}',
            '{"op": "submit", "id": "never", "scenario": "srv-quick"}',
        ]
        out = io.StringIO()
        with make_server(workers=1) as server:
            summary = run_requests(server, lines, out)
        docs = [json.loads(line) for line in out.getvalue().splitlines()]
        ops = [d["op"] for d in docs]
        # the stream stops at shutdown: the trailing submit never runs
        assert "shutdown-ack" in ops
        assert summary["requests"] == 1
        cancel_acks = [d for d in docs if d["op"] == "cancel-ack"]
        assert cancel_acks[0]["ok"] is False


class TestJsonlSocket:
    def test_socket_round_trip(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with make_server(workers=1) as server:
            ready = threading.Event()
            t = threading.Thread(
                target=serve_socket, args=(server, path),
                kwargs={"ready": ready}, daemon=True,
            )
            t.start()
            # event-driven: serve_socket signals once it is listening
            assert ready.wait(timeout=5)
            client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            client.connect(path)
            fh = client.makefile("rw", encoding="utf-8")
            fh.write('{"op": "submit", "id": "s1", "scenario": "srv-quick", '
                     '"params": {"x": 6}}\n')
            fh.flush()
            accepted = json.loads(fh.readline())
            assert accepted["op"] == "accepted"
            fh.write('{"op": "result", "id": "s1", "timeout_s": 10}\n')
            fh.flush()
            result = json.loads(fh.readline())
            assert result["result"]["square"] == 36
            fh.write('{"op": "shutdown"}\n')
            fh.flush()
            assert json.loads(fh.readline())["op"] == "shutdown-ack"
            client.close()
            t.join(timeout=10)
            assert not t.is_alive()

    def test_socket_path_reused_across_invocations(self, tmp_path):
        """A stale socket file (prior run or crash) must not block a new
        listener — AF_UNIX ignores SO_REUSEADDR, so the file has to be
        unlinked before bind and removed again on shutdown."""
        import os

        path = str(tmp_path / "serve.sock")
        # a crash that never cleaned up leaves a stale file behind
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(path)
        stale.close()
        assert os.path.exists(path)

        def _round_trip():
            with make_server(workers=1) as server:
                ready = threading.Event()
                t = threading.Thread(
                    target=serve_socket, args=(server, path),
                    kwargs={"ready": ready}, daemon=True,
                )
                t.start()
                assert ready.wait(timeout=5)
                client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                client.connect(path)
                fh = client.makefile("rw", encoding="utf-8")
                fh.write('{"op": "shutdown"}\n')
                fh.flush()
                assert json.loads(fh.readline())["op"] == "shutdown-ack"
                client.close()
                t.join(timeout=10)
                assert not t.is_alive()

        _round_trip()  # binds over the stale file
        assert not os.path.exists(path)  # cleaned up on exit
        _round_trip()  # and a second invocation binds cleanly again


class TestReviewRegressions:
    def test_invalid_priority_raises_value_error(self):
        """The Python API validates priority like the protocol layer does
        — a typo'd class must not surface as a KeyError from deep inside
        the queue (nor count as a submission)."""
        with make_server(workers=1, start=False) as server:
            with pytest.raises(ValueError, match="unknown priority"):
                server.submit("srv-quick", priority="urgent")
            with pytest.raises(ValueError, match="unknown priority"):
                ServerHandle(server=server).submit("srv-quick", priority="")
            assert server.stats()["counters"] == {}

    def test_committed_twin_is_not_attached(self):
        """A job that committed its terminal transition but whose
        ``_on_terminal`` has not popped ``_inflight`` yet must look
        *absent* to a racing submit — attaching would hand the new
        client a handle on a dead job."""
        server = make_server(workers=1, start=False, use_cache=False)
        try:
            first = server.submit("srv-quick")
            old = first._job
            # simulate the commit/pop window: terminal + committed, but
            # _on_terminal hasn't run yet so _inflight still holds it
            with old.lock:
                old.committed = True
                old.status = "cancelled"
            second = server.submit("srv-quick")
            assert second._job is not old
            assert server._inflight[old.key] is second._job
            # the old job's deferred _on_terminal must not evict the
            # newly admitted twin (identity-checked pop)
            server._on_terminal(old)
            assert server._inflight[old.key] is second._job
            # ... so a third submit still coalesces onto the live job
            third = server.submit("srv-quick")
            assert third._job is second._job
            assert server.stats()["counters"]["dedup_hits"] == 1
        finally:
            server.shutdown(wait=False)

    def test_dedup_attach_survives_concurrent_cancels(self):
        """attach (submit) and detach (cancel) mutate one subscriber
        count from different threads; both now serialize on job.lock, so
        N attaches + N-1 cancels must leave exactly one live subscriber
        and never cancel the job under a freshly coalesced client."""
        with make_server(workers=1, start=False) as server:
            first = server.submit("srv-gated")
            job = first._job
            handles = [server.submit("srv-gated") for _ in range(8)]
            assert all(h._job is job for h in handles)
            threads = [
                threading.Thread(target=h.cancel) for h in handles
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            # every shared handle detached; the original client's
            # subscription keeps the job alive and uncancelled
            assert job.subscribers == 1
            assert not job.cancel_requested
            assert not job.terminal
            server.start()
            _GATE.set()
            assert first.wait(timeout=10.0)
            assert first.result()["released"] is True
