"""Regenerate the golden comm-cost corpus (``costmodel.json``).

Run from the repo root with the scalar backend (the oracle semantics):

    REPRO_KERNELS=scalar PYTHONPATH=src python tests/golden/regen_costmodel.py

Each case reuses a hierarchy from the partition corpus (``blob.json``,
...), partitions it, and records sha256 digests of the per-processor
communication bytes and neighbor counts plus the exact ghost-work
scalar.  Only regenerate after an *intended* cost-model change, in the
same commit as the matching scalar + vector + ``tests/reference``
updates.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.amr.hierarchy import GridHierarchy
from repro.execsim.costmodel import CostModel, comm_cost_terms
from repro.partitioners import PARTITIONER_REGISTRY, build_units

HERE = Path(__file__).parent
NUM_PROCS = 8
GRANULARITY = 4
PARTITIONERS = ("ISP", "G-MISP+SP", "pBD-ISP")


def digest(arr: np.ndarray) -> str:
    arr = np.asarray(arr)
    dtype = np.float64 if np.issubdtype(arr.dtype, np.floating) else np.int64
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=dtype).tobytes()
    ).hexdigest()


def main() -> None:
    cost = CostModel()
    doc: dict = {
        "num_procs": NUM_PROCS,
        "granularity": GRANULARITY,
        "cases": {},
    }
    for case_path in sorted(HERE.glob("*.json")):
        if case_path.name == "costmodel.json":
            continue
        case = json.loads(case_path.read_text())
        hierarchy = GridHierarchy.from_dict(case["hierarchy"])
        units = build_units(hierarchy, granularity=GRANULARITY)
        i, j, axis = units.adjacency_arrays()
        shapes = units.unit_shapes()
        entry: dict = {}
        for name in PARTITIONERS:
            part = PARTITIONER_REGISTRY[name]().partition(units, NUM_PROCS)
            comm_bytes, neighbor_count, ghost_work = comm_cost_terms(
                i, j, axis, part.assignment, shapes, units.loads,
                NUM_PROCS, cost.ghost_width, cost.bytes_per_comm_unit,
            )
            entry[name] = {
                "comm_bytes_digest": digest(comm_bytes),
                "neighbor_count_digest": digest(neighbor_count),
                # full-precision float round-trips exactly through repr
                "ghost_work": ghost_work,
            }
        doc["cases"][case_path.stem] = entry
    out = HERE / "costmodel.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
