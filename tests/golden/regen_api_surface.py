"""Regenerate the public-API surface snapshot (``api_surface.json``).

Run from the repo root:

    PYTHONPATH=src python tests/golden/regen_api_surface.py

The snapshot records, for every name exported by the :mod:`repro.api`
facade, its kind, defining module/qualname and call signature, plus the
top-level ``repro.__all__`` re-export list.  ``tests/test_api_surface.py``
recomputes the same description and fails on any drift, so additions,
removals and signature changes to the public surface are always
explicit, reviewed diffs.  Only regenerate after an *intended* API
change, in the same commit as the change itself.
"""

from __future__ import annotations

import inspect
import json
import re
from pathlib import Path
from typing import Any

HERE = Path(__file__).parent

#: memory addresses in default-value reprs are run-dependent noise
_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def _signature(obj: Any) -> str | None:
    """A stable signature string for ``obj``, or None when unavailable."""
    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return None
    return _ADDR.sub("0x...", sig)


def describe_surface() -> dict[str, Any]:
    """The committed description of the public API surface."""
    import repro
    import repro.api

    exports: dict[str, Any] = {}
    for name in sorted(repro.api.__all__):
        obj = getattr(repro.api, name)
        if inspect.isclass(obj):
            kind = "class"
        elif inspect.isfunction(obj):
            kind = "function"
        else:
            kind = type(obj).__name__
        exports[name] = {
            "kind": kind,
            "module": getattr(obj, "__module__", None),
            "qualname": getattr(obj, "__qualname__", name),
            "signature": _signature(obj),
        }
    return {
        "repro.api": exports,
        "repro.__all__": sorted(repro.__all__),
    }


def main() -> None:
    out = HERE / "api_surface.json"
    out.write_text(json.dumps(describe_surface(), indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
