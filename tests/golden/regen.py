"""Regenerate the golden partition corpus.

Run from the repo root with the scalar backend (the oracle semantics):

    REPRO_KERNELS=scalar PYTHONPATH=src python tests/golden/regen.py

Each JSON file holds a serialized hierarchy plus sha256 digests of the
composite workload map and of every registry partitioner's owner array.
Only regenerate after an *intended* algorithm change, in the same commit
as the matching scalar + vector + ``tests/reference`` updates.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.workload import composite_load_map
from repro.partitioners import PARTITIONER_REGISTRY, build_units

HERE = Path(__file__).parent
NUM_PROCS = 8
GRANULARITY = 4


def digest(arr: np.ndarray) -> str:
    arr = np.asarray(arr)
    dtype = np.float64 if np.issubdtype(arr.dtype, np.floating) else np.int64
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=dtype).tobytes()
    ).hexdigest()


def hierarchies():
    rng = np.random.default_rng(2026)

    blob_domain = Box((0, 0, 0), (32, 16, 16))
    err = np.zeros(blob_domain.shape)
    err[6:14, 4:10, 4:10] = 0.6
    err[8:12, 5:8, 5:8] = 0.95
    yield "blob", Regridder(
        blob_domain, RegridPolicy(thresholds=(0.3, 0.8))
    ).regrid(err)

    noise_domain = Box((0, 0, 0), (24, 24, 12))
    yield "bulky", Regridder(
        noise_domain, RegridPolicy(thresholds=(0.55, 0.85))
    ).regrid(rng.random(noise_domain.shape))

    sparse_domain = Box((0, 0, 0), (32, 32, 16))
    spikes = (rng.random(sparse_domain.shape) > 0.985).astype(float)
    yield "spiky", Regridder(
        sparse_domain, RegridPolicy(thresholds=(0.5,))
    ).regrid(spikes)


def main() -> None:
    for name, hierarchy in hierarchies():
        workload = composite_load_map(hierarchy)
        units = build_units(hierarchy, granularity=GRANULARITY)
        doc = {
            "num_procs": NUM_PROCS,
            "granularity": GRANULARITY,
            "hierarchy": hierarchy.to_dict(),
            "workload_digest": digest(workload.values),
            "partitions": {
                pname: digest(
                    cls().partition(units, NUM_PROCS).assignment
                )
                for pname, cls in PARTITIONER_REGISTRY.items()
            },
        }
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"wrote {path} ({hierarchy.num_patches} patches)")


if __name__ == "__main__":
    main()
