"""Tests for performance functions, fitting and composition (Table 1)."""

import numpy as np
import pytest

from repro.perf import (
    CallablePF,
    EthernetSwitch,
    MatMulHost,
    MaxPF,
    PFModelingExperiment,
    ScaledPF,
    SumPF,
    fit_neural,
    fit_polynomial,
)


class TestComposition:
    def test_sum(self):
        a = CallablePF(lambda x: x, "a")
        b = CallablePF(lambda x: 2 * x, "b")
        s = SumPF([a, b])
        assert s.predict(3.0) == 9.0
        assert (a + b).predict(1.0) == 3.0

    def test_max(self):
        a = CallablePF(lambda x: x, "a")
        b = CallablePF(lambda x: 5 + 0 * x, "b")
        m = MaxPF([a, b])
        assert m.predict(3.0) == 5.0
        assert m.predict(10.0) == 10.0

    def test_scaled(self):
        a = CallablePF(lambda x: x, "a")
        assert ScaledPF(a, 2.0).predict(4.0) == 8.0
        with pytest.raises(ValueError):
            ScaledPF(a, 0.0)

    def test_mixed_attributes_rejected(self):
        a = CallablePF(lambda x: x, "a", attribute="data_size")
        b = CallablePF(lambda x: x, "b", attribute="cpu_load")
        with pytest.raises(ValueError):
            SumPF([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SumPF([])
        with pytest.raises(ValueError):
            MaxPF([])


class TestFitting:
    def test_polynomial_exact_on_poly_data(self):
        x = np.linspace(0, 10, 20)
        y = 3 * x**2 + 2 * x + 1
        pf = fit_polynomial(x, y, degree=2)
        assert pf.predict(5.0) == pytest.approx(86.0, rel=1e-6)
        assert pf.training_rmse() < 1e-6

    def test_polynomial_validation(self):
        with pytest.raises(ValueError):
            fit_polynomial([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_polynomial([1.0, 2.0], [1.0, 2.0], degree=5)
        with pytest.raises(ValueError):
            fit_polynomial([1, 2, 3], [1, 2], degree=1)

    def test_neural_fits_smooth_function(self):
        x = np.linspace(100, 1200, 23)
        y = 1e-4 + 2e-7 * x + 1e-10 * x**1.5
        pf = fit_neural(x, y, hidden=12, epochs=2000, seed=0)
        test_x = np.array([300.0, 700.0, 1100.0])
        pred = pf.predict(test_x)
        true = 1e-4 + 2e-7 * test_x + 1e-10 * test_x**1.5
        assert np.abs((pred - true) / true).max() < 0.05

    def test_neural_scalar_predict(self):
        pf = fit_neural([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0], epochs=500)
        out = pf.predict(1.5)
        assert isinstance(out, float)

    def test_neural_validation(self):
        with pytest.raises(ValueError):
            fit_neural([1.0, 2.0], [1.0, 2.0], hidden=0)


class TestComponents:
    def test_matmul_time_monotone(self):
        host = MatMulHost(noise=0.0)
        assert host.true_time(1000) > host.true_time(100) > 0

    def test_switch_linear(self):
        sw = EthernetSwitch(latency=1e-4, bandwidth=1e6, noise=0.0)
        assert sw.true_time(1e6) == pytest.approx(1.0 + 1e-4)

    def test_measurement_noise(self):
        host = MatMulHost(noise=0.05, seed=1)
        vals = host.measure_repeated(500.0, 50)
        assert vals.std() > 0
        assert abs(vals.mean() - host.true_time(500.0)) / host.true_time(500.0) < 0.05

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MatMulHost().true_time(-1.0)


class TestTable1Experiment:
    def test_error_within_paper_band(self):
        """Composed-PF prediction error stays in the paper's 0.5–5 % band
        (we allow up to 6 % for noise-seed variation)."""
        exp = PFModelingExperiment(seed=3)
        rows = exp.evaluate()
        assert len(rows) == 5
        for r in rows:
            assert r.error_pct < 6.0

    def test_delays_in_measured_regime(self):
        """End-to-end delays land in the paper's millisecond regime and
        grow with data size."""
        exp = PFModelingExperiment(seed=0)
        rows = exp.evaluate()
        measured = [r.measured for r in rows]
        assert measured == sorted(measured)
        assert 5e-4 < measured[0] < 1.2e-3
        assert 1.8e-3 < measured[-1] < 2.8e-3

    def test_polynomial_backend(self):
        exp = PFModelingExperiment(
            seed=1,
            fitter=lambda x, y, name: __import__(
                "repro.perf.fitting", fromlist=["fit_polynomial"]
            ).fit_polynomial(x, y, degree=2, name=name),
        )
        rows = exp.evaluate()
        assert all(r.error_pct < 10.0 for r in rows)

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            PFModelingExperiment(repetitions=0)
