"""Tests for the CATALINA agent system."""

import pytest

from repro.agents import (
    ComponentAgent,
    ComponentState,
    ManagedComponent,
    ManagementComputingSystem,
    ManagementEditor,
    Message,
    MessageCenter,
    MigrateActuator,
    Requirement,
    SuspendActuator,
    ResumeActuator,
    CheckpointActuator,
    Template,
    TemplateRegistry,
    builtin_templates,
)
from repro.gridsys import FailureEvent, linux_cluster


class TestMessageCenter:
    def test_register_send_receive(self):
        mc = MessageCenter()
        mc.register("a")
        mc.register("b")
        mc.send(Message(sender="a", dest="b", topic="hello", payload={"x": 1}))
        msg = mc.receive("b")
        assert msg.topic == "hello" and msg.payload["x"] == 1
        assert mc.receive("b") is None

    def test_duplicate_port_rejected(self):
        mc = MessageCenter()
        mc.register("a")
        with pytest.raises(ValueError):
            mc.register("a")

    def test_send_to_unknown_port_dead_letters(self):
        mc = MessageCenter()
        mc.register("a")
        ok = mc.send(Message(sender="a", dest="nope", topic="t"))
        assert ok is False
        assert mc.dead_letter_count == 1
        dl = mc.dead_letters[0]
        assert dl.reason == "unregistered-destination"
        assert dl.attempts == 0
        assert dl.message.dest == "nope"
        assert mc.delivered_count == 0

    def test_dead_letter_queue_bounded(self):
        """A sustained-lossy soak must not grow dead_letters unboundedly."""
        mc = MessageCenter(dead_letter_capacity=16)
        mc.register("a")
        for k in range(100):
            mc.send(Message(sender="a", dest="nope", topic="t",
                            payload={"k": k}))
        assert mc.dead_letter_count == 16
        assert mc.dead_letters_dropped == 84
        # oldest letters evicted: the retained window is the newest 16
        kept = [dl.message.payload["k"] for dl in mc.drain_dead_letters()]
        assert kept == list(range(84, 100))
        assert mc.dead_letter_count == 0
        # the drop count survives a drain — it records history, not state
        assert mc.dead_letters_dropped == 84

    def test_dead_letter_capacity_validated(self):
        with pytest.raises(ValueError):
            MessageCenter(dead_letter_capacity=0)

    def test_sustained_lossy_link_soak(self):
        """Every send dead-letters on a fully lossy link; memory stays
        bounded and the dropped counter accounts for the overflow."""
        from repro.agents.message_center import DeliveryPolicy

        mc = MessageCenter(
            DeliveryPolicy(loss_rate=0.99, max_retries=1, seed=3),
            dead_letter_capacity=8,
        )
        mc.register("a")
        mc.register("b")
        failures = sum(
            not mc.send(Message(sender="a", dest="b", topic="t"))
            for _ in range(200)
        )
        assert failures > 8
        assert mc.dead_letter_count == 8
        assert mc.dead_letters_dropped == failures - 8
        assert all(dl.reason == "max-retries" for dl in mc.dead_letters)

    def test_publish_subscribe_fanout(self):
        mc = MessageCenter()
        for name in ("a", "b", "c"):
            mc.register(name)
        mc.subscribe("b", "events")
        mc.subscribe("c", "events")
        n = mc.publish("a", "events", {"v": 2})
        assert n == 2
        assert mc.receive("b").payload["v"] == 2
        assert mc.receive("c").payload["v"] == 2
        assert mc.receive("a") is None

    def test_unregister_clears_subscriptions(self):
        mc = MessageCenter()
        mc.register("a")
        mc.register("b")
        mc.subscribe("b", "t")
        mc.unregister("b")
        assert mc.publish("a", "t", {}) == 0

    def test_drain(self):
        mc = MessageCenter()
        mc.register("a")
        for i in range(3):
            mc.send(Message(sender="x", dest="a", topic=f"t{i}"))
        assert len(mc.drain("a")) == 3

    def test_message_ordering_seq(self):
        m1 = Message(sender="a", dest="b", topic="t")
        m2 = Message(sender="a", dest="b", topic="t")
        assert m2.seq > m1.seq


class TestComponent:
    def test_progress_and_done(self, sp2_small):
        c = ManagedComponent("w", sp2_small, node_id=0, total_work=2.0e6)
        c.advance(0.0, 1.0)
        assert 0 < c.progress <= 2.0e6
        while not c.done:
            c.advance(0.0, 1.0)
        assert c.state is ComponentState.DONE
        assert c.advance(0.0, 1.0) == 0.0

    def test_failure_detection(self, sp2_small):
        sp2_small.failures.add(FailureEvent(1, 0.0, 100.0))
        c = ManagedComponent("w", sp2_small, node_id=1, total_work=1e9)
        c.advance(1.0, 1.0)
        assert c.state is ComponentState.FAILED

    def test_validation(self, sp2_small):
        with pytest.raises(ValueError):
            ManagedComponent("w", sp2_small, node_id=99, total_work=1.0)
        with pytest.raises(ValueError):
            ManagedComponent("w", sp2_small, node_id=0, total_work=0.0)


class TestActuators:
    def _component(self, cluster):
        return ManagedComponent("w", cluster, node_id=0, total_work=1e9)

    def test_suspend_resume(self, sp2_small):
        c = self._component(sp2_small)
        assert SuspendActuator(c).actuate(0.0)
        assert c.state is ComponentState.SUSPENDED
        assert c.advance(0.0, 1.0) == 0.0
        assert ResumeActuator(c).actuate(0.0)
        assert c.state is ComponentState.RUNNING
        assert not ResumeActuator(c).actuate(0.0)  # already running

    def test_checkpoint_and_failed_migration_restores(self, sp2_small):
        c = self._component(sp2_small)
        c.advance(0.0, 2.0)
        CheckpointActuator(c).actuate(2.0)
        saved = c.checkpoint
        c.advance(2.0, 2.0)
        c.state = ComponentState.FAILED
        assert MigrateActuator(c).actuate(4.0, target=1)
        assert c.node_id == 1
        assert c.progress == saved
        assert c.state is ComponentState.RUNNING
        assert c.migrations == 1

    def test_live_migration_keeps_progress(self, sp2_small):
        c = self._component(sp2_small)
        c.advance(0.0, 3.0)
        before = c.progress
        assert MigrateActuator(c).actuate(3.0, target=2)
        assert c.progress == before

    def test_migrate_to_dead_node_refused(self, sp2_small):
        sp2_small.failures.add(FailureEvent(3, 0.0, 100.0))
        c = self._component(sp2_small)
        assert not MigrateActuator(c).actuate(1.0, target=3)

    def test_migrate_requires_target(self, sp2_small):
        c = self._component(sp2_small)
        with pytest.raises(ValueError):
            MigrateActuator(c).actuate(0.0)


class TestComponentAgent:
    def test_interrogation(self, sp2_small):
        mc = MessageCenter()
        c = ManagedComponent("w", sp2_small, node_id=0, total_work=1e7)
        ca = ComponentAgent(c, mc)
        readings = ca.interrogate(0.0)
        assert set(readings) == {"throughput", "progress", "healthy"}

    def test_failure_event_published(self, sp2_small):
        sp2_small.failures.add(FailureEvent(0, 0.0, 100.0))
        mc = MessageCenter()
        mc.register("observer")
        mc.subscribe("observer", "component-failed")
        c = ManagedComponent("w", sp2_small, node_id=0, total_work=1e7)
        ca = ComponentAgent(c, mc)
        c.advance(1.0, 1.0)  # transitions to FAILED
        ca.tick(1.0)
        msg = mc.receive("observer")
        assert msg is not None and msg.topic == "component-failed"

    def test_requirement_violation_published(self, sp2_small):
        mc = MessageCenter()
        mc.register("observer")
        mc.subscribe("observer", "requirement-violated.throughput")
        c = ManagedComponent("w", sp2_small, node_id=0, total_work=1e12)
        ca = ComponentAgent(
            c, mc, requirements=[Requirement("throughput", 1e20)]
        )
        c.advance(0.0, 1.0)
        ca.tick(0.0)
        assert mc.receive("observer") is not None

    def test_directive_actuation_with_ack(self, sp2_small):
        mc = MessageCenter()
        mc.register("boss")
        c = ManagedComponent("w", sp2_small, node_id=0, total_work=1e9)
        ca = ComponentAgent(c, mc)
        mc.send(
            Message(
                sender="boss",
                dest=ca.port.name,
                topic="actuate",
                payload={"actuator": "suspend"},
            )
        )
        ca.tick(0.0)
        assert c.state is ComponentState.SUSPENDED
        ack = mc.receive("boss")
        assert ack.topic == "actuate-ack" and ack.payload["ok"]


class TestTemplates:
    def test_satisfaction(self):
        t = Template(name="x", provides={"performance": 1.0, "fault_tolerance": 0.5})
        assert t.satisfies({"performance": 0.8})
        assert not t.satisfies({"performance": 2.0})
        assert not t.satisfies({"security": 0.1})

    def test_discovery_best_fit_first(self):
        reg = builtin_templates()
        # Only performance-managed provides performance >= 0.8.
        matches = reg.discover({"performance": 0.8})
        assert [m.name for m in matches] == ["performance-managed"]
        # At a low requirement level, the least over-provisioned template
        # (fault-tolerant provides performance 0.5) ranks first.
        low = reg.discover({"performance": 0.4})
        assert low[0].name == "fault-tolerant"

    def test_third_party_registration(self):
        reg = builtin_templates()
        reg.register(Template(name="gold", provides={"performance": 5.0},
                              vendor="acme"))
        assert reg.discover({"performance": 3.0})[0].name == "gold"
        reg.unregister("gold")
        assert reg.discover({"performance": 3.0}) == []

    def test_duplicate_rejected(self):
        reg = TemplateRegistry()
        reg.register(Template(name="a", provides={}))
        with pytest.raises(ValueError):
            reg.register(Template(name="a", provides={}))


class TestAME:
    def test_builder(self):
        spec = (
            ManagementEditor("app")
            .add_component("c1", 10.0)
            .add_component("c2", 20.0)
            .require("performance", 1.0)
            .manage("performance", "migration")
            .build()
        )
        assert spec.components == ("c1", "c2")
        assert spec.requirements["performance"] == 1.0
        assert spec.management["performance"] == "migration"

    def test_validation(self):
        with pytest.raises(ValueError):
            ManagementEditor("")
        ed = ManagementEditor("app").add_component("c", 1.0)
        with pytest.raises(ValueError):
            ed.add_component("c", 2.0)
        with pytest.raises(ValueError):
            ed.add_component("d", 0.0)
        with pytest.raises(ValueError):
            ManagementEditor("x").build()


class TestMCSIntegration:
    def test_environment_completes_work(self, sp2_small):
        spec = (
            ManagementEditor("app")
            .add_component("c1", 2e6)
            .require("performance", 1.0)
            .build()
        )
        env = ManagementComputingSystem(sp2_small).build_environment(spec)
        env.run(100.0)
        assert env.done

    def test_unsatisfiable_requirements(self, sp2_small):
        spec = (
            ManagementEditor("app")
            .add_component("c1", 1.0)
            .require("security", 99.0)
            .build()
        )
        with pytest.raises(LookupError):
            ManagementComputingSystem(sp2_small).build_environment(spec)

    def test_failure_triggers_adm_migration(self):
        cluster = linux_cluster(4, seed=1)
        cluster.failures.add(FailureEvent(0, 3.0, 1e9))
        spec = (
            ManagementEditor("app")
            .add_component("c1", 3e7)
            .require("performance", 1.0)
            .build()
        )
        mcs = ManagementComputingSystem(cluster)
        env = mcs.build_environment(spec)
        # Force initial placement on the doomed node for determinism.
        env.components[0].node_id = 0
        env.run(500.0)
        assert env.done
        assert env.components[0].migrations >= 1
        assert env.components[0].node_id != 0
        assert any("migrate" in d[2] for d in env.adm.decisions)
