"""Cross-module integration tests: the full Pragma loop at small scale."""

import numpy as np
import pytest

from repro.amr.regrid import RegridPolicy
from repro.amr.trace import AdaptationTrace
from repro.apps import Supernova, SupernovaConfig
from repro.core import (
    MetaPartitioner,
    PragmaRuntime,
    PredictiveSelector,
)
from repro.execsim import ExecutionSimulator, StaticSelector, per_step_comm_times
from repro.execsim.costmodel import CostModel
from repro.gridsys import linux_cluster, sp2_blue_horizon
from repro.partitioners import (
    GMISPSPPartitioner,
    ISPPartitioner,
    PBDISPPartitioner,
    build_units,
)
from repro.policy import classify_trace


class TestTraceRoundtripFidelity:
    def test_saved_trace_classifies_identically(self, small_rm3d_trace, tmp_path):
        """Persisted traces must reproduce the exact octant trajectory —
        the paper's methodology depends on trace replay."""
        path = tmp_path / "trace.json.gz"
        small_rm3d_trace.save(path)
        reloaded = AdaptationTrace.load(path)
        original = [s.octant for s in classify_trace(small_rm3d_trace)]
        replayed = [s.octant for s in classify_trace(reloaded)]
        assert original == replayed

    def test_saved_trace_simulates_identically(self, small_rm3d_trace, tmp_path):
        path = tmp_path / "trace.json.gz"
        small_rm3d_trace.save(path)
        reloaded = AdaptationTrace.load(path)
        sim = ExecutionSimulator(sp2_blue_horizon(8))
        a = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        b = sim.run(reloaded, StaticSelector(ISPPartitioner()))
        # partition_time is wall-clock and jitters; compute+comm are
        # deterministic functions of the trace.
        det = lambda r: sum(x.compute_time + x.comm_time for x in r.records)
        assert det(a) == pytest.approx(det(b), rel=1e-9)


class TestSelectorsAgreeOnInvariants:
    def test_all_selectors_account_same_work(self, small_rm3d_trace):
        """Whatever chooses the partitioner, the work simulated is the
        application's work."""
        cluster = sp2_blue_horizon(8)
        sim = ExecutionSimulator(cluster, num_procs=8)
        selectors = [
            StaticSelector(GMISPSPPartitioner()),
            MetaPartitioner(),
            PredictiveSelector(cluster=cluster, num_procs=8),
        ]
        works = []
        for sel in selectors:
            res = sim.run(small_rm3d_trace, sel)
            works.append(res.useful_work)
            assert res.proc_work.sum() == pytest.approx(res.useful_work)
        assert all(w == pytest.approx(works[0]) for w in works)


class TestCommCostProperties:
    def test_single_proc_no_comm(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = ISPPartitioner().partition(units, 1)
        comm, ghost = per_step_comm_times(p, CostModel(), 1e8)
        assert (comm == 0).all()
        assert ghost == 0.0

    def test_comm_scales_inverse_with_bandwidth(self, small_hierarchy):
        units = build_units(small_hierarchy, granularity=2)
        p = ISPPartitioner().partition(units, 4)
        cost = CostModel(latency_per_neighbor=0.0)
        slow, _ = per_step_comm_times(p, cost, 1e6)
        fast, _ = per_step_comm_times(p, cost, 1e8)
        assert np.allclose(slow, fast * 100.0)

    def test_overlap_reduces_runtime(self, small_rm3d_trace):
        base = ExecutionSimulator(
            sp2_blue_horizon(8), cost_model=CostModel(comm_overlap=0.0)
        ).run(small_rm3d_trace, StaticSelector(GMISPSPPartitioner()))
        overlapped = ExecutionSimulator(
            sp2_blue_horizon(8), cost_model=CostModel(comm_overlap=0.9)
        ).run(small_rm3d_trace, StaticSelector(GMISPSPPartitioner()))
        assert overlapped.total_runtime < base.total_runtime
        # Compute time is untouched by overlap.
        base_comp = base.total_runtime - base.total_comm_time - base.total_regrid_time
        over_comp = (overlapped.total_runtime - overlapped.total_comm_time
                     - overlapped.total_regrid_time)
        assert base_comp == pytest.approx(over_comp, rel=1e-9)


class TestMonitoredAdaptationEndToEnd:
    def test_pragma_runtime_with_monitor_and_capacities(self):
        cluster = linux_cluster(8, seed=5)
        runtime = PragmaRuntime(cluster=cluster, num_procs=8)
        caps = runtime.capacities(warmup=16)
        assert caps.shape == (8,)
        # Second call continues the sample stream without time collisions.
        caps2 = runtime.capacities(warmup=16)
        assert caps2.shape == (8,)

    def test_supernova_full_loop(self):
        """A different application through the whole loop: characterize,
        classify, adaptively simulate."""
        app = Supernova(SupernovaConfig(shape=(32, 32, 32), shell_speed=0.15))
        policy = RegridPolicy(thresholds=(0.3, 0.6), regrid_interval=8)
        runtime = PragmaRuntime(cluster=sp2_blue_horizon(8), num_procs=8)
        trace = runtime.characterize(app, policy, 120)
        report = runtime.run_adaptive(trace, compare_with=("G-MISP+SP",))
        assert report.adaptive.total_runtime > 0
        assert len(report.octant_timeline) == len(trace)


class TestRectFragments:
    def test_single_owner_one_fragment_per_z_sheet(self, small_hierarchy):
        """The 2.5-D merge counts one fragment per z-sheet for a uniform
        owner — the documented resolution of the approximation."""
        units = build_units(small_hierarchy, granularity=2)
        p = ISPPartitioner().partition(units, 1)
        assert p.rect_fragments() == units.grid_shape[2]

    def test_pbd_fragments_bounded_by_blocks(self, small_hierarchy):
        """pBD's rectangles decompose into at most one fragment per
        (block, z-slab), far fewer than arbitrary jagged regions."""
        units = build_units(small_hierarchy, granularity=2)
        p = PBDISPPartitioner().partition(units, 4)
        nz = units.grid_shape[2]
        assert p.rect_fragments() <= 4 * nz

    def test_x_slabs_merge_fully(self, small_hierarchy):
        """An assignment of whole x-slabs merges into one fragment per
        owner (runs are identical across y and z)."""
        from repro.partitioners.base import Partition

        units = build_units(small_hierarchy, granularity=2)
        nx, ny, nz = units.grid_shape
        lat_owner = np.zeros((nx, ny, nz), dtype=int)
        lat_owner[nx // 2 :, :, :] = 1
        assignment = lat_owner.reshape(-1)[units.lattice_index]
        p = Partition(
            units=units, num_procs=2, assignment=assignment,
            partitioner_name="slabs",
        )
        # One x-run per column per owner; all columns identical -> they
        # merge across y within each z sheet: fragments = 2 * nz.
        assert p.rect_fragments() == 2 * nz
