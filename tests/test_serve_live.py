"""Server-side live telemetry: wire verbs, health gates, flight dumps.

Integration coverage for the observability plane threaded through
:class:`repro.serve.server.ScenarioServer`: the ``metrics`` / ``health``
/ ``stats-stream`` verbs over the UNIX-domain socket (idle, under
concurrent dispatch, and malformed), readiness transitions, the flight
recorder's capture/dump lifecycle, the ``repro top`` CLI, and the
zero-cost guarantee of the disabled default.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.config import LiveObsOptions
from repro.obs.live import NULL_FLIGHT, CONTENT_TYPE, FlightRecorder
from repro.serve.jsonl import Session, serve_socket
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.server import ScenarioServer
from repro.sweep.scenario import FunctionScenario, register, unregister

# -- test scenarios ------------------------------------------------------------

_GATE = threading.Event()


def _quick(ctx):
    return {"square": ctx.params["x"] ** 2}


def _gated(ctx):
    _GATE.wait(timeout=10.0)
    return {"released": True}


_TEST_SCENARIOS = {
    "live-quick": (_quick, {"x": 3}),
    "live-gated": (_gated, {}),
}


@pytest.fixture(autouse=True)
def _register_scenarios():
    for name, (fn, params) in _TEST_SCENARIOS.items():
        register(FunctionScenario(name, fn, dict(params)), replace=True)
    _GATE.clear()
    yield
    for name in _TEST_SCENARIOS:
        unregister(name)


def make_server(**kwargs):
    kwargs.setdefault("scenario_modules", ())
    return ScenarioServer(**kwargs)


def live_options(**over):
    over.setdefault("enabled", True)
    return LiveObsOptions(**over)


def _connect(path):
    # the listener is already up (serve_socket's ready event), so a
    # plain connect suffices — no filesystem polling with sleeps
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.connect(path)
    return client


class _SocketFixture:
    """A server behind a socket listener, with a line-oriented client."""

    def __init__(self, server, path):
        self.server = server
        self.path = path
        ready = threading.Event()
        self.thread = threading.Thread(
            target=serve_socket, args=(server, path),
            kwargs={"ready": ready}, daemon=True,
        )
        self.thread.start()
        assert ready.wait(timeout=5)
        self.client = _connect(path)
        self.fh = self.client.makefile("rw", encoding="utf-8")

    def ask(self, doc):
        self.fh.write(json.dumps(doc) + "\n")
        self.fh.flush()
        return json.loads(self.fh.readline())

    def close(self):
        try:
            self.ask({"op": "shutdown"})
        except Exception:
            pass
        self.client.close()
        self.thread.join(timeout=10)


@pytest.fixture
def sock_server(tmp_path):
    server = make_server(workers=1, live_obs=live_options())
    fixture = _SocketFixture(server, str(tmp_path / "serve.sock"))
    yield fixture
    fixture.close()
    server.shutdown()


# -- wire verbs over the socket ------------------------------------------------


class TestSocketObservabilityVerbs:
    def test_idle_scrape_metrics_and_health(self, sock_server):
        resp = sock_server.ask({"op": "metrics"})
        assert resp["op"] == "metrics"
        assert resp["content_type"] == CONTENT_TYPE
        # gauges are refreshed even before any traffic
        assert "serve_queue_depth 0" in resp["text"]
        assert "serve_uptime_seconds" in resp["text"]

        health = sock_server.ask({"op": "health"})
        assert health["op"] == "health"
        assert health["live"] is True
        assert health["ready"] is True
        assert health["checks"]["workers_alive"] == 1
        assert health["checks"]["queue_capacity"] == 64

    def test_scrape_during_active_dispatch(self, sock_server):
        """metrics/health answer while a worker is busy executing."""
        accepted = sock_server.ask(
            {"op": "submit", "id": "g", "scenario": "live-gated"}
        )
        assert accepted["status"] in ("queued", "running")
        try:
            # a second connection scrapes while the first job blocks
            side = _connect(sock_server.path)
            fh = side.makefile("rw", encoding="utf-8")
            fh.write('{"op": "metrics"}\n{"op": "health"}\n')
            fh.flush()
            metrics = json.loads(fh.readline())
            assert 'serve_submitted_total{priority="normal"} 1' \
                in metrics["text"]
            health = json.loads(fh.readline())
            assert health["live"] is True
            side.close()
        finally:
            _GATE.set()
        result = sock_server.ask(
            {"op": "result", "id": "g", "timeout_s": 10}
        )
        assert result["status"] == "done"

    def test_stats_stream_yields_count_ticks(self, sock_server):
        sock_server.ask({"op": "submit", "id": "q", "scenario": "live-quick"})
        sock_server.ask({"op": "result", "id": "q", "timeout_s": 10})
        sock_server.fh.write(
            '{"op": "stats-stream", "count": 3, "interval_s": 0, '
            '"flight_tail": 5}\n'
        )
        sock_server.fh.flush()
        ticks = [json.loads(sock_server.fh.readline()) for _ in range(3)]
        assert [t["seq"] for t in ticks] == [0, 1, 2]
        assert all(t["op"] == "stats-tick" and t["of"] == 3 for t in ticks)
        last = ticks[-1]
        assert last["stats"]["counters"]["completed"] == 1
        assert last["health"]["ready"] is True
        assert "normal" in last["latency"]
        assert last["slo"]["lanes"]["normal"]["requests"] == 1
        assert len(last["flight_tail"]) <= 5
        assert any(e["kind"] == "done" for e in last["flight_tail"])
        # uptime strictly increases tick to tick
        assert ticks[0]["uptime_seconds"] <= ticks[-1]["uptime_seconds"]

    @pytest.mark.parametrize("line", [
        '{"op": "metrics-scrape"}',
        '{"op": "stats-stream", "count": 0}',
        '{"op": "stats-stream", "count": "many"}',
        '{"op": "stats-stream", "count": true}',
        '{"op": "stats-stream", "interval_s": -1}',
        '{"op": "stats-stream", "flight_tail": -2}',
    ])
    def test_malformed_observability_requests_rejected(
        self, sock_server, line
    ):
        with pytest.raises(ProtocolError):
            parse_request(line)
        # over the wire the same line produces an error document and the
        # connection survives for the next request
        sock_server.fh.write(line + "\n")
        sock_server.fh.flush()
        assert json.loads(sock_server.fh.readline())["op"] == "error"
        assert sock_server.ask({"op": "health"})["op"] == "health"


# -- health gates --------------------------------------------------------------


class TestHealthGates:
    def test_ready_tracks_lifecycle(self):
        server = make_server(workers=1, start=False)
        try:
            h = server.health()
            assert h.live and not h.ready
            assert h.checks["scheduler_started"] is False
            server.start()
            assert server.health().ready
        finally:
            server.shutdown()
        after = server.health()
        assert after.live and not after.ready
        assert after.checks["admission_open"] is False

    def test_full_queue_blocks_readiness(self):
        server = make_server(workers=1, queue_capacity=1, start=False)
        try:
            server.start()
            server.submit("live-gated")
            # the gated job occupies the worker; fill the queue behind it
            while len(server.queue) < 1:
                server.submit("live-quick", {"x": len(server.queue)})
            h = server.health()
            assert not h.ready
            assert h.checks["queue_has_headroom"] is False
        finally:
            _GATE.set()
            server.shutdown()

    def test_last_commit_age_tracked(self):
        with make_server(workers=1) as server:
            assert server.health().checks["last_commit_age_s"] is None
            server.submit("live-quick").result(timeout=10)
            server.drain(timeout=10)
            age = server.health().checks["last_commit_age_s"]
            assert age is not None and age >= 0.0


# -- flight recorder integration ----------------------------------------------


class TestFlightIntegration:
    def test_events_recorded_and_dumped_on_shutdown(self, tmp_path):
        dump = tmp_path / "flight.jsonl"
        server = make_server(
            workers=1,
            live_obs=live_options(flight_capacity=32,
                                  flight_dump_path=str(dump)),
        )
        server.submit("live-quick").result(timeout=10)
        server.submit("no-such-scenario")
        server.shutdown()
        lines = [json.loads(ln) for ln in dump.read_text().splitlines()]
        assert lines[0]["kind"] == "flight-recorder"
        kinds = {ln["kind"] for ln in lines[1:]}
        assert {"queued", "running", "done", "shed"} <= kinds
        shed = next(ln for ln in lines[1:] if ln["kind"] == "shed")
        assert shed["reason"] == "unknown-scenario"
        assert shed["scenario"] == "no-such-scenario"

    def test_dump_on_demand_to_explicit_path(self, tmp_path):
        with make_server(workers=1, live_obs=live_options()) as server:
            server.submit("live-quick").result(timeout=10)
            n = server.dump_flight(tmp_path / "now.jsonl")
            assert n >= 3
            assert (tmp_path / "now.jsonl").exists()

    def test_worker_death_lands_in_the_ring(self):
        def injector(job, attempt):
            return "before" if attempt == 0 else None

        server = make_server(
            workers=1, death_injector=injector, live_obs=live_options()
        )
        try:
            server.submit("live-quick").result(timeout=10)
        finally:
            server.shutdown()
        kinds = [e["kind"] for e in server._flight.tail()]
        assert "worker-death" in kinds
        assert kinds.index("worker-death") < kinds.index("done")


# -- SLO integration -----------------------------------------------------------


class TestSloIntegration:
    def test_load_sheds_recorded_but_client_errors_not(self):
        server = make_server(workers=1, queue_capacity=1, start=False,
                             live_obs=live_options())
        try:
            server.submit("no-such-scenario")  # client error: not load
            lanes = server._slo.summary()["lanes"]
            assert lanes["normal"]["sheds"] == 0
            server.submit("live-gated")
            while True:  # fill the queue, then one genuine load shed
                handle = server.submit("live-quick",
                                       {"x": server._seq})
                if handle.status == "shed":
                    break
            assert server._slo.summary()["lanes"]["normal"]["sheds"] == 1
        finally:
            _GATE.set()
            server.shutdown()

    def test_latency_recorded_for_done_and_cache_hit(self):
        with make_server(workers=1, live_obs=live_options()) as server:
            server.submit("live-quick").result(timeout=10)
            server.drain(timeout=10)
            first = server._slo.summary()["lanes"]["normal"]["requests"]
            assert first == 1
            server.submit("live-quick").result(timeout=10)  # cache hit
            assert (server._slo.summary()["lanes"]["normal"]["requests"]
                    == 2)
            assert server.stats()["counters"]["cache_hits"] == 1

    def test_slo_alerts_reach_the_alert_shape(self):
        opts = live_options(slo_latency_target_s=1e-9, slo_short_window=2,
                            slo_long_window=4)
        with make_server(workers=1, live_obs=opts) as server:
            for k in range(4):
                server.submit("live-quick", {"x": k}).result(timeout=10)
            server.drain(timeout=10)
            alerts = server.slo_alerts()
            assert [a.series for a in alerts] == ["slo.normal.latency"]
            assert alerts[0].value >= 2.0


# -- snapshot exporter integration --------------------------------------------


def test_snapshot_exporter_runs_with_server(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    server = make_server(
        workers=1,
        live_obs=live_options(snapshot_path=str(path),
                              snapshot_interval_s=3600.0),
    )
    server.submit("live-quick").result(timeout=10)
    server.drain(timeout=10)
    server.shutdown()  # flushes the final snapshot
    records = [json.loads(ln) for ln in path.read_text().splitlines()]
    assert len(records) >= 1
    final = records[-1]
    assert final["stats"]["counters"]["completed"] == 1
    assert final["uptime_seconds"] >= 0.0
    assert "serve.jobs_terminal" in final["metrics"]["counters"]


# -- repro top -----------------------------------------------------------------


class TestTopVerb:
    def test_once_renders_a_frame_over_the_socket(self, tmp_path, capsys):
        server = make_server(workers=1, live_obs=live_options())
        fixture = _SocketFixture(server, str(tmp_path / "serve.sock"))
        try:
            fixture.ask({"op": "submit", "id": "q",
                         "scenario": "live-quick"})
            fixture.ask({"op": "result", "id": "q", "timeout_s": 10})
            code = main(["top", "--socket", fixture.path, "--once"])
            out = capsys.readouterr().out
            assert code == 0
            assert "repro top — READY" in out
            assert "submitted 1" in out
            assert "flight recorder" in out
        finally:
            fixture.close()
            server.shutdown()

    def test_count_renders_that_many_frames(self, tmp_path, capsys):
        server = make_server(workers=1, live_obs=live_options())
        fixture = _SocketFixture(server, str(tmp_path / "serve.sock"))
        try:
            code = main(["top", "--socket", fixture.path, "--count", "2",
                         "--interval", "0.01"])
            assert code == 0
            out = capsys.readouterr().out
            assert out.count("repro top —") == 2
        finally:
            fixture.close()
            server.shutdown()

    def test_unreachable_socket_fails_cleanly(self, tmp_path, capsys):
        code = main(["top", "--socket", str(tmp_path / "gone.sock"),
                     "--once"])
        assert code == 1
        assert "cannot reach server" in capsys.readouterr().err


# -- disabled default stays zero-cost ------------------------------------------


class TestDisabledPathOverhead:
    def test_default_server_has_no_live_machinery(self):
        with make_server(workers=1) as server:
            assert server._flight is NULL_FLIGHT
            assert server._slo is None
            assert server._exporter is None
            assert server._latency_window is None
            # the live verbs still answer from the always-on registry
            server.submit("live-quick").result(timeout=10)
            assert server.health().ready
            assert "serve_submitted_total" in server.scrape_metrics()
            snap = server.live_snapshot()
            assert snap["slo"] is None
            assert snap["flight_tail"] == []

    def test_stats_shape_unchanged_and_empty_initially(self):
        server = make_server(workers=1, start=False)
        assert server.stats()["counters"] == {}
        server.shutdown()

    def test_submit_overhead_guard(self):
        """Enabled live obs may not blow up the shed-path submit cost.

        Generous 5x bound on medians — this is a structural smoke guard
        against accidental heavy work on the hot path, not a benchmark
        (BENCH_obs.json carries the measured ratio).
        """

        def median_shed_cost(server, n=300):
            times = []
            for _ in range(5):
                t0 = time.perf_counter()
                for _ in range(n):
                    server.submit("no-such-scenario")
                times.append(time.perf_counter() - t0)
            return sorted(times)[len(times) // 2]

        base = make_server(workers=1, start=False)
        live = make_server(workers=1, start=False, live_obs=live_options())
        try:
            cold = median_shed_cost(base)
            hot = median_shed_cost(live)
        finally:
            base.shutdown()
            live.shutdown()
        assert hot < cold * 5.0


# -- session dispatch without a socket -----------------------------------------


def test_session_dispatch_iter_single_for_plain_ops():
    with make_server(workers=1) as server:
        session = Session(server)
        docs = list(session.dispatch_iter({"op": "health"}))
        assert len(docs) == 1
        assert docs[0]["op"] == "health"
        ticks = list(session.dispatch_iter(
            {"op": "stats-stream", "count": 2, "interval_s": 0}
        ))
        assert [t["seq"] for t in ticks] == [0, 1]


def test_flight_recorder_attrs_win_over_job_fields():
    """The queued event's own priority attr must not collide with the
    job-derived record fields."""
    fr = FlightRecorder(capacity=4)
    with make_server(workers=1, live_obs=live_options()) as server:
        server.submit("live-quick", priority="high").result(timeout=10)
        queued = [e for e in server._flight.tail()
                  if e["kind"] == "queued"]
        assert queued and queued[0]["priority"] == "high"
    assert fr.recorded == 0
