"""Tests for shared utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_shape3,
    ensure_rng,
    load_imbalance,
    max_load_imbalance_pct,
    normalize,
    percentage_improvement,
    relative_error,
    spawn_rng,
    weighted_sum,
)


class TestRng:
    def test_ensure_from_seed(self):
        a = ensure_rng(5)
        b = ensure_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_ensure_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_independent(self):
        children = spawn_rng(ensure_rng(1), 3)
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_non_negative(self):
        check_non_negative("x", 0.0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_check_shape3(self):
        assert check_shape3("s", [4, 5, 6]) == (4, 5, 6)
        with pytest.raises(ValueError):
            check_shape3("s", [4, 5])
        with pytest.raises(ValueError):
            check_shape3("s", [4, 0, 6])


class TestStats:
    def test_load_imbalance_balanced(self):
        assert load_imbalance(np.array([2.0, 2.0, 2.0])) == 1.0
        assert max_load_imbalance_pct(np.array([2.0, 2.0])) == 0.0

    def test_load_imbalance_skewed(self):
        assert load_imbalance(np.array([4.0, 0.0])) == 2.0
        assert max_load_imbalance_pct(np.array([4.0, 0.0])) == 100.0

    def test_zero_loads_defined(self):
        assert load_imbalance(np.zeros(4)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_imbalance(np.array([]))

    def test_normalize(self):
        out = normalize(np.array([1.0, 2.0, 4.0]))
        assert out.tolist() == [0.25, 0.5, 1.0]
        assert normalize(np.zeros(3)).tolist() == [0.0, 0.0, 0.0]
        with pytest.raises(ValueError):
            normalize(np.array([-1.0, 1.0]))

    def test_weighted_sum(self):
        parts = {"a": np.array([1.0, 0.0]), "b": np.array([0.0, 1.0])}
        out = weighted_sum(parts, {"a": 0.75, "b": 0.25})
        assert out.tolist() == [0.75, 0.25]

    def test_weighted_sum_validation(self):
        parts = {"a": np.ones(2)}
        with pytest.raises(ValueError):
            weighted_sum(parts, {"b": 1.0})
        with pytest.raises(ValueError):
            weighted_sum(parts, {"a": 0.5})

    def test_relative_error(self):
        assert relative_error(1.05, 1.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_percentage_improvement(self):
        assert percentage_improvement(100.0, 80.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            percentage_improvement(0.0, 1.0)

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=20))
    def test_imbalance_at_least_one(self, loads):
        assert load_imbalance(np.array(loads)) >= 1.0 - 1e-12
