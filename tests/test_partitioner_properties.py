"""Property-based invariants of the partitioner suite.

Randomized :class:`GridHierarchy` strategies (regridded noise / blob /
spike error fields) drive every registry partitioner plus the
capacity-weighted pair, checking the invariants both kernel backends
must uphold:

- **disjoint cover** — every composite unit gets exactly one owner in
  ``[0, num_procs)``,
- **exact load conservation** — the per-processor groups are a
  permutation of the unit loads, so their ``math.fsum`` equals the
  composite total bit-for-bit,
- **no empty processor** whenever there are at least as many divisible
  grains as processors (for SFC the grain is the indivisible
  pseudo-patch chunk, so the guarantee is conditioned on chunk count),
- **zero-capacity starvation** — capacity-weighted splits assign only
  negligible load (zero up to float rounding of the cumulative
  targets) to a zero-capacity processor.  Exact-zero behavior for
  well-scaled loads is pinned by the deterministic regressions in
  ``test_sequence.py``.

The suite runs under whichever kernel backend is active, so CI exercises
it once per ``REPRO_KERNELS`` mode.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.partitioners import (
    PARTITIONER_REGISTRY,
    HeterogeneousPartitioner,
    build_units,
)
from repro.partitioners.sequence import weighted_sequence_partition
from repro.partitioners.sfc import SFCPartitioner
from repro.sfc import CURVES

REGISTRY_NAMES = sorted(PARTITIONER_REGISTRY)


@st.composite
def hierarchies(draw):
    """Small regridded hierarchies spanning the paper's grid regimes."""
    nx = draw(st.sampled_from([8, 12, 16, 20]))
    ny = draw(st.sampled_from([8, 12, 16]))
    nz = draw(st.sampled_from([4, 8]))
    seed = draw(st.integers(0, 2**20))
    style = draw(st.sampled_from(["noise", "blob", "spikes"]))
    thresholds = draw(st.sampled_from([(0.5,), (0.4, 0.8)]))
    domain = Box((0, 0, 0), (nx, ny, nz))
    rng = np.random.default_rng(seed)
    if style == "noise":
        err = rng.random(domain.shape)
    elif style == "spikes":
        err = (rng.random(domain.shape) > 0.9).astype(float)
    else:
        err = np.zeros(domain.shape)
        cx, cy = nx // 2, ny // 2
        err[cx - 2 : cx + 3, cy - 2 : cy + 3, :] = 0.6
        err[cx - 1 : cx + 2, cy - 1 : cy + 2, :] = 0.95
    return Regridder(domain, RegridPolicy(thresholds=thresholds)).regrid(err)


@st.composite
def unit_sets(draw):
    hierarchy = draw(hierarchies())
    granularity = draw(st.sampled_from([2, 4]))
    curve = draw(st.sampled_from(sorted(CURVES)))
    return build_units(hierarchy, granularity=granularity, curve=curve)


class TestRegistryInvariants:
    @given(units=unit_sets(), num_procs=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_disjoint_cover(self, units, num_procs):
        n = len(units)
        for name in REGISTRY_NAMES:
            part = PARTITIONER_REGISTRY[name]().partition(units, num_procs)
            a = part.assignment
            assert a.shape == (n,), name
            assert a.min() >= 0 and a.max() < num_procs, name

    @given(units=unit_sets(), num_procs=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_exact_load_conservation(self, units, num_procs):
        total = math.fsum(units.loads)
        for name in REGISTRY_NAMES:
            a = PARTITIONER_REGISTRY[name]().partition(units, num_procs).assignment
            regrouped = np.concatenate(
                [units.loads[a == k] for k in range(num_procs)]
            )
            assert regrouped.size == len(units), name
            assert math.fsum(regrouped) == total, name

    @given(units=unit_sets(), num_procs=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_no_empty_processor(self, units, num_procs):
        """Every divisible-grain partitioner feeds all processors."""
        n = len(units)
        if n < num_procs:
            return
        for name in REGISTRY_NAMES:
            if name == "SFC":
                continue  # indivisible chunks: see test_sfc_chunk_conditioned
            a = PARTITIONER_REGISTRY[name]().partition(units, num_procs).assignment
            used = np.bincount(a, minlength=num_procs)
            assert (used > 0).all(), (
                f"{name} starved processors {np.flatnonzero(used == 0)} "
                f"with {n} units on {num_procs} procs"
            )

    @given(
        units=unit_sets(),
        num_procs=st.integers(1, 12),
        patch_units=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_sfc_chunk_conditioned(self, units, num_procs, patch_units):
        """SFC feeds all processors iff it has at least that many chunks."""
        chunks = -(-len(units) // patch_units)
        a = SFCPartitioner(patch_units=patch_units).partition(
            units, num_procs
        ).assignment
        used = np.bincount(a, minlength=num_procs)
        if chunks >= num_procs:
            assert (used > 0).all()
        else:
            assert int((used > 0).sum()) == chunks


class TestCapacityWeighted:
    @given(
        units=unit_sets(),
        num_procs=st.integers(2, 10),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_zero_capacity_gets_nothing(self, units, num_procs, data):
        caps = np.asarray(
            data.draw(
                st.lists(
                    st.floats(0.0, 4.0, allow_nan=False),
                    min_size=num_procs,
                    max_size=num_procs,
                )
            )
        )
        if caps.sum() <= 0:
            caps[0] = 1.0
        part = HeterogeneousPartitioner().partition(units, num_procs, caps)
        if units.total_load > 0:
            a = part.assignment
            for k in np.flatnonzero(caps == 0.0):
                assert math.fsum(units.loads[a == k]) <= 1e-9 * units.total_load

    @given(
        loads=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60),
        num_procs=st.integers(2, 8),
        zero_at=st.integers(0, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_kernel_zero_capacity(self, loads, num_procs, zero_at):
        loads = np.asarray(loads)
        caps = np.ones(num_procs)
        caps[zero_at % num_procs] = 0.0
        owners = weighted_sequence_partition(loads, num_procs, caps)
        total = math.fsum(loads)
        if total > 0:
            k = zero_at % num_procs
            assert math.fsum(loads[owners == k]) <= 1e-9 * total

    @given(
        loads=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=8, max_size=60
        ),
        num_procs=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_contiguous_and_total(self, loads, num_procs):
        loads = np.asarray(loads)
        caps = np.ones(num_procs)
        owners = weighted_sequence_partition(loads, num_procs, caps)
        assert (np.diff(owners) >= 0).all()
        assert math.fsum(
            np.concatenate([loads[owners == k] for k in range(num_procs)])
        ) == math.fsum(loads)


def test_registry_is_complete():
    assert REGISTRY_NAMES == sorted(
        ["SFC", "ISP", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP"]
    )


@pytest.mark.parametrize("name", REGISTRY_NAMES)
def test_single_processor_degenerate(name, small_hierarchy):
    units = build_units(small_hierarchy, granularity=4)
    part = PARTITIONER_REGISTRY[name]().partition(units, 1)
    assert (part.assignment == 0).all()
