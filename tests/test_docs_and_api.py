"""Documentation and public-API hygiene checks."""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    for mod in _walk_modules():
        assert mod.__doc__ and mod.__doc__.strip(), f"{mod.__name__} undocumented"


def test_all_exports_resolve():
    """Every name in a module's __all__ exists and is documented."""
    undocumented = []
    for mod in _walk_modules():
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name, None)
            assert obj is not None, f"{mod.__name__}.{name} missing"
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{mod.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_classes_have_documented_methods():
    """Public methods of the core API classes carry docstrings."""
    from repro.core import MetaPartitioner, PragmaRuntime
    from repro.execsim import ExecutionSimulator
    from repro.partitioners.base import Partition, Partitioner

    for cls in (PragmaRuntime, MetaPartitioner, ExecutionSimulator,
                Partitioner, Partition):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_") or not callable(member):
                continue
            if getattr(member, "__objclass__", cls) is not cls and not any(
                name in vars(c) for c in cls.__mro__ if c is not object
            ):
                continue
            doc = inspect.getdoc(member)
            assert doc, f"{cls.__name__}.{name} lacks a docstring"


def test_version_exposed():
    assert repro.__version__ == "1.1.0"
