"""Tests for the octant classifier, fuzzy sets, rules and the policy base."""

import pytest

from repro.amr.box import Box
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy
from repro.policy import (
    Condition,
    FuzzySet,
    Octant,
    OctantAxes,
    OctantThresholds,
    PolicyKnowledgeBase,
    Rule,
    TABLE2_RECOMMENDATIONS,
    classify_hierarchy,
    classify_trace,
    default_policy_base,
    octant_partitioner_rules,
    triangular,
    trapezoidal,
)
from repro.policy.fuzzy import crisp_above, crisp_below


class TestOctantAxes:
    def test_bijection(self):
        seen = set()
        for scattered in (False, True):
            for dyn in (False, True):
                for comm in (False, True):
                    o = OctantAxes(scattered, dyn, comm).octant()
                    seen.add(o)
        assert seen == set(Octant)

    def test_roundtrip(self):
        for o in Octant:
            assert OctantAxes.of(o).octant() is o

    def test_canonical_assignments(self):
        assert OctantAxes.of(Octant.I) == OctantAxes(False, True, True)
        assert OctantAxes.of(Octant.VIII) == OctantAxes(True, False, False)


class TestClassification:
    def _hierarchy(self, boxes, domain=(32, 16, 16)):
        dom = Box.from_shape(domain)
        base = Level(index=0, ratio=1)
        base.add(Patch(box=dom, level=0, patch_id=0))
        fine = Level(index=1, ratio=2)
        for i, (lo, hi) in enumerate(boxes):
            fine.add(Patch(box=Box(lo, hi).refine(2), level=1, patch_id=i + 1))
        return GridHierarchy(domain=dom, levels=[base, fine])

    def test_localized_vs_scattered(self):
        localized = self._hierarchy([((4, 4, 4), (10, 10, 10))])
        scattered = self._hierarchy(
            [
                ((0, 0, 0), (3, 3, 3)),
                ((28, 0, 0), (31, 3, 3)),
                ((0, 12, 12), (3, 15, 15)),
                ((28, 12, 12), (31, 15, 15)),
                ((14, 6, 6), (17, 9, 9)),
            ]
        )
        _, sig_loc = classify_hierarchy(localized)
        _, sig_sca = classify_hierarchy(scattered)
        assert sig_loc.num_components == 1
        assert sig_sca.num_components == 5
        assert sig_sca.spread > sig_loc.spread

    def test_dynamics_from_previous(self):
        a = self._hierarchy([((4, 4, 4), (10, 10, 10))])
        b = self._hierarchy([((20, 4, 4), (26, 10, 10))])
        octant_static, sig_static = classify_hierarchy(a, previous=a)
        octant_moving, sig_moving = classify_hierarchy(b, previous=a)
        assert sig_static.activity == 0.0
        assert sig_moving.activity == 1.0  # disjoint footprints
        assert OctantAxes.of(octant_moving).high_dynamics
        assert not OctantAxes.of(octant_static).high_dynamics

    def test_no_previous_means_low_dynamics(self):
        h = self._hierarchy([((4, 4, 4), (10, 10, 10))])
        octant, sig = classify_hierarchy(h)
        assert sig.activity == 0.0

    def test_thresholds_validation(self):
        with pytest.raises(ValueError):
            OctantThresholds(min_components_scattered=0)
        with pytest.raises(ValueError):
            OctantThresholds(min_spread_scattered=-0.1)

    def test_classify_trace_uses_forward_difference(self, small_rm3d_trace):
        states = classify_trace(small_rm3d_trace)
        assert len(states) == len(small_rm3d_trace)
        # First snapshot's dynamics measured against the second.
        assert states[0].signals.activity >= 0.0

    def test_classify_empty_trace(self):
        from repro.amr.trace import AdaptationTrace

        assert classify_trace(AdaptationTrace()) == []


class TestFuzzy:
    def test_triangular(self):
        f = triangular("t", 0.0, 1.0, 2.0)
        assert f(1.0) == 1.0
        assert f(0.5) == pytest.approx(0.5)
        assert f(-1.0) == 0.0 and f(3.0) == 0.0

    def test_trapezoidal(self):
        f = trapezoidal("t", 0.0, 1.0, 2.0, 3.0)
        assert f(1.5) == 1.0
        assert f(0.5) == pytest.approx(0.5)
        assert f(2.5) == pytest.approx(0.5)

    def test_crisp(self):
        assert crisp_above("a", 5.0)(5.0) == 1.0
        assert crisp_above("a", 5.0)(4.9) == 0.0
        assert crisp_below("b", 5.0)(4.9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            triangular("bad", 2.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            trapezoidal("bad", 0.0, 2.0, 1.0, 3.0)

    def test_bad_membership_flagged(self):
        f = FuzzySet("broken", lambda x: 2.0)
        with pytest.raises(ValueError):
            f(1.0)


class TestRules:
    def test_condition_exact_match(self):
        c = Condition(exact={"octant": Octant.I})
        assert c.match({"octant": Octant.I}) == 1.0
        assert c.match({"octant": Octant.II}) == 0.0

    def test_condition_fuzzy_min(self):
        c = Condition(
            exact={"arch": "cluster"},
            fuzzy={"load": triangular("high", 0.5, 1.0, 1.5)},
        )
        assert c.match({"arch": "cluster", "load": 1.0}) == 1.0
        assert c.match({"arch": "cluster", "load": 0.75}) == pytest.approx(0.5)
        assert c.match({"arch": "grid", "load": 1.0}) == 0.0

    def test_partial_match_skips_missing(self):
        c = Condition(exact={"arch": "cluster", "octant": Octant.I})
        assert c.match({"octant": Octant.I}, partial=True) == 1.0
        assert c.match({"octant": Octant.I}, partial=False) == 0.0

    def test_partial_with_nothing_known(self):
        c = Condition(exact={"arch": "cluster"})
        assert c.match({}, partial=True) == 0.0

    def test_condition_validation(self):
        with pytest.raises(ValueError):
            Condition()
        with pytest.raises(ValueError):
            Condition(exact={"x": 1}, fuzzy={"x": triangular("t", 0, 1, 2)})

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            Rule(name="", condition=Condition(exact={"a": 1}), action={"x": 1})
        with pytest.raises(ValueError):
            Rule(name="r", condition=Condition(exact={"a": 1}), action={})


class TestKnowledgeBase:
    def _kb(self):
        return PolicyKnowledgeBase(octant_partitioner_rules())

    def test_add_remove_update(self):
        kb = self._kb()
        n = len(kb)
        rule = Rule(
            name="custom",
            condition=Condition(exact={"octant": Octant.I}),
            action={"partitioner": "SFC"},
            priority=9.0,
        )
        kb.add(rule)
        assert len(kb) == n + 1
        with pytest.raises(ValueError):
            kb.add(rule)
        kb.add(rule, replace=True)
        assert kb.remove("custom").name == "custom"
        with pytest.raises(KeyError):
            kb.remove("custom")

    def test_programmability_overrides(self):
        """Rules can be modified at runtime and change decisions."""
        kb = self._kb()
        before = kb.merged_action({"octant": Octant.I})["partitioner"]
        kb.add(
            Rule(
                name="operator-override",
                condition=Condition(exact={"octant": Octant.I}),
                action={"partitioner": "SP-ISP"},
                priority=10.0,
            )
        )
        after = kb.merged_action({"octant": Octant.I})["partitioner"]
        assert before == "pBD-ISP" and after == "SP-ISP"

    def test_query_ranking_deterministic(self):
        kb = self._kb()
        res = kb.query({"octant": Octant.III})
        assert res[0].rule.name == "octant-III-partitioner"

    def test_best_action_none_when_no_match(self):
        kb = PolicyKnowledgeBase()
        assert kb.best_action({"octant": Octant.I}) is None


class TestTable2:
    def test_all_octants_covered(self):
        assert set(TABLE2_RECOMMENDATIONS) == set(Octant)

    def test_paper_content(self):
        assert TABLE2_RECOMMENDATIONS[Octant.I] == ("pBD-ISP", "G-MISP+SP")
        assert TABLE2_RECOMMENDATIONS[Octant.II] == ("pBD-ISP",)
        assert TABLE2_RECOMMENDATIONS[Octant.IV] == ("G-MISP+SP", "SP-ISP", "ISP")
        assert TABLE2_RECOMMENDATIONS[Octant.VII] == ("G-MISP+SP",)
        assert TABLE2_RECOMMENDATIONS[Octant.VIII] == ("G-MISP+SP", "ISP")

    def test_comm_octants_get_pbd(self):
        """The structural property behind Table 2: communication-dominated
        octants are served by pBD-ISP, computation-dominated ones by the
        G-MISP+SP family."""
        for octant, recs in TABLE2_RECOMMENDATIONS.items():
            if OctantAxes.of(octant).comm_dominated:
                assert recs[0] == "pBD-ISP"
            else:
                assert recs[0] == "G-MISP+SP"

    def test_default_policy_base_answers_all_octants(self):
        kb = default_policy_base()
        for octant in Octant:
            action = kb.merged_action({"octant": octant})
            assert action["partitioner"] == TABLE2_RECOMMENDATIONS[octant][0]
            assert "granularity" in action
