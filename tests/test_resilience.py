"""Tests for the fault-tolerance subsystem (repro.resilience)."""

import math

import pytest

from repro.agents import (
    DeliveryPolicy,
    ManagedComponent,
    Message,
    MessageCenter,
    MigrateActuator,
)
from repro.agents.component import ComponentState
from repro.config import SimulatorOptions
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import (
    FailureEvent,
    FailureSchedule,
    linux_cluster,
    sp2_blue_horizon,
)
from repro.partitioners import ISPPartitioner
from repro.resilience import (
    CheckpointCostModel,
    CheckpointStore,
    DetectorConfig,
    FailureDetector,
    FaultTolerance,
)


class TestFailureScheduleIndex:
    def test_is_alive_matches_linear_scan(self):
        sched = FailureSchedule.poisson(
            num_nodes=4, horizon=500.0, mtbf=60.0, mttr=20.0, seed=3
        )
        for t in [0.0, 13.7, 99.2, 250.0, 499.9, 700.0]:
            for node in range(4):
                expected = not any(
                    e.node_id == node and e.is_down(t) for e in sched.events
                )
                assert sched.is_alive(node, t) == expected

    def test_index_invalidated_by_add(self):
        sched = FailureSchedule()
        assert sched.is_alive(0, 5.0)
        sched.add(FailureEvent(0, 0.0, 10.0))
        assert not sched.is_alive(0, 5.0)

    def test_overlapping_outages(self):
        sched = FailureSchedule()
        sched.add(FailureEvent(1, 0.0, 100.0))
        sched.add(FailureEvent(1, 5.0, 10.0))
        assert not sched.is_alive(1, 50.0)
        assert sched.next_alive_time(1, 2.0) == 100.0

    def test_next_alive_time(self):
        sched = FailureSchedule()
        sched.add(FailureEvent(0, 10.0, 20.0))
        sched.add(FailureEvent(0, 20.0, 30.0))
        assert sched.next_alive_time(0, 5.0) == 5.0
        assert sched.next_alive_time(0, 15.0) == 30.0
        sched.add(FailureEvent(1, 40.0))  # permanent
        assert math.isinf(sched.next_alive_time(1, 50.0))

    def test_down_during_catches_straddling_outage(self):
        sched = FailureSchedule()
        sched.add(FailureEvent(2, 10.0, 90.0))
        # failures_in only reports outages *beginning* inside the window.
        assert sched.failures_in(40.0, 60.0) == []
        straddling = sched.down_during(40.0, 60.0)
        assert len(straddling) == 1
        assert straddling[0].node_id == 2

    def test_down_during_excludes_disjoint(self):
        sched = FailureSchedule()
        sched.add(FailureEvent(0, 0.0, 10.0))
        sched.add(FailureEvent(0, 50.0, 60.0))
        assert sched.down_during(10.0, 50.0) == []
        assert len(sched.down_during(5.0, 55.0)) == 2


class TestPoissonSchedule:
    def test_seed_determinism(self):
        a = FailureSchedule.poisson(8, 1000.0, mtbf=100.0, mttr=10.0, seed=42)
        b = FailureSchedule.poisson(8, 1000.0, mtbf=100.0, mttr=10.0, seed=42)
        assert a.events == b.events
        c = FailureSchedule.poisson(8, 1000.0, mtbf=100.0, mttr=10.0, seed=43)
        assert a.events != c.events

    def test_per_node_outages_disjoint(self):
        sched = FailureSchedule.poisson(
            6, 2000.0, mtbf=50.0, mttr=25.0, seed=7
        )
        assert sched.events, "expected failures at this mtbf/horizon"
        by_node: dict[int, list] = {}
        for e in sched.events:
            by_node.setdefault(e.node_id, []).append(e)
        for events in by_node.values():
            events.sort(key=lambda e: e.t_fail)
            for prev, nxt in zip(events, events[1:]):
                assert prev.t_recover <= nxt.t_fail

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FailureSchedule.poisson(0, 100.0, mtbf=10.0, mttr=1.0)
        with pytest.raises(ValueError):
            FailureSchedule.poisson(4, 100.0, mtbf=0.0, mttr=1.0)
        with pytest.raises(ValueError):
            FailureSchedule.poisson(4, 100.0, mtbf=10.0, mttr=-1.0)


class TestDetectorConfig:
    def test_latencies(self):
        cfg = DetectorConfig(heartbeat_period=2.0, misses_to_declare=3,
                             recovery_confirmations=2)
        assert cfg.detection_latency == 6.0
        assert cfg.recovery_latency == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(heartbeat_period=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(misses_to_declare=0)
        with pytest.raises(ValueError):
            DetectorConfig(recovery_confirmations=0)


class TestFailureDetector:
    def _cluster(self):
        cluster = sp2_blue_horizon(4)
        cluster.failures.add(FailureEvent(1, 10.0, 30.0))
        return cluster

    def test_polling_declares_with_latency(self):
        det = FailureDetector(self._cluster())
        det.sweep(0.0, 40.0)
        fails = [e for e in det.events if e.kind == "failure"]
        recs = [e for e in det.events if e.kind == "recovery"]
        assert [e.node_id for e in fails] == [1]
        assert [e.node_id for e in recs] == [1]
        # Lease expires after 3 missed 1 Hz heartbeats at t=10,11,12.
        assert fails[0].t_detected == pytest.approx(12.0)
        assert recs[0].t_detected == pytest.approx(30.0)

    def test_analytic_face_agrees_with_polling(self):
        det = FailureDetector(self._cluster())
        assert not det.detected_down(1, 11.0)      # not yet declared
        assert det.detected_down(1, 13.5)
        assert det.detected_down(1, 30.5)          # recovery latency
        assert not det.detected_down(1, 31.5)
        assert det.live_nodes(14.0) == [0, 2, 3]
        assert det.next_detected_alive(1, 14.0) == pytest.approx(31.0)

    def test_short_blip_never_declared(self):
        cluster = sp2_blue_horizon(2)
        cluster.failures.add(FailureEvent(0, 10.0, 11.5))  # < 3 s latency
        det = FailureDetector(cluster)
        det.sweep(0.0, 20.0)
        assert det.events == []
        assert not det.detected_down(0, 11.0)
        assert math.isinf(det.detection_fire_time(0, 10.5))

    def test_detection_fire_time(self):
        det = FailureDetector(self._cluster())
        assert det.detection_fire_time(1, 10.0) == pytest.approx(13.0)
        assert math.isinf(det.detection_fire_time(1, 5.0))

    def test_publishes_to_message_center(self):
        mc = MessageCenter()
        mc.register("adm")
        mc.subscribe("adm", "node-failed")
        mc.subscribe("adm", "node-recovered")
        det = FailureDetector(self._cluster(), message_center=mc)
        det.sweep(0.0, 40.0)
        topics = [m.topic for m in mc.drain("adm")]
        assert topics == ["node-failed", "node-recovered"]


class TestCheckpointStore:
    def test_save_restore_roundtrip(self, small_hierarchy):
        store = CheckpointStore()
        ckpt, secs = store.save(3, 12.5, small_hierarchy)
        assert secs > 0.0
        assert ckpt.num_cells == small_hierarchy.total_cells
        restored, rsecs = store.restore()
        assert restored.step == 3 and restored.sim_time == 12.5
        assert rsecs > 0.0
        assert store.saved == 1 and store.restored == 1

    def test_keep_limit(self, small_hierarchy):
        store = CheckpointStore(keep=2)
        for step in range(5):
            store.save(step, float(step), small_hierarchy)
        assert store.latest.step == 4
        store.restore()
        assert store.latest.step == 4  # restore doesn't pop

    def test_restore_empty_raises(self):
        with pytest.raises(RuntimeError):
            CheckpointStore().restore()

    def test_cost_model_scales_with_cells(self):
        cm = CheckpointCostModel()
        assert cm.checkpoint_seconds(2_000_000) > cm.checkpoint_seconds(1_000)
        assert cm.restore_seconds(1_000) < cm.checkpoint_seconds(1_000)
        with pytest.raises(ValueError):
            CheckpointCostModel(write_bandwidth=0.0)


class TestFaultToleranceConfig:
    def test_defaults(self):
        ft = FaultTolerance()
        assert ft.max_recoveries_per_interval == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultTolerance(max_recoveries_per_interval=0)


class TestResilientReplay:
    """End-to-end: quickstart-style trace under Poisson failures."""

    def _run(self, trace, seed=11, procs=8, ft=None):
        cluster = sp2_blue_horizon(procs)
        cluster.failures.events.extend(
            FailureSchedule.poisson(
                num_nodes=procs, horizon=3000.0, mtbf=250.0, mttr=40.0,
                seed=seed,
            ).events
        )
        sim = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft))
        return sim.run(trace, StaticSelector(ISPPartitioner()))

    def test_quickstart_under_poisson_completes(self, small_rm3d_trace):
        res = self._run(small_rm3d_trace)
        planned = small_rm3d_trace.meta["num_coarse_steps"]
        assert sum(r.coarse_steps for r in res.records) == planned
        assert res.num_recoveries >= 1
        for rec in res.records:
            assert set(rec.owners) <= set(rec.live_procs)
        for ev in res.recovery_events:
            assert ev.recovery_lag >= 0.0
            assert ev.steps_lost >= 0
            assert all(n in ev.live_after or n in ev.failed_nodes
                       for n in ev.failed_nodes)
            assert not set(ev.failed_nodes) & set(ev.live_after)

    def test_recovery_accounting_in_runtime(self, small_rm3d_trace):
        res = self._run(small_rm3d_trace)
        total = sum(
            r.compute_time + r.comm_time + r.regrid_time
            + r.checkpoint_time + r.recovery_time
            for r in res.records
        )
        assert res.total_runtime == pytest.approx(total)
        assert res.total_checkpoint_time > 0.0
        assert res.total_recovery_time > 0.0

    def test_failure_free_run_unchanged_by_default(self, small_rm3d_trace):
        """No failure schedule → no detector, no checkpoint charge."""
        res = ExecutionSimulator(sp2_blue_horizon(4)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        assert res.total_checkpoint_time == 0.0
        assert res.total_recovery_time == 0.0
        assert res.recovery_events == []

    def test_explicit_ft_charges_checkpoints_when_clean(
        self, small_rm3d_trace
    ):
        res = ExecutionSimulator(
            sp2_blue_horizon(4), options=SimulatorOptions(fault_tolerance=FaultTolerance())
        ).run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert res.total_checkpoint_time > 0.0
        assert res.num_recoveries == 0


class TestResilientMessaging:
    def test_lossy_delivery_retries_deterministically(self):
        policy = DeliveryPolicy(loss_rate=0.5, max_retries=10, seed=5)
        mc = MessageCenter(policy)
        mc.register("a")
        mc.register("b")
        for i in range(20):
            mc.send(Message(sender="a", dest="b", topic=f"t{i}"))
        assert mc.retry_count > 0

        mc2 = MessageCenter(DeliveryPolicy(loss_rate=0.5, max_retries=10, seed=5))
        mc2.register("a")
        mc2.register("b")
        for i in range(20):
            mc2.send(Message(sender="a", dest="b", topic=f"t{i}"))
        assert mc2.retry_count == mc.retry_count
        assert mc2.delivered_count == mc.delivered_count

    def test_max_retries_dead_letters(self):
        mc = MessageCenter(DeliveryPolicy(loss_rate=0.999999, max_retries=2,
                                          seed=0))
        mc.register("b")
        ok = mc.send(Message(sender="a", dest="b", topic="t"))
        assert ok is False
        assert mc.dead_letter_count == 1
        dl = mc.dead_letters[0]
        assert dl.reason == "max-retries"
        assert dl.attempts == 3  # initial + 2 retries
        assert mc.receive("b") is None

    def test_timeout_dead_letters(self):
        mc = MessageCenter(
            DeliveryPolicy(loss_rate=0.999999, max_retries=100,
                           backoff_base=1.0, backoff_factor=1.0,
                           send_timeout=2.5, seed=0)
        )
        mc.register("b")
        assert mc.send(Message(sender="a", dest="b", topic="t")) is False
        assert mc.dead_letters[0].reason == "timeout"

    def test_backoff_capped(self):
        policy = DeliveryPolicy(backoff_base=0.1, backoff_factor=10.0,
                                backoff_cap=0.5)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(5) == pytest.approx(0.5)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DeliveryPolicy(loss_rate=1.0)
        with pytest.raises(ValueError):
            DeliveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            DeliveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            DeliveryPolicy(send_timeout=0.0)

    def test_publish_counts_only_delivered(self):
        mc = MessageCenter(DeliveryPolicy(loss_rate=0.999999, max_retries=0,
                                          seed=0))
        mc.register("a")
        mc.register("b")
        mc.subscribe("b", "ev")
        assert mc.publish("a", "ev", {}) == 0
        assert mc.dead_letter_count == 1

    def test_drain_dead_letters(self):
        mc = MessageCenter()
        mc.send(Message(sender="a", dest="ghost", topic="t"))
        assert mc.dead_letter_count == 1
        drained = mc.drain_dead_letters()
        assert len(drained) == 1
        assert mc.dead_letter_count == 0


class TestMigrateActuatorFallback:
    def _component(self, cluster, node=0):
        return ManagedComponent(
            name="c", cluster=cluster, node_id=node, total_work=1e6
        )

    def test_migrate_to_dead_node_refused(self):
        cluster = linux_cluster(4, seed=0)
        cluster.failures.add(FailureEvent(3, 0.0, 1e9))
        comp = self._component(cluster, node=0)
        comp.state = ComponentState.RUNNING
        act = MigrateActuator(comp)
        assert act.actuate(5.0, target=3) is False
        assert comp.node_id == 0
        assert comp.migrations == 0

    def test_migrate_to_live_node_succeeds(self):
        cluster = linux_cluster(4, seed=0)
        comp = self._component(cluster, node=0)
        comp.state = ComponentState.RUNNING
        act = MigrateActuator(comp)
        assert act.actuate(5.0, target=2) is True
        assert comp.node_id == 2
        assert comp.migrations == 1

    def test_failed_component_restarts_from_checkpoint(self):
        cluster = linux_cluster(4, seed=0)
        comp = self._component(cluster, node=1)
        comp.progress = 5e5
        comp.checkpoint = 3e5
        comp.state = ComponentState.FAILED
        act = MigrateActuator(comp)
        assert act.actuate(1.0, target=0) is True
        assert comp.progress == 3e5
        assert comp.state is ComponentState.RUNNING


class TestChaosConfigValidation:
    def test_defaults_and_validation(self):
        from repro.resilience.chaos import ChaosConfig

        cfg = ChaosConfig()
        assert cfg.seeds == (0, 1, 2)
        with pytest.raises(ValueError):
            ChaosConfig(seeds=())
        with pytest.raises(ValueError):
            ChaosConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(mtbf=0.0)


class TestDetectorSweepEdges:
    """Polling-loop boundary conditions: straddling windows, poll-aligned
    failures, and blips that recover before the lease expires."""

    def _detector(self, *events):
        cluster = sp2_blue_horizon(4)
        for e in events:
            cluster.failures.add(e)
        return FailureDetector(cluster)

    def test_outage_straddling_sweep_windows(self):
        # Detector state persists across sweep calls: splitting the sweep
        # at an arbitrary point inside the outage changes nothing.
        outage = FailureEvent(1, 8.0, 25.0)
        split = self._detector(outage)
        events = split.sweep(0.0, 15.0) + split.sweep(15.0, 40.0)
        whole = self._detector(outage)
        assert events == whole.sweep(0.0, 40.0)
        assert [(e.kind, e.t_detected) for e in events] == [
            ("failure", 10.0), ("recovery", 25.0)
        ]

    def test_failure_exactly_at_poll_boundary(self):
        # The heartbeat at t=10.0 itself misses (is_down is half-open on
        # the left), so polling declares one period before the analytic
        # worst case — the analytic face stays conservative.
        det = self._detector(FailureEvent(1, 10.0, 13.0))
        det.sweep(0.0, 20.0)
        fails = [e for e in det.events if e.kind == "failure"]
        assert [e.t_detected for e in fails] == [12.0]
        assert det.detection_fire_time(1, 10.0) == 13.0
        assert det.detected_down(1, 13.5)
        assert det.next_detected_alive(1, 13.0) == 14.0

    def test_recovery_before_detection_fires(self):
        # A 1.7s blip misses one heartbeat: both faces stay silent.
        det = self._detector(FailureEvent(1, 10.2, 11.9))
        det.sweep(0.0, 20.0)
        assert det.events == []
        assert det.declared_down_nodes() == []
        assert math.isinf(det.detection_fire_time(1, 10.5))
        for t in (10.5, 13.5, 15.0):
            assert not det.detected_down(1, t)
            assert det.next_detected_alive(1, t) == t

    def test_sweep_rejects_reversed_window(self):
        det = self._detector()
        with pytest.raises(ValueError):
            det.sweep(5.0, 4.0)


class TestCheckpointAliasing:
    """The deep_copy knob and its wiring to incremental replay."""

    def test_default_aliases_the_saved_hierarchy(self, small_hierarchy):
        store = CheckpointStore()
        mutable = small_hierarchy.copy()
        store.save(0, 0.0, mutable)
        mutable.levels.pop()            # in-place regrid-style mutation
        ck, _ = store.restore()
        # Documented hazard: without deep_copy the checkpoint tracks the
        # caller's mutations.
        assert ck.hierarchy is mutable
        assert ck.hierarchy.total_cells == mutable.total_cells

    def test_deep_copy_snapshots_state_at_save_time(self, small_hierarchy):
        store = CheckpointStore(deep_copy=True)
        mutable = small_hierarchy.copy()
        before = mutable.total_cells
        store.save(0, 0.0, mutable)
        mutable.levels.pop()
        ck, _ = store.restore()
        assert ck.hierarchy is not mutable
        assert ck.hierarchy.total_cells == before

    def test_simulator_wires_deep_copy_to_incremental(
        self, monkeypatch, small_rm3d_trace
    ):
        from repro.execsim import simulator as simulator_mod

        captured = []

        class Spy(CheckpointStore):
            def __init__(self, cost_model=None, *, keep=2, deep_copy=False):
                captured.append(deep_copy)
                super().__init__(cost_model, keep=keep, deep_copy=deep_copy)

        monkeypatch.setattr(simulator_mod, "CheckpointStore", Spy)
        for incremental in (True, False):
            ExecutionSimulator(
                sp2_blue_horizon(4),
                options=SimulatorOptions(
                    fault_tolerance=FaultTolerance(), incremental=incremental
                ),
            ).run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert captured == [True, False]
