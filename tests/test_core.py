"""Tests for the Pragma core: capacity, meta-partitioner, pipelines, facade."""

import pytest

from repro.apps.loadgen import LoadPattern
from repro.core import (
    CapacityCalculator,
    CapacityWeights,
    MetaPartitioner,
    PragmaRuntime,
    SystemSensitivePipeline,
)
from repro.gridsys import linux_cluster, sp2_blue_horizon
from repro.monitoring import ResourceMonitor
from repro.policy import Octant, TABLE2_RECOMMENDATIONS


class TestCapacityWeights:
    def test_default_sums_to_one(self):
        CapacityWeights()

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            CapacityWeights(cpu=0.5, memory=0.5, bandwidth=0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CapacityWeights(cpu=-0.2, memory=0.6, bandwidth=0.6)


class TestCapacityCalculator:
    def _monitored(self, seed=1):
        cluster = linux_cluster(8, load_pattern=LoadPattern.STEPPED,
                                max_load=0.8, seed=seed)
        mon = ResourceMonitor(cluster, seed=seed + 1)
        mon.sample_range(0.0, 32.0, 1.0)
        return cluster, mon

    def test_capacities_normalized(self):
        _, mon = self._monitored()
        caps = CapacityCalculator(mon).relative_capacities()
        assert caps.shape == (8,)
        assert caps.sum() == pytest.approx(1.0)
        assert (caps >= 0).all()

    def test_loaded_nodes_get_less(self):
        _, mon = self._monitored()
        caps = CapacityCalculator(mon).relative_capacities()
        # stepped load: node 0 idle, node 7 heavily loaded
        assert caps[0] > caps[7]

    def test_forecast_mode(self):
        _, mon = self._monitored()
        caps = CapacityCalculator(mon, use_forecast=True).relative_capacities()
        assert caps.sum() == pytest.approx(1.0)

    def test_weights_shift_capacities(self):
        _, mon = self._monitored()
        cpu_heavy = CapacityCalculator(
            mon, CapacityWeights(cpu=1.0, memory=0.0, bandwidth=0.0)
        ).relative_capacities()
        mem_heavy = CapacityCalculator(
            mon, CapacityWeights(cpu=0.0, memory=1.0, bandwidth=0.0)
        ).relative_capacities()
        # memory is homogeneous -> near-equal shares
        assert mem_heavy.std() < cpu_heavy.std()


class TestMetaPartitioner:
    def test_octant_lookup_matches_table2(self):
        meta = MetaPartitioner()
        for octant in Octant:
            decision = meta.decide_for_octant(octant)
            assert decision.label == TABLE2_RECOMMENDATIONS[octant][0]

    def test_decisions_recorded(self, small_rm3d_trace):
        meta = MetaPartitioner()
        for idx, snap in enumerate(small_rm3d_trace):
            prev = small_rm3d_trace[idx - 1] if idx else None
            meta.decide(snap, prev)
        assert len(meta.selections) == len(small_rm3d_trace)
        used = {label for _, _, label in meta.selections}
        assert used <= {"pBD-ISP", "G-MISP+SP", "SP-ISP", "ISP"}
        assert len(used) >= 2  # the run actually switches partitioners

    def test_hysteresis_reduces_switches(self, small_rm3d_trace):
        def switches(h):
            meta = MetaPartitioner(hysteresis=h)
            for idx, snap in enumerate(small_rm3d_trace):
                prev = small_rm3d_trace[idx - 1] if idx else None
                meta.decide(snap, prev)
            labels = [l for _, _, l in meta.selections]
            return sum(a != b for a, b in zip(labels, labels[1:]))

        assert switches(2) <= switches(0)

    def test_partitioner_instances_cached(self, small_rm3d_trace):
        meta = MetaPartitioner()
        d1 = meta.decide_for_octant(Octant.II)
        d2 = meta.decide_for_octant(Octant.II)
        assert d1.partitioner is d2.partitioner


class TestSystemSensitivePipeline:
    def _pipeline(self, n=8, seed=3):
        cluster = linux_cluster(n, load_pattern=LoadPattern.STEPPED,
                                max_load=0.8, seed=seed)
        mon = ResourceMonitor(cluster, seed=seed + 1)
        calc = CapacityCalculator(mon)
        return SystemSensitivePipeline(cluster=cluster, calculator=calc)

    def test_improvement_positive_on_loaded_cluster(self, small_rm3d_trace):
        pipe = self._pipeline()
        pipe.warm_up()
        improvement = pipe.improvement_pct(small_rm3d_trace)
        assert improvement > 0.0

    def test_capacities_once(self, small_rm3d_trace):
        pipe = self._pipeline()
        pipe.warm_up()
        caps = pipe.capacities()
        assert caps.shape == (8,)


class TestPragmaRuntime:
    def test_run_adaptive_report(self, small_rm3d_trace):
        rt = PragmaRuntime(cluster=sp2_blue_horizon(8), num_procs=8)
        rep = rt.run_adaptive(small_rm3d_trace, compare_with=("G-MISP+SP",))
        assert rep.adaptive.total_runtime > 0
        assert "G-MISP+SP" in rep.static
        assert len(rep.octant_timeline) == len(small_rm3d_trace)

    def test_unknown_comparison_rejected(self, small_rm3d_trace):
        rt = PragmaRuntime(cluster=sp2_blue_horizon(4))
        with pytest.raises(ValueError):
            rt.run_adaptive(small_rm3d_trace, compare_with=("magic",))

    def test_zero_runtime_report_properties(self):
        """All-zero static runtimes must not raise ZeroDivisionError."""
        from repro.core.pragma import AdaptiveRunReport
        from repro.execsim.simulator import RunResult

        rep = AdaptiveRunReport(
            adaptive=RunResult(),
            static={"SFC": RunResult(), "pBD-ISP": RunResult()},
            octant_timeline=(),
        )
        assert rep.worst_static_runtime == 0.0
        assert rep.best_static_runtime == 0.0
        assert rep.improvement_over_worst_pct == 0.0

    def test_capacities_helper(self):
        rt = PragmaRuntime(cluster=linux_cluster(4, seed=2))
        caps = rt.capacities(warmup=8)
        assert caps.shape == (4,)
        assert caps.sum() == pytest.approx(1.0)

    def test_characterize(self):
        from repro.amr.regrid import RegridPolicy
        from repro.apps import RM3D, RM3DConfig

        rt = PragmaRuntime(cluster=sp2_blue_horizon(2))
        cfg = RM3DConfig(shape=(32, 8, 8), interface_x=10.0)
        trace = rt.characterize(RM3D(cfg), RegridPolicy(regrid_interval=8), 32)
        assert len(trace) == 4
