"""Causal tracing: error recording, thread safety, flows, Chrome export."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.agents.adm import ApplicationDelegatedManager
from repro.agents.component import ManagedComponent
from repro.agents.component_agent import ComponentAgent
from repro.agents.message_center import MessageCenter
from repro.agents.messages import Message
from repro.gridsys import sp2_blue_horizon
from repro.obs.chrome import chrome_trace_events
from repro.obs.tracing import NullTracer, Tracer


class TestSpanErrors:
    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner, outer = tracer.records
        assert inner.attrs == {"error": True, "error_type": "RuntimeError"}
        assert outer.attrs == {"error": True, "error_type": "RuntimeError"}

    def test_stack_unwinds_after_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError()
        # A fresh span after the failure is a root again, not a child.
        with tracer.span("b"):
            pass
        b = tracer.records[-1]
        assert b.path == "b" and b.depth == 0 and b.parent == 0

    def test_original_attrs_not_mutated_on_error(self):
        tracer = Tracer()
        span = tracer.span("s", k=1)
        with pytest.raises(ValueError):
            with span:
                raise ValueError()
        assert span.attrs == {"k": 1}


class TestThreadSafety:
    def test_two_threads_do_not_corrupt_paths(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def work(name):
            try:
                for _ in range(200):
                    with tracer.span(f"{name}.outer"):
                        barrier.wait(timeout=5)
                        with tracer.span(f"{name}.inner"):
                            pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(n,)) for n in ("t0", "t1")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Every inner span nests under its own thread's outer span.
        for r in tracer.records:
            if r.name.endswith(".inner"):
                prefix = r.name.split(".")[0]
                assert r.path == f"{prefix}.outer/{prefix}.inner"
                assert r.depth == 1
        tids = {r.tid for r in tracer.records}
        assert len(tids) == 2

    def test_null_tracer_is_allocation_free(self):
        tracer = NullTracer()
        s1 = tracer.span("a")
        s2 = tracer.span("b", k=1)
        assert s1 is s2
        assert tracer.handler_span("h", 5) is s1
        assert tracer.new_flow() == 0


class TestFlows:
    def test_send_stamps_flow_and_handler_consumes_it(self):
        with obs.collect() as window:
            mc = MessageCenter()
            mc.register("a")
            mc.register("b")
            msg = Message(sender="a", dest="b", topic="ping")
            assert msg.trace_ctx is None
            mc.send(msg)
            assert msg.trace_ctx == 1
            got = mc.receive("b")
            with obs.handler_span("b.handle", got):
                pass
        tracer = window.tracer
        phases = [(f.phase, f.id) for f in tracer.flows]
        assert phases == [("s", 1), ("f", 1)]
        start, end = tracer.flows
        send_span = next(r for r in tracer.records if r.name == "mc.send")
        handle_span = next(
            r for r in tracer.records if r.name == "b.handle"
        )
        assert start.sid == send_span.sid
        assert end.sid == handle_span.sid

    def test_disabled_send_does_not_stamp(self):
        mc = MessageCenter()
        mc.register("a")
        mc.register("b")
        msg = Message(sender="a", dest="b", topic="ping")
        mc.send(msg)
        assert msg.trace_ctx is None

    def test_adm_and_ca_spans_link_to_sends(self):
        cluster = sp2_blue_horizon(4)
        with obs.collect() as window:
            mc = MessageCenter()
            adm = ApplicationDelegatedManager(mc, cluster)
            comp = ManagedComponent(
                name="c0", cluster=cluster, node_id=0, total_work=1e8
            )
            ca = ComponentAgent(comp, mc)
            adm.launch_agent(ca)
            mc.publish(
                "test", "requirement-violated.throughput",
                {"component": "c0", "throughput": 0.0}, time=1.0,
            )
            adm.tick(1.0)   # handles the violation, directs migration
            ca.tick(2.0)    # handles the actuate order, sends the ack
            adm.tick(3.0)   # handles the ack
        tracer = window.tracer
        names = {r.name for r in tracer.records}
        assert {"mc.publish", "mc.send", "adm.handle", "ca.handle"} <= names
        ends = {f.id for f in tracer.flows if f.phase == "f"}
        starts = {f.id for f in tracer.flows if f.phase == "s"}
        assert ends and ends <= starts
        # The CA actually migrated on the ADM's order.
        assert comp.node_id != 0

    def test_import_spans_re_roots_and_remaps(self):
        worker = Tracer()
        with worker.span("execsim.run"):
            with worker.span("partition"):
                pass
        parent = Tracer()
        with parent.span("sweep.batch"):
            parent.import_spans(
                worker.to_dicts(), prefix="sweep.worker/s1", offset=100.0
            )
        paths = {r.path for r in parent.records}
        assert "sweep.worker/s1/execsim.run" in paths
        assert "sweep.worker/s1/execsim.run/partition" in paths
        imported = [r for r in parent.records if r.path.startswith("sweep.")
                    and r.name != "sweep.batch"]
        assert all(r.start >= 100.0 for r in imported)
        local_sids = {
            r.sid for r in parent.records if r.name == "sweep.batch"
        }
        assert all(r.sid not in local_sids for r in imported)
        assert len({r.tid for r in imported}) == 1
        run = next(r for r in imported if r.name == "execsim.run")
        part = next(r for r in imported if r.name == "partition")
        assert part.parent == run.sid


class TestChromeExport:
    def _trace_with_flow(self):
        with obs.collect() as window:
            mc = MessageCenter()
            mc.register("a")
            mc.register("b")
            mc.send(Message(sender="a", dest="b", topic="ping"))
            got = mc.receive("b")
            with obs.handler_span("b.handle", got):
                pass
        return window.tracer

    def test_document_shape(self):
        doc = chrome_trace_events(self._trace_with_flow())
        assert isinstance(doc["traceEvents"], list)
        json.dumps(doc)
        assert doc["traceEvents"][0]["ph"] == "M"

    def test_ts_monotonic_and_x_events_complete(self):
        doc = chrome_trace_events(self._trace_with_flow())
        events = doc["traceEvents"]
        ts = [e["ts"] for e in events if "ts" in e]
        assert ts == sorted(ts)
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] > 0
                assert isinstance(e["tid"], int)

    def test_flow_pairs_match_by_id(self):
        doc = chrome_trace_events(self._trace_with_flow())
        events = doc["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        ends = {e["id"] for e in events if e["ph"] == "f"}
        assert starts == ends != set()
        f_events = [e for e in events if e["ph"] == "f"]
        assert all(e["bp"] == "e" for e in f_events)
        for e in events:
            if e["ph"] in ("s", "f"):
                assert e["name"] == "message" and e["cat"] == "flow"

    def test_attrs_are_jsonable(self):
        tracer = Tracer()
        with tracer.span("s", obj=object(), n=3, flag=True):
            pass
        doc = chrome_trace_events(tracer)
        json.dumps(doc)
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["n"] == 3 and args["flag"] is True
        assert isinstance(args["obj"], str)
