"""Tests for the simulated grid environment."""

import pytest

from repro.apps.loadgen import LoadPattern, SyntheticLoadGenerator
from repro.gridsys import (
    Cluster,
    FailureEvent,
    FailureSchedule,
    Link,
    Node,
    linux_cluster,
    sp2_blue_horizon,
)


class TestNodeLink:
    def test_node_validation(self):
        with pytest.raises(ValueError):
            Node(-1)
        with pytest.raises(ValueError):
            Node(0, cpu_speed=0)

    def test_link_transfer_time(self):
        link = Link(latency=1e-3, bandwidth=1e6)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1e6) == pytest.approx(1.001)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(latency=-1)
        with pytest.raises(ValueError):
            Link(bandwidth=0)


class TestFailures:
    def test_event_window(self):
        e = FailureEvent(node_id=0, t_fail=5.0, t_recover=10.0)
        assert not e.is_down(4.9)
        assert e.is_down(5.0)
        assert e.is_down(9.9)
        assert not e.is_down(10.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(node_id=0, t_fail=5.0, t_recover=5.0)

    def test_schedule_queries(self):
        s = FailureSchedule()
        s.add(FailureEvent(1, 2.0, 4.0))
        assert s.is_alive(0, 3.0)
        assert not s.is_alive(1, 3.0)
        assert len(s.failures_in(0.0, 10.0)) == 1
        assert s.failures_in(5.0, 10.0) == []

    def test_poisson_schedule(self):
        s = FailureSchedule.poisson(4, horizon=1000.0, mtbf=100.0, mttr=10.0, seed=1)
        assert len(s.events) > 0
        assert all(e.t_fail < 1000.0 for e in s.events)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            FailureSchedule.poisson(1, 10.0, mtbf=0, mttr=1)


class TestCluster:
    def test_homogeneous_speed(self):
        c = sp2_blue_horizon(4)
        assert c.effective_speed(0, 0.0) == c.nodes[0].cpu_speed
        assert c.background_load(0, 5.0) == 0.0

    def test_failed_node_speed_zero(self):
        c = sp2_blue_horizon(2)
        c.failures.add(FailureEvent(0, 1.0, 2.0))
        assert c.effective_speed(0, 1.5) == 0.0
        assert c.effective_speed(0, 2.5) > 0

    def test_comm_time(self):
        c = sp2_blue_horizon(2)
        assert c.comm_time(0, 0, 1e6) == 0.0
        assert c.comm_time(0, 1, 1e6) > 0.0
        with pytest.raises(ValueError):
            c.comm_time(0, 9, 1.0)

    def test_node_id_ordering_enforced(self):
        with pytest.raises(ValueError):
            Cluster(nodes=[Node(1), Node(0)])

    def test_loadgen_size_checked(self):
        with pytest.raises(ValueError):
            Cluster(
                nodes=[Node(0), Node(1)],
                loadgen=SyntheticLoadGenerator(3),
            )

    def test_linux_cluster_heterogeneous_speeds(self):
        c = linux_cluster(8, load_pattern=LoadPattern.STEPPED, seed=2)
        speeds = [c.effective_speed(n, 10.0) for n in range(8)]
        assert max(speeds) > min(speeds)

    def test_linux_cluster_custom_speeds(self):
        c = linux_cluster(2, speeds=[1e6, 2e6])
        assert c.nodes[1].cpu_speed == 2e6
        with pytest.raises(ValueError):
            linux_cluster(2, speeds=[1e6])
