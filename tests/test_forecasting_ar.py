"""Tests for the autoregressive predictor and ensemble integration."""

import numpy as np
import pytest

from repro.monitoring import AutoRegressive, ForecasterEnsemble, default_ensemble
from repro.util.rng import ensure_rng


class TestAutoRegressive:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoRegressive(order=0)
        with pytest.raises(ValueError):
            AutoRegressive(order=5, window=8)

    def test_falls_back_to_last_value_early(self):
        p = AutoRegressive(order=3)
        p.update(7.0)
        assert p.predict() == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            AutoRegressive().predict()

    def test_learns_ar1_process(self):
        """On a strongly autocorrelated series the AR predictor beats the
        sliding mean decisively."""
        from repro.monitoring import SlidingWindowMean

        rng = ensure_rng(0)
        ar = AutoRegressive(order=2)
        mean = SlidingWindowMean(10)
        x = 0.5
        ar_err, mean_err = [], []
        for i in range(400):
            if i > 50:
                ar_err.append(abs(ar.predict() - x))
                mean_err.append(abs(mean.predict() - x))
            ar.update(x)
            mean.update(x)
            x = 0.2 + 0.75 * x + 0.02 * float(rng.standard_normal())
        assert np.mean(ar_err) < np.mean(mean_err)

    def test_constant_series_predicts_constant(self):
        p = AutoRegressive(order=2)
        for _ in range(50):
            p.update(3.0)
        assert p.predict() == pytest.approx(3.0, abs=1e-6)

    def test_in_default_ensemble(self):
        names = [p.name for p in default_ensemble()]
        assert "AutoRegressive(3)" in names

    def test_ensemble_can_select_ar(self):
        """A clean AR(1) series should drive the ensemble toward the AR
        member (or at least something competitive with it)."""
        rng = ensure_rng(1)
        ens = ForecasterEnsemble()
        x = 0.5
        for _ in range(300):
            ens.update(x)
            x = 0.1 + 0.85 * x + 0.005 * float(rng.standard_normal())
        errs = ens.postcast_errors()
        best = min(errs.values())
        assert errs[ens.best_name] == best
        assert errs["AutoRegressive(3)"] <= 3 * best
