"""Differential tests for the execsim communication-cost kernel.

Both backends of :func:`repro.execsim.costmodel.comm_cost_terms` must be
*bit-identical* to the frozen scalar oracle in
``tests/reference/ref_costmodel.py`` — over randomized synthetic
adjacency problems, over real partitioned hierarchies, and over the
committed golden corpus ``tests/golden/costmodel.json``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import Regridder, RegridPolicy
from repro.execsim.costmodel import (
    CostModel,
    comm_cost_terms,
    comm_cost_terms_scalar,
    per_step_comm_times,
)
from repro.kernels.costmodel import comm_cost_terms_vector
from repro.partitioners import PARTITIONER_REGISTRY, build_units

TESTS = Path(__file__).parent
BACKENDS = kernels.BACKENDS


def _load_reference(name: str):
    path = TESTS / "reference" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


ref_costmodel = _load_reference("ref_costmodel")


def digest(arr: np.ndarray) -> str:
    arr = np.asarray(arr)
    dtype = np.float64 if np.issubdtype(arr.dtype, np.floating) else np.int64
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=dtype).tobytes()
    ).hexdigest()


# -- randomized synthetic corpus ----------------------------------------------


def _random_problem(rng: np.random.Generator, n_units: int, num_procs: int):
    """A synthetic adjacency problem shaped like real composite units."""
    shapes = rng.integers(1, 6, size=(n_units, 3))
    loads = rng.random(n_units) * rng.choice([1.0, 50.0], size=n_units)
    assignment = rng.integers(0, num_procs, size=n_units)
    n_pairs = max(1, 3 * n_units)
    i = rng.integers(0, n_units, size=n_pairs)
    j = rng.integers(0, n_units, size=n_pairs)
    axis = rng.integers(0, 3, size=n_pairs)
    return i, j, axis, assignment, shapes, loads, num_procs


def _cases():
    rng = np.random.default_rng(20260808)
    out = []
    for n_units, num_procs in [(1, 1), (8, 2), (50, 7), (200, 16), (777, 31)]:
        out.append(_random_problem(rng, n_units, num_procs))
    # all one owner: no cut faces at all
    i, j, axis, _, shapes, loads, _ = _random_problem(rng, 40, 5)
    out.append((i, j, axis, np.zeros(40, dtype=int), shapes, loads, 5))
    # zero loads: densities collapse but faces still cut
    i, j, axis, assignment, shapes, _, _ = _random_problem(rng, 40, 5)
    out.append((i, j, axis, assignment, shapes, np.zeros(40), 5))
    # empty adjacency
    out.append((
        np.zeros(0, dtype=int), np.zeros(0, dtype=int), np.zeros(0, dtype=int),
        np.zeros(4, dtype=int), np.ones((4, 3), dtype=int), np.ones(4), 4,
    ))
    return out


class TestCostTermsDifferential:
    def test_scalar_matches_oracle(self):
        for case in _cases():
            got = comm_cost_terms_scalar(*case, 2.0, 10.0)
            want = ref_costmodel.comm_cost_terms(*case, 2.0, 10.0)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
            assert got[2] == want[2]

    def test_vector_matches_oracle(self):
        for case in _cases():
            got = comm_cost_terms_vector(*case, 2.0, 10.0)
            want = ref_costmodel.comm_cost_terms(*case, 2.0, 10.0)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
            assert got[2] == want[2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dispatch_matches_oracle(self, backend):
        with kernels.use_backend(backend):
            for case in _cases():
                got = comm_cost_terms(*case, 1.0, 4.0)
                want = ref_costmodel.comm_cost_terms(*case, 1.0, 4.0)
                np.testing.assert_array_equal(got[0], want[0])
                np.testing.assert_array_equal(got[1], want[1])
                assert got[2] == want[2]


# -- real partitioned hierarchies ---------------------------------------------


def _hierarchy_corpus():
    rng = np.random.default_rng(42)
    out = []
    blob_domain = Box((0, 0, 0), (32, 16, 16))
    err = np.zeros(blob_domain.shape)
    err[6:14, 4:10, 4:10] = 0.6
    err[8:12, 5:8, 5:8] = 0.95
    out.append(
        Regridder(blob_domain, RegridPolicy(thresholds=(0.3, 0.8))).regrid(err)
    )
    noise_domain = Box((0, 0, 0), (24, 24, 12))
    out.append(
        Regridder(noise_domain, RegridPolicy(thresholds=(0.55, 0.85))).regrid(
            rng.random(noise_domain.shape)
        )
    )
    return out


class TestRealUnitsDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partitioned_hierarchies_match_oracle(self, backend):
        cost = CostModel()
        with kernels.use_backend(backend):
            for hierarchy in _hierarchy_corpus():
                units = build_units(hierarchy, granularity=4)
                i, j, axis = units.adjacency_arrays()
                shapes = units.unit_shapes()
                for name in ("ISP", "G-MISP+SP"):
                    part = PARTITIONER_REGISTRY[name]().partition(units, 8)
                    got = comm_cost_terms(
                        i, j, axis, part.assignment, shapes, units.loads,
                        8, cost.ghost_width, cost.bytes_per_comm_unit,
                    )
                    want = ref_costmodel.comm_cost_terms(
                        i, j, axis, part.assignment, shapes, units.loads,
                        8, cost.ghost_width, cost.bytes_per_comm_unit,
                    )
                    np.testing.assert_array_equal(got[0], want[0])
                    np.testing.assert_array_equal(got[1], want[1])
                    assert got[2] == want[2]

    def test_per_step_comm_times_backends_agree(self):
        hierarchy = _hierarchy_corpus()[0]
        units = build_units(hierarchy, granularity=4)
        part = PARTITIONER_REGISTRY["ISP"]().partition(units, 8)
        cost = CostModel()
        with kernels.use_backend("vector"):
            tv, gv = per_step_comm_times(part, cost, 1e8)
        with kernels.use_backend("scalar"):
            ts, gs = per_step_comm_times(part, cost, 1e8)
        np.testing.assert_array_equal(tv, ts)
        assert gv == gs


# -- golden corpus ------------------------------------------------------------

GOLDEN = TESTS / "golden" / "costmodel.json"


@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_costmodel_corpus(backend):
    doc = json.loads(GOLDEN.read_text())
    cost = CostModel()
    with kernels.use_backend(backend):
        for case_name, entry in doc["cases"].items():
            case = json.loads((TESTS / "golden" / f"{case_name}.json").read_text())
            hierarchy = GridHierarchy.from_dict(case["hierarchy"])
            units = build_units(hierarchy, granularity=doc["granularity"])
            i, j, axis = units.adjacency_arrays()
            shapes = units.unit_shapes()
            for name, want in entry.items():
                part = PARTITIONER_REGISTRY[name]().partition(
                    units, doc["num_procs"]
                )
                comm_bytes, neighbor_count, ghost_work = comm_cost_terms(
                    i, j, axis, part.assignment, shapes, units.loads,
                    doc["num_procs"], cost.ghost_width,
                    cost.bytes_per_comm_unit,
                )
                assert digest(comm_bytes) == want["comm_bytes_digest"], (
                    f"{case_name}/{name} comm bytes drifted under {backend}"
                )
                assert digest(neighbor_count) == want["neighbor_count_digest"]
                assert ghost_work == want["ghost_work"]


def test_kernel_call_counter_increments():
    from repro import obs

    case = _cases()[1]
    with obs.collect() as window:
        with kernels.use_backend("vector"):
            comm_cost_terms(*case, 2.0, 10.0)
        with kernels.use_backend("scalar"):
            comm_cost_terms(*case, 2.0, 10.0)
    reg = window.registry
    assert reg.counter_value(
        "kernels.calls", kernel="costmodel", backend="vector"
    ) == 1.0
    assert reg.counter_value(
        "kernels.calls", kernel="costmodel", backend="scalar"
    ) == 1.0
