"""Unit and property tests for the integer box algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.amr.box import Box


def boxes(max_coord: int = 20, max_extent: int = 12):
    """Hypothesis strategy for valid boxes."""
    lo = st.tuples(*[st.integers(-max_coord, max_coord)] * 3)
    ext = st.tuples(*[st.integers(1, max_extent)] * 3)
    return st.builds(
        lambda l, e: Box(l, tuple(a + b for a, b in zip(l, e))), lo, ext
    )


class TestConstruction:
    def test_basic(self):
        b = Box((0, 0, 0), (4, 3, 2))
        assert b.shape == (4, 3, 2)
        assert b.num_cells == 24

    def test_from_shape(self):
        b = Box.from_shape((5, 5, 5), origin=(1, 2, 3))
        assert b.lo == (1, 2, 3)
        assert b.hi == (6, 7, 8)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (0, 3, 3))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Box((5, 0, 0), (4, 3, 3))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1))

    def test_immutable(self):
        b = Box((0, 0, 0), (1, 1, 1))
        with pytest.raises(Exception):
            b.lo = (1, 1, 1)


class TestGeometry:
    def test_centroid(self):
        b = Box((0, 0, 0), (4, 4, 4))
        assert b.centroid == (2.0, 2.0, 2.0)

    def test_surface_area(self):
        assert Box((0, 0, 0), (2, 3, 4)).surface_area() == 2 * (6 + 12 + 8)

    def test_contains_point(self):
        b = Box((0, 0, 0), (2, 2, 2))
        assert b.contains_point((0, 0, 0))
        assert b.contains_point((1, 1, 1))
        assert not b.contains_point((2, 0, 0))

    def test_contains_box(self):
        outer = Box((0, 0, 0), (10, 10, 10))
        inner = Box((2, 2, 2), (5, 5, 5))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestSetOps:
    def test_intersection_overlap(self):
        a = Box((0, 0, 0), (4, 4, 4))
        b = Box((2, 2, 2), (6, 6, 6))
        inter = a.intersection(b)
        assert inter == Box((2, 2, 2), (4, 4, 4))

    def test_intersection_disjoint(self):
        a = Box((0, 0, 0), (2, 2, 2))
        b = Box((3, 3, 3), (5, 5, 5))
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_touching_boxes_do_not_intersect(self):
        a = Box((0, 0, 0), (2, 2, 2))
        b = Box((2, 0, 0), (4, 2, 2))
        assert a.intersection(b) is None

    def test_bounding_union(self):
        a = Box((0, 0, 0), (1, 1, 1))
        b = Box((5, 5, 5), (6, 6, 6))
        assert a.bounding_union(b) == Box((0, 0, 0), (6, 6, 6))

    def test_subtract_disjoint(self):
        a = Box((0, 0, 0), (2, 2, 2))
        b = Box((5, 5, 5), (6, 6, 6))
        assert a.subtract(b) == [a]

    def test_subtract_fully_covered(self):
        a = Box((1, 1, 1), (2, 2, 2))
        b = Box((0, 0, 0), (4, 4, 4))
        assert a.subtract(b) == []

    @given(boxes(), boxes())
    def test_subtract_partition_property(self, a, b):
        """a\\b pieces are disjoint, inside a, avoid b, and cover a\\b."""
        pieces = a.subtract(b)
        total = sum(p.num_cells for p in pieces)
        inter = a.intersection(b)
        expected = a.num_cells - (inter.num_cells if inter else 0)
        assert total == expected
        for i, p in enumerate(pieces):
            assert a.contains_box(p)
            assert not p.intersects(b)
            for q in pieces[i + 1:]:
                assert not p.intersects(q)


class TestRefinement:
    def test_refine_coarsen_roundtrip_aligned(self):
        b = Box((2, 4, 6), (4, 8, 10))
        assert b.refine(2).coarsen(2) == b

    @given(boxes(), st.integers(2, 4))
    def test_coarsen_covers(self, b, r):
        """The coarsened box always covers the original footprint."""
        c = b.coarsen(r)
        assert c.refine(r).contains_box(b)

    def test_grow(self):
        b = Box((2, 2, 2), (4, 4, 4)).grow(1)
        assert b == Box((1, 1, 1), (5, 5, 5))

    def test_shift(self):
        b = Box((0, 0, 0), (1, 1, 1)).shift((3, -2, 5))
        assert b == Box((3, -2, 5), (4, -1, 6))

    def test_refine_bad_ratio(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (1, 1, 1)).refine(0)


class TestSplitting:
    def test_split(self):
        a, b = Box((0, 0, 0), (4, 2, 2)).split(0, 2)
        assert a == Box((0, 0, 0), (2, 2, 2))
        assert b == Box((2, 0, 0), (4, 2, 2))

    def test_split_out_of_range(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (4, 2, 2)).split(0, 0)

    def test_halve_longest(self):
        a, b = Box((0, 0, 0), (8, 2, 2)).halve_longest()
        assert a.shape == (4, 2, 2) and b.shape == (4, 2, 2)

    def test_halve_single_cell(self):
        assert Box((0, 0, 0), (1, 1, 1)).halve_longest() is None

    @given(boxes())
    def test_blocks_tile_exactly(self, b):
        tiles = list(b.blocks((3, 3, 3)))
        assert sum(t.num_cells for t in tiles) == b.num_cells
        for i, t in enumerate(tiles):
            assert b.contains_box(t)
            for u in tiles[i + 1:]:
                assert not t.intersects(u)


class TestBridging:
    def test_slices(self):
        b = Box((2, 3, 4), (5, 6, 7))
        arr = np.zeros((10, 10, 10))
        arr[b.slices()] = 1
        assert arr.sum() == b.num_cells
        assert arr[2, 3, 4] == 1 and arr[4, 5, 6] == 1

    def test_slices_with_origin(self):
        b = Box((2, 2, 2), (4, 4, 4))
        arr = np.zeros((4, 4, 4))
        arr[b.slices(origin=(1, 1, 1))] = 1
        assert arr.sum() == 8

    def test_serialization_roundtrip(self):
        b = Box((1, -2, 3), (4, 5, 6))
        assert Box.from_dict(b.to_dict()) == b
