"""Tests for policy derivation and knowledge-base persistence."""

import pytest

from repro.policy import (
    Condition,
    FuzzySet,
    Octant,
    PolicyKnowledgeBase,
    Rule,
    default_policy_base,
    derive_recommendations,
    kb_from_json,
    kb_to_json,
    load_kb,
    requirement_weights,
    save_kb,
    triangular,
)


class TestRequirementWeights:
    def test_all_octants_defined(self):
        for octant in Octant:
            w = requirement_weights(octant).as_array()
            assert w.shape == (5,)
            assert w.sum() == pytest.approx(1.0)

    def test_comm_octants_weight_comm_over_balance(self):
        w_comm = requirement_weights(Octant.II)  # scattered/high/comm
        w_comp = requirement_weights(Octant.IV)  # scattered/high/comp
        assert w_comm.comm > w_comm.load_imbalance
        assert w_comp.load_imbalance > w_comp.comm

    def test_dynamics_raises_migration_weight(self):
        high = requirement_weights(Octant.I)   # high dynamics
        low = requirement_weights(Octant.V)    # low dynamics
        assert high.migration > low.migration
        assert high.partition_time > low.partition_time


class TestDeriveRecommendations:
    def test_small_trace_derivation(self, small_rm3d_trace):
        derived = derive_recommendations(
            small_rm3d_trace, num_procs=8, max_snapshots_per_octant=3
        )
        assert derived, "at least one octant must be populated"
        for octant, ranking in derived.items():
            assert len(ranking) == 6
            assert len(set(ranking)) == 6

    def test_restricted_candidate_set(self, small_rm3d_trace):
        from repro.partitioners import GMISPSPPartitioner, PBDISPPartitioner

        derived = derive_recommendations(
            small_rm3d_trace,
            num_procs=8,
            max_snapshots_per_octant=2,
            partitioners={
                "G-MISP+SP": GMISPSPPartitioner(),
                "pBD-ISP": PBDISPPartitioner(),
            },
        )
        for ranking in derived.values():
            assert set(ranking) == {"G-MISP+SP", "pBD-ISP"}


class TestKBSerialization:
    def test_roundtrip_default_base(self):
        kb = default_policy_base()
        back = kb_from_json(kb_to_json(kb))
        assert len(back) == len(kb)
        for octant in Octant:
            assert back.merged_action({"octant": octant}) == kb.merged_action(
                {"octant": octant}
            )

    def test_roundtrip_fuzzy_rules(self):
        kb = PolicyKnowledgeBase()
        kb.add(
            Rule(
                name="fuzzy-load",
                condition=Condition(
                    exact={"octant": Octant.III},
                    fuzzy={"load": triangular("high", 0.4, 0.8, 1.2)},
                ),
                action={"partitioner": "SP-ISP"},
                priority=2.5,
            )
        )
        back = kb_from_json(kb_to_json(kb))
        rule = back.get("fuzzy-load")
        assert rule.priority == 2.5
        assert rule.condition.match({"octant": Octant.III, "load": 0.8}) == 1.0
        assert rule.condition.match({"octant": Octant.III, "load": 0.6}) == (
            pytest.approx(0.5)
        )

    def test_file_roundtrip(self, tmp_path):
        kb = default_policy_base()
        path = tmp_path / "kb.json"
        save_kb(kb, path)
        assert len(load_kb(path)) == len(kb)

    def test_hand_built_fuzzy_rejected(self):
        kb = PolicyKnowledgeBase()
        kb.add(
            Rule(
                name="opaque",
                condition=Condition(
                    fuzzy={"x": FuzzySet("opaque", lambda v: 0.5)}
                ),
                action={"y": 1},
            )
        )
        with pytest.raises(ValueError, match="cannot be serialized"):
            kb_to_json(kb)
