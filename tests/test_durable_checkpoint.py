"""Crash-consistent on-disk checkpoints (repro.resilience.durable)."""

import json

import pytest

from repro import obs
from repro.config import SimulatorOptions
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import FailureEvent, sp2_blue_horizon
from repro.partitioners import ISPPartitioner
from repro.resilience import (
    CheckpointStore,
    DurableCheckpointStore,
    FaultTolerance,
    corrupt_checkpoint,
)
from repro.resilience.durable import FORMAT_NAME


@pytest.fixture()
def store(tmp_path, small_hierarchy):
    st = DurableCheckpointStore(tmp_path, keep=3)
    for step in (4, 8, 12):
        st.save(step, float(step), small_hierarchy)
    return st


class TestDurableRoundTrip:
    def test_save_persists_and_restore_reads_disk(self, store, small_hierarchy):
        paths = store.record_paths()
        assert len(paths) == 3
        ck, seconds = store.restore()
        assert ck.step == 12
        assert seconds > 0.0
        assert ck.num_cells == small_hierarchy.total_cells
        # The restored hierarchy is rebuilt from bytes, not aliased.
        assert ck.hierarchy is not small_hierarchy
        assert ck.hierarchy.to_dict() == small_hierarchy.to_dict()

    def test_record_format_self_describes(self, store):
        newest = store.record_paths()[-1]
        head, _, payload = newest.read_bytes().partition(b"\n")
        header = json.loads(head)
        assert header["format"] == FORMAT_NAME
        assert header["step"] == 12
        assert header["payload_bytes"] == len(payload)

    def test_keep_prunes_oldest_records(self, tmp_path, small_hierarchy):
        st = DurableCheckpointStore(tmp_path, keep=2)
        for step in range(5):
            st.save(step, float(step), small_hierarchy)
        paths = st.record_paths()
        assert len(paths) == 2
        assert [DurableCheckpointStore.validate(p)[0].step for p in paths] \
            == [3, 4]

    def test_leftover_tmp_file_ignored(self, store, tmp_path):
        # A crash before the rename leaves only a .tmp — restore skips it.
        (tmp_path / "ckpt-000099-step000099.ckpt.tmp").write_bytes(b"garbage")
        assert len(store.record_paths()) == 3
        ck, _ = store.restore()
        assert ck.step == 12

    def test_in_memory_counters_match_base_store(self, store):
        assert store.saved == 3
        assert len(store) == 3          # bounded in-memory deque too
        store.restore()
        assert store.restored == 1


class TestCorruptionWalkback:
    def test_torn_newest_falls_back_one_interval(self, store):
        corrupt_checkpoint(store.record_paths()[-1], mode="torn")
        with obs.collect() as window:
            ck, _ = store.restore()
        assert ck.step == 8
        assert window.registry.counter_value(
            "resilience.checkpoint_corrupt", reason="torn"
        ) == 1

    def test_bitflip_caught_by_checksum(self, store):
        corrupt_checkpoint(store.record_paths()[-1], mode="bitflip", seed=1)
        with obs.collect() as window:
            ck, _ = store.restore()
        assert ck.step == 8
        assert window.registry.counter_value(
            "resilience.checkpoint_corrupt", reason="checksum"
        ) == 1

    def test_mangled_header_rejected(self, store):
        newest = store.record_paths()[-1]
        blob = newest.read_bytes()
        newest.write_bytes(b"not json" + blob[8:])
        with obs.collect() as window:
            ck, _ = store.restore()
        assert ck.step == 8
        assert window.registry.counter_value(
            "resilience.checkpoint_corrupt", reason="header"
        ) == 1

    def test_all_corrupt_raises(self, store):
        for path in store.record_paths():
            corrupt_checkpoint(path, mode="torn")
        with obs.collect() as window:
            with pytest.raises(RuntimeError, match="all corrupt"):
                store.restore()
        assert window.registry.sum_counters(
            "resilience.checkpoint_corrupt"
        ) == 3

    def test_validate_reports_reason_without_counting(self, store):
        path = store.record_paths()[0]
        assert DurableCheckpointStore.validate(path)[1] is None
        corrupt_checkpoint(path, mode="bitflip")
        ck, reason = DurableCheckpointStore.validate(path)
        assert ck is None
        assert reason == "checksum"

    def test_injector_rejects_unknown_mode(self, store):
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_checkpoint(store.record_paths()[0], mode="gamma-ray")

    def test_injector_is_deterministic(self, store):
        a, b = store.record_paths()[:2]
        before_a, before_b = a.read_bytes(), b.read_bytes()
        assert before_a.partition(b"\n")[2] == before_b.partition(b"\n")[2]
        corrupt_checkpoint(a, mode="bitflip", seed=9)
        corrupt_checkpoint(b, mode="bitflip", seed=9)
        assert a.read_bytes().partition(b"\n")[2] == \
            b.read_bytes().partition(b"\n")[2]


class TestSimulatorIntegration:
    def test_checkpoint_dir_persists_records_during_replay(
        self, tmp_path, small_rm3d_trace
    ):
        cluster = sp2_blue_horizon(8)
        cluster.failures.add(FailureEvent(1, 200.0, 260.0))
        ft = FaultTolerance(checkpoint_dir=str(tmp_path))
        res = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft)).run(
            small_rm3d_trace, StaticSelector(ISPPartitioner())
        )
        planned = small_rm3d_trace.meta["num_coarse_steps"]
        assert sum(r.coarse_steps for r in res.records) == planned
        assert res.num_recoveries >= 1
        paths = sorted(tmp_path.glob("*.ckpt"))
        assert paths                     # records written through the run
        for path in paths:
            ck, reason = DurableCheckpointStore.validate(path)
            assert reason is None
            assert ck.hierarchy is not None

    def test_no_checkpoint_dir_keeps_memory_store(self, small_rm3d_trace):
        cluster = sp2_blue_horizon(8)
        cluster.failures.add(FailureEvent(1, 200.0, 260.0))
        res = ExecutionSimulator(
            cluster, options=SimulatorOptions(fault_tolerance=FaultTolerance())
        ).run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert res.num_recoveries >= 1   # in-memory path unchanged

    def test_durable_equals_memory_store_timings(
        self, tmp_path, small_rm3d_trace
    ):
        """Durability is free in simulated seconds: same cost model."""

        def run(ft):
            cluster = sp2_blue_horizon(8)
            cluster.failures.add(FailureEvent(1, 200.0, 260.0))
            return ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft)).run(
                small_rm3d_trace, StaticSelector(ISPPartitioner())
            )

        mem = run(FaultTolerance())
        dur = run(FaultTolerance(checkpoint_dir=str(tmp_path)))
        assert dur.total_runtime == pytest.approx(mem.total_runtime)
        assert dur.total_checkpoint_time == pytest.approx(
            mem.total_checkpoint_time
        )


class TestDeepCopyOption:
    def test_durable_restore_immune_to_caller_mutation(
        self, tmp_path, small_hierarchy
    ):
        st = DurableCheckpointStore(tmp_path, keep=2, deep_copy=False)
        mutable = small_hierarchy.copy()
        st.save(0, 0.0, mutable)
        before = mutable.total_cells
        mutable.levels.pop()             # in-place regrid-style mutation
        ck, _ = st.restore()
        # Disk round-trip: state at save time, not post-mutation state.
        assert ck.hierarchy.total_cells == before

    def test_base_store_aliases_without_deep_copy(self, small_hierarchy):
        st = CheckpointStore(deep_copy=False)
        mutable = small_hierarchy.copy()
        st.save(0, 0.0, mutable)
        mutable.levels.pop()
        ck, _ = st.restore()
        assert ck.hierarchy is mutable   # the documented aliasing hazard
