"""Tests for the synthetic application drivers."""

import numpy as np
import pytest

from repro.amr.regrid import RegridPolicy
from repro.apps import (
    GalaxyConfig,
    GalaxyFormation,
    RM3D,
    RM3DConfig,
    Supernova,
    SupernovaConfig,
    generate_trace,
)
from repro.apps.fields import combine, gaussian_blob, planar_sheet, slab


class TestFields:
    def test_gaussian_blob_peak_location(self):
        # Cell centers sit at half-integer coordinates; center the blob on
        # the cell (8, 8, 8) exactly.
        f = gaussian_blob((16, 16, 16), (8.5, 8.5, 8.5), 2.0)
        assert f.max() == pytest.approx(1.0, abs=1e-9)
        assert np.unravel_index(f.argmax(), f.shape) == (8, 8, 8)

    def test_gaussian_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_blob((8, 8, 8), (4, 4, 4), 0.0)

    def test_planar_sheet_profile(self):
        f = planar_sheet((16, 8, 8), position=8.0, width=1.0)
        assert f[8, :, :].min() > 0.8
        assert f[0, :, :].max() < 1e-5

    def test_planar_sheet_outside_domain(self):
        f = planar_sheet((16, 8, 8), position=100.0, width=1.0)
        assert f.max() < 1e-9

    def test_slab(self):
        f = slab((32, 4, 4), lo=10, hi=20, edge=0.5)
        assert f[15, 0, 0] > 0.9
        assert f[2, 0, 0] < 0.05

    def test_slab_bad_bounds(self):
        with pytest.raises(ValueError):
            slab((8, 8, 8), lo=5, hi=5)

    def test_combine_clips(self):
        a = np.full((2, 2, 2), 0.8)
        b = np.full((2, 2, 2), 1.7)
        out = combine(a, b)
        assert (out == 1.0).all()

    def test_combine_empty(self):
        with pytest.raises(ValueError):
            combine()


class TestRM3D:
    def test_error_field_shape_and_range(self):
        app = RM3D()
        f = app.error_field(0)
        assert f.shape == (128, 32, 32)
        assert 0.0 <= f.min() and f.max() <= 1.0

    def test_deterministic(self):
        a, b = RM3D(), RM3D()
        assert np.array_equal(a.error_field(100), b.error_field(100))

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            RM3D().error_field(-4)

    def test_load_field_bounded(self):
        f = RM3D().load_field(40)
        assert f.min() >= 1.0 and f.max() <= 2.0

    def test_shock_moves(self):
        app = RM3D()
        cfg = app.config
        t0 = int(cfg.shock_entry_snapshot + 1) * cfg.regrid_interval
        f0 = app.error_field(t0)
        f1 = app.error_field(t0 + 2 * cfg.regrid_interval)
        # x-profile center of mass advances
        x0 = (f0.sum(axis=(1, 2)) * np.arange(128)).sum() / f0.sum()
        x1 = (f1.sum(axis=(1, 2)) * np.arange(128)).sum() / f1.sum()
        assert x1 > x0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RM3DConfig(shape=(4, 4, 4))
        with pytest.raises(ValueError):
            RM3DConfig(interface_x=500.0)
        with pytest.raises(ValueError):
            RM3DConfig(shock_speed=0.0)


class TestGalaxy:
    def test_collapse_concentrates(self):
        app = GalaxyFormation(GalaxyConfig(shape=(32, 32, 32), num_clumps=6,
                                           collapse_steps=100))
        early = app.error_field(0)
        late = app.error_field(100)
        # Refined (high error) region concentrates toward the barycenter.
        def spread(f):
            idx = np.argwhere(f > 0.4)
            return idx.std(axis=0).sum() if len(idx) else 0.0
        assert spread(late) < spread(early)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GalaxyConfig(num_clumps=1)


class TestSupernova:
    def test_shell_expands(self):
        app = Supernova(SupernovaConfig(shape=(32, 32, 32)))
        r0 = app._radius(10)
        r1 = app._radius(50)
        assert r1 > r0
        f = app.error_field(50)
        assert f.max() > 0.5

    def test_asymmetry_range(self):
        with pytest.raises(ValueError):
            SupernovaConfig(asymmetry=1.5)


class TestGenerateTrace:
    def test_snapshot_cadence(self, small_rm3d_trace):
        steps = small_rm3d_trace.steps()
        assert steps[0] == 0
        assert all(b - a == 4 for a, b in zip(steps, steps[1:]))
        assert len(small_rm3d_trace) == 40

    def test_meta_recorded(self, small_rm3d_trace):
        meta = small_rm3d_trace.meta
        assert meta["app"] == "rm3d"
        assert meta["regrid_interval"] == 4
        assert meta["num_coarse_steps"] == 160

    def test_all_snapshots_nested(self, small_rm3d_trace):
        for s in list(small_rm3d_trace)[::8]:
            assert s.hierarchy.is_properly_nested()

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            generate_trace(RM3D(), RegridPolicy(), 0)
