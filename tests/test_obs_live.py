"""The live telemetry plane: exposition, snapshots, SLOs, flight recorder.

Unit coverage for :mod:`repro.obs.live` (Prometheus text rendering with
escaping and histogram buckets, the periodic JSONL snapshot exporter,
multi-window SLO burn-rate alerting, the bounded flight recorder, the
``repro top`` frame renderer) plus the sliding-window mode added to
:class:`repro.obs.metrics.Histogram`.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.config import LiveObsOptions
from repro.obs.live import (
    NULL_FLIGHT,
    FlightRecorder,
    HealthStatus,
    SloTracker,
    SnapshotExporter,
    escape_label_value,
    prometheus_name,
    render_dashboard,
    render_prometheus,
)
from repro.obs.metrics import Histogram, MetricsRegistry

# -- Prometheus exposition -----------------------------------------------------


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_gets_total_suffix_and_type_line(self):
        reg = MetricsRegistry()
        reg.counter("serve.submitted", priority="high").inc(3)
        text = render_prometheus(reg)
        assert "# TYPE serve_submitted_total counter" in text
        assert 'serve_submitted_total{priority="high"} 3' in text

    def test_gauge_and_sorted_label_sets(self):
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth").set(7)
        reg.counter("a.z", lane="b").inc()
        reg.counter("a.z", lane="a").inc()
        text = render_prometheus(reg)
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 7" in text
        # label sets under one name render sorted
        assert text.index('a_z_total{lane="a"}') < text.index(
            'a_z_total{lane="b"}'
        )

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", reason='quo"te\\back\nline').inc()
        text = render_prometheus(reg)
        assert 'reason="quo\\"te\\\\back\\nline"' in text

    def test_histogram_buckets_cumulative_and_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.5, 1.5, 120.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert "# TYPE lat histogram" in text
        inf_lines = [
            ln for ln in text.splitlines() if 'le="+Inf"' in ln
        ]
        assert len(inf_lines) == 1
        assert inf_lines[0].endswith(" 3")
        assert "lat_count 3" in text
        assert "lat_sum 122" in text
        # bucket counts are cumulative (monotonically nondecreasing)
        counts = [
            int(ln.rsplit(" ", 1)[1])
            for ln in text.splitlines() if ln.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)

    def test_every_line_parses_as_exposition(self):
        reg = MetricsRegistry()
        reg.counter("serve.shed", reason="queue-full").inc(2)
        reg.gauge("up").set(1)
        reg.histogram("h", priority="low").observe(0.25)
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" (NaN|[+-]?Inf|[-+0-9.e]+)$"
        )
        for ln in render_prometheus(reg).splitlines():
            if ln.startswith("#"):
                assert re.match(r"^# TYPE \S+ (counter|gauge|histogram)$", ln)
            else:
                assert line_re.match(ln), ln

    def test_name_sanitization(self):
        assert prometheus_name("serve.dedup_hits") == "serve_dedup_hits"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"
        assert escape_label_value('a"b') == 'a\\"b'


# -- sliding-window histogram --------------------------------------------------


class TestWindowedHistogram:
    def test_cumulative_default_unchanged(self):
        h = Histogram("h")
        for v in range(1, 11):
            h.observe(float(v))
        assert h.window is None
        assert h.recent() == []
        assert h.count == 10
        assert h.summary()["count"] == 10

    def test_window_keeps_last_n_and_exact_quantiles(self):
        h = Histogram("h", window=4)
        for v in (100.0, 1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # the early outlier fell out of the ring ...
        assert h.recent() == [1.0, 2.0, 3.0, 4.0]
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        s = h.summary()
        assert s["count"] == 4
        assert s["max"] == 4.0
        # ... but the cumulative lifetime totals still remember it
        assert s["lifetime_count"] == 5
        assert h.count == 5
        assert h.total == 110.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", 0)

    def test_registry_window_set_at_creation(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("h", 8, lane="x")
        h2 = reg.histogram("h", lane="x")  # same instrument, window kept
        assert h1 is h2
        assert h2.window == 8


# -- snapshot exporter ---------------------------------------------------------


class TestSnapshotExporter:
    def test_snapshot_appends_jsonl_and_uptime_monotonic(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("serve.submitted").inc(2)
        now = [100.0]
        path = tmp_path / "telemetry.jsonl"
        exp = SnapshotExporter(reg, path, interval_s=60.0,
                               clock=lambda: now[0])
        exp.snapshot_once()
        now[0] = 103.5
        exp.snapshot_once()
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["uptime_seconds"] == 0.0
        assert records[1]["uptime_seconds"] == 3.5
        assert (records[1]["metrics"]["counters"]["serve.submitted"][0]
                ["value"] == 2)
        # the uptime gauge is refreshed into the registry for scrapes
        assert reg.gauge("serve.uptime_seconds").value == 3.5
        assert exp.snapshots_written == 2

    def test_extra_merged_and_exceptions_swallowed(self, tmp_path):
        reg = MetricsRegistry()
        path = tmp_path / "t.jsonl"
        exp = SnapshotExporter(reg, path, extra=lambda: {"stats": {"ok": 1}})
        rec = exp.snapshot_once()
        assert rec["stats"] == {"ok": 1}

        def _boom():
            raise RuntimeError("no")

        exp.extra = _boom
        exp.snapshot_once()  # must not raise
        assert len(path.read_text().splitlines()) == 2

    def test_stop_flushes_final_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        path = tmp_path / "t.jsonl"
        exp = SnapshotExporter(reg, path, interval_s=3600.0)
        exp.start()
        exp.stop()
        assert exp.snapshots_written == 1
        assert len(path.read_text().splitlines()) == 1

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotExporter(MetricsRegistry(), tmp_path / "t", interval_s=0)


# -- SLO tracker ---------------------------------------------------------------


def _tracker(**kw):
    kw.setdefault("latency_target_s", 1.0)
    kw.setdefault("latency_budget", 0.1)
    kw.setdefault("shed_budget", 0.1)
    kw.setdefault("short_window", 4)
    kw.setdefault("long_window", 8)
    kw.setdefault("burn_threshold", 2.0)
    return SloTracker(**kw)


class TestSloTracker:
    def test_no_traffic_no_alerts(self):
        t = _tracker()
        assert t.alerts() == []
        summary = t.summary()
        assert summary["objectives"]["latency_target_s"] == 1.0
        assert all(not lane["latency_alerting"]
                   for lane in summary["lanes"].values())

    def test_sustained_latency_burn_alerts(self):
        t = _tracker()
        # 50% of requests violate a 10% budget -> burn 5x in both windows
        for k in range(16):
            t.record_latency("normal", 2.0 if k % 2 else 0.1)
        alerts = t.alerts()
        assert [a.series for a in alerts] == ["slo.normal.latency"]
        assert alerts[0].value == pytest.approx(5.0)
        assert alerts[0].mean == pytest.approx(5.0)
        assert alerts[0].zscore == pytest.approx(2.5)
        assert t.summary()["lanes"]["normal"]["latency_alerting"]

    def test_brief_spike_absorbed_by_long_window(self):
        t = _tracker()
        # a long healthy history, then one violation: enough to burn the
        # short window (1/4 over a 10% budget = 2.5x) but not the long
        # one (1/8 = 1.25x)
        for _ in range(8):
            t.record_latency("high", 0.1)
        t.record_latency("high", 5.0)
        lanes = t.summary()["lanes"]["high"]
        assert lanes["latency_burn_short"] >= 2.0
        assert lanes["latency_burn_long"] < 2.0
        assert not lanes["latency_alerting"]
        assert t.alerts() == []

    def test_shed_burn_tracked_separately(self):
        t = _tracker()
        for _ in range(8):
            t.record_admission("low", shed=True)
        alerts = t.alerts()
        assert [a.series for a in alerts] == ["slo.low.shed"]
        assert t.summary()["lanes"]["low"]["sheds"] == 8

    def test_unknown_lane_materializes(self):
        t = _tracker()
        t.record_latency("bulk", 0.2)
        assert "bulk" in t.summary()["lanes"]

    @pytest.mark.parametrize("kw", [
        {"latency_target_s": 0},
        {"latency_budget": 0.0},
        {"latency_budget": 1.0},
        {"shed_budget": 1.5},
        {"short_window": 0},
        {"short_window": 9},  # > long_window
        {"burn_threshold": 0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            _tracker(**kw)


# -- flight recorder -----------------------------------------------------------


class TestFlightRecorder:
    def test_ring_evicts_oldest(self):
        fr = FlightRecorder(capacity=3)
        for k in range(5):
            fr.record("queued", float(k), job=f"job-{k}")
        assert len(fr) == 3
        assert [e["job"] for e in fr.tail()] == ["job-2", "job-3", "job-4"]
        assert fr.recorded == 5

    def test_tail_bounds(self):
        fr = FlightRecorder(capacity=8)
        for k in range(4):
            fr.record("e", float(k))
        assert len(fr.tail(2)) == 2
        assert fr.tail(0) == []
        assert len(fr.tail(99)) == 4

    def test_dump_writes_header_then_events(self, tmp_path):
        fr = FlightRecorder(capacity=2)
        for k in range(3):
            fr.record("shed", float(k), reason="queue-full")
        path = tmp_path / "flight.jsonl"
        assert fr.dump(path) == 2
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["kind"] == "flight-recorder"
        assert lines[0]["capacity"] == 2
        assert lines[0]["recorded"] == 3
        assert lines[0]["dumped"] == 2
        assert [ln["kind"] for ln in lines[1:]] == ["shed", "shed"]

    def test_null_recorder_is_inert(self, tmp_path):
        NULL_FLIGHT.record("x", 0.0)
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.tail() == []
        assert NULL_FLIGHT.dump(tmp_path / "nope.jsonl") == 0
        assert not (tmp_path / "nope.jsonl").exists()
        assert not NULL_FLIGHT.enabled

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# -- config --------------------------------------------------------------------


class TestLiveObsOptions:
    def test_disabled_default_builds_null_flight(self):
        opts = LiveObsOptions()
        assert not opts.enabled
        assert opts.build_flight_recorder() is NULL_FLIGHT

    def test_enabled_builds_real_components(self):
        opts = LiveObsOptions(enabled=True, flight_capacity=7,
                              slo_burn_threshold=3.0)
        fr = opts.build_flight_recorder()
        assert isinstance(fr, FlightRecorder)
        assert fr.capacity == 7
        assert opts.build_slo_tracker().burn_threshold == 3.0

    @pytest.mark.parametrize("kw", [
        {"snapshot_interval_s": 0},
        {"flight_capacity": 0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            LiveObsOptions(**kw)


# -- dashboard rendering -------------------------------------------------------


def _snapshot(**over):
    snap = {
        "op": "stats-tick",
        "uptime_seconds": 12.5,
        "stats": {
            "counters": {"submitted": 10, "completed": 7, "shed": 1,
                         "dedup_hits": 2, "cache_hits": 1},
            "queue_depth": 3,
            "queue_capacity": 8,
            "queue_by_priority": {"high": 1, "normal": 2, "low": 0},
            "inflight": 2,
        },
        "health": {"live": True, "ready": True,
                   "checks": {"workers": 2, "workers_alive": 2}},
        "latency": {"normal": {"count": 7, "p50": 0.01, "p95": 0.05,
                               "p99": 0.09}},
        "slo": {"lanes": {"normal": {
            "latency_burn_short": 0.5, "latency_burn_long": 0.4,
            "shed_burn_short": 2.5, "shed_burn_long": 2.5,
            "latency_alerting": False, "shed_alerting": True,
        }}},
        "flight_tail": [{"kind": "queued", "t": 1.25, "job": "job-1",
                         "scenario": "srv-quick", "priority": "normal"}],
    }
    snap.update(over)
    return snap


class TestRenderDashboard:
    def test_frame_carries_the_load_bearing_numbers(self):
        frame = render_dashboard(_snapshot())
        assert "READY" in frame
        assert "queue    3/8" in frame
        assert "submitted 10" in frame
        assert "dedup 2 (20%)" in frame
        assert "normal" in frame and "0.050" in frame  # p95
        assert "job-1" in frame
        # the alerting shed lane is flagged
        assert any(ln.strip().startswith("!") for ln in frame.splitlines())

    def test_throughput_delta_from_previous_frame(self):
        prev = _snapshot(uptime_seconds=10.0)
        prev["stats"] = dict(prev["stats"])
        prev["stats"]["counters"] = {"completed": 2}
        frame = render_dashboard(_snapshot(), previous=prev)
        assert "2.00 jobs/s" in frame  # (7-2)/(12.5-10.0)

    def test_minimal_snapshot_renders(self):
        frame = render_dashboard({"stats": {}, "health": {}})
        assert "repro top" in frame

    def test_health_status_to_dict(self):
        doc = HealthStatus(live=True, ready=False,
                           checks={"queue_depth": 4}).to_dict()
        assert doc == {"live": True, "ready": False,
                       "checks": {"queue_depth": 4}}
