"""Round-trip tests for the JSON / JSONL exporters."""

from __future__ import annotations

import io
import json

from repro.obs.export import export_json, export_jsonl, observability_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("mc.sends").inc(3)
    reg.counter("mc.dead_letters", reason="timeout").inc()
    reg.gauge("mc.mailbox_hwm", port="adm").set_max(7)
    h = reg.histogram("execsim.phase_seconds", phase="compute")
    for v in (0.5, 1.0, 2.0, 4.0):
        h.observe(v)
    return reg


class TestSnapshotExportRoundTrip:
    def test_empty_registry_round_trips(self, tmp_path):
        doc = observability_snapshot(MetricsRegistry())
        path = tmp_path / "empty.json"
        export_json(doc, path)
        assert json.loads(path.read_text()) == doc

    def test_labeled_instruments_round_trip(self, tmp_path):
        doc = observability_snapshot(_populated_registry())
        path = tmp_path / "snap.json"
        export_json(doc, path)
        back = json.loads(path.read_text())
        assert back == doc
        flat = json.dumps(back)
        assert "mc.sends" in flat
        assert "execsim.phase_seconds" in flat

    def test_stream_and_path_targets_agree(self, tmp_path):
        doc = observability_snapshot(_populated_registry())
        buf = io.StringIO()
        export_json(doc, buf)
        path = tmp_path / "snap.json"
        export_json(doc, path)
        assert buf.getvalue() == path.read_text()
        assert buf.getvalue().endswith("\n")

    def test_export_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "snap.json"
        export_json({"k": 1}, path)
        assert json.loads(path.read_text()) == {"k": 1}

    def test_snapshot_with_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        doc = observability_snapshot(
            _populated_registry(), tracer, spans=True
        )
        assert doc["trace"]["counts_by_path"]["outer/inner"] == 1
        assert len(doc["trace"]["spans"]) == 2
        json.dumps(doc)

    def test_snapshot_without_spans_keeps_aggregates_only(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        doc = observability_snapshot(_populated_registry(), tracer)
        assert "spans" not in doc["trace"]
        assert "s" in doc["trace"]["totals_by_path"]


class TestJsonlExport:
    def test_appends_one_compact_line_per_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        export_jsonl({"run": 1, "ok": True}, path)
        export_jsonl({"run": 2, "ok": False}, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["run"] for line in lines] == [1, 2]
        assert "\n" not in lines[0]

    def test_jsonl_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "runs.jsonl"
        export_jsonl({"run": 1}, path)
        assert json.loads(path.read_text())["run"] == 1
