"""Tests for space-filling curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sfc import (
    curve_order,
    curve_rank_of_cells,
    hilbert_decode,
    hilbert_key,
    morton_decode,
    morton_key,
)


def full_grid(n):
    x, y, z = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    return x.ravel(), y.ravel(), z.ravel()


class TestMorton:
    def test_roundtrip_random(self):
        rng = np.random.default_rng(1)
        x, y, z = (rng.integers(0, 64, 500) for _ in range(3))
        k = morton_key(x, y, z, 6)
        xx, yy, zz = morton_decode(k, 6)
        assert (x == xx).all() and (y == yy).all() and (z == zz).all()

    def test_bijective_on_grid(self):
        x, y, z = full_grid(8)
        k = morton_key(x, y, z, 3)
        assert len(np.unique(k)) == 512
        assert k.min() == 0 and k.max() == 511

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_key(np.array([8]), np.array([0]), np.array([0]), 3)

    def test_known_values(self):
        # (1,0,0) with x most significant -> bit 2
        assert morton_key(np.array([1]), np.array([0]), np.array([0]), 1)[0] == 4
        assert morton_key(np.array([0]), np.array([1]), np.array([0]), 1)[0] == 2
        assert morton_key(np.array([0]), np.array([0]), np.array([1]), 1)[0] == 1


class TestHilbert:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6))
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        n = 1 << bits
        x, y, z = (rng.integers(0, n, 200) for _ in range(3))
        k = hilbert_key(x, y, z, bits)
        xx, yy, zz = hilbert_decode(k, bits)
        assert (x == xx).all() and (y == yy).all() and (z == zz).all()

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_bijective(self, bits):
        n = 1 << bits
        x, y, z = full_grid(n)
        k = hilbert_key(x, y, z, bits)
        assert len(np.unique(k)) == n**3

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_continuity(self, bits):
        """Consecutive Hilbert indices are face neighbors — the locality
        property every ISP partitioner relies on."""
        n = 1 << bits
        x, y, z = full_grid(n)
        k = hilbert_key(x, y, z, bits)
        order = np.argsort(k)
        pts = np.stack([x, y, z], axis=1)[order]
        dist = np.abs(np.diff(pts, axis=0)).sum(axis=1)
        assert (dist == 1).all()

    def test_scalar_inputs(self):
        k = hilbert_key(np.int64(3), np.int64(1), np.int64(2), 3)
        xx, yy, zz = hilbert_decode(k, 3)
        assert (int(xx), int(yy), int(zz)) == (3, 1, 2)


class TestLinearize:
    def test_curve_order_is_permutation(self):
        for curve in ("morton", "hilbert"):
            order = curve_order((4, 2, 3), curve)
            assert sorted(order.tolist()) == list(range(24))

    def test_rank_inverse(self):
        order = curve_order((4, 4, 4))
        rank = curve_rank_of_cells((4, 4, 4))
        assert (order[rank] == np.arange(64)).all()

    def test_non_cubic_shapes(self):
        order = curve_order((8, 2, 5), "hilbert")
        assert len(order) == 80

    def test_unknown_curve(self):
        with pytest.raises(ValueError):
            curve_order((4, 4, 4), "peano")

    def test_hilbert_locality_beats_c_order(self):
        """Mean jump distance along the Hilbert curve is far below raveled
        C order for a cube."""
        shape = (8, 8, 8)
        order = curve_order(shape, "hilbert")
        coords = np.stack(np.unravel_index(order, shape), axis=1)
        hilbert_jump = np.abs(np.diff(coords, axis=0)).sum(axis=1).mean()
        c_coords = np.stack(np.unravel_index(np.arange(512), shape), axis=1)
        c_jump = np.abs(np.diff(c_coords, axis=0)).sum(axis=1).mean()
        assert hilbert_jump < c_jump
