"""Frozen scalar reference of the execsim communication-cost kernel.

Verbatim copy of :func:`repro.execsim.costmodel.comm_cost_terms_scalar`
at the moment the vectorized kernel landed.  THE FREEZE RULE applies
(see this package's ``__init__``): never edit to make a differential
pass.
"""

from __future__ import annotations

import numpy as np

_OTHER_AXES = ((1, 2), (0, 2), (0, 1))


def comm_cost_terms(
    i: np.ndarray,
    j: np.ndarray,
    axis: np.ndarray,
    assignment: np.ndarray,
    shapes: np.ndarray,
    loads: np.ndarray,
    num_procs: int,
    ghost_width: float,
    bytes_per_comm_unit: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    comm_bytes = np.zeros(num_procs)
    neighbor_count = np.zeros(num_procs)
    n = int(len(i))
    cut_bytes: list[float] = []
    cut_oi: list[int] = []
    cut_oj: list[int] = []
    face_sum = 0.0
    pairs: set[tuple[int, int]] = set()
    for k in range(n):
        ui = int(i[k])
        uj = int(j[k])
        oi = int(assignment[ui])
        oj = int(assignment[uj])
        if oi == oj:
            continue
        o1, o2 = _OTHER_AXES[int(axis[k])]
        a = min(int(shapes[ui, o1]), int(shapes[uj, o1]))
        b = min(int(shapes[ui, o2]), int(shapes[uj, o2]))
        face = float(a * b)
        cells_i = float(
            int(shapes[ui, 0]) * int(shapes[ui, 1]) * int(shapes[ui, 2])
        )
        cells_j = float(
            int(shapes[uj, 0]) * int(shapes[uj, 1]) * int(shapes[uj, 2])
        )
        di = float(loads[ui]) / max(cells_i, 1.0)
        dj = float(loads[uj]) / max(cells_j, 1.0)
        vol = face * 0.5 * (di + dj) * ghost_width
        cut_bytes.append(vol * bytes_per_comm_unit)
        cut_oi.append(oi)
        cut_oj.append(oj)
        face_sum += face
        pairs.add((min(oi, oj), max(oi, oj)))
    for k, b in enumerate(cut_bytes):
        comm_bytes[cut_oi[k]] += b
    for k, b in enumerate(cut_bytes):
        comm_bytes[cut_oj[k]] += b
    for p, q in pairs:
        neighbor_count[p] += 1.0
        neighbor_count[q] += 1.0
    ghost_work = face_sum * ghost_width if cut_bytes else 0.0
    return comm_bytes, neighbor_count, ghost_work
