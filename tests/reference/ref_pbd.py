"""Frozen scalar pBD-ISP dissection reference (see package docstring).

Verbatim cut chooser + recursion of ``repro/partitioners/pbd_isp.py`` at
kernel introduction, including the per-side slice-window clamp.
"""

from __future__ import annotations

import numpy as np


def choose_bisection_cut(cube, nprocs):
    p1 = nprocs // 2
    frac = p1 / nprocs
    ncells = cube.size
    total = float(cube.sum())
    best = None  # (error, axis, cut)
    for axis in range(3):
        length = cube.shape[axis]
        if length < 2:
            continue
        slab = ncells // length
        cmin, cmax = 1, length - 1
        if ncells >= nprocs:
            cmin = max(cmin, -(-p1 // slab))
            cmax = min(cmax, length - (-(-(nprocs - p1) // slab)))
            if cmin > cmax:
                continue
        other = tuple(a for a in range(3) if a != axis)
        cums = np.cumsum(cube.sum(axis=other))
        if total <= 0:
            cut = min(max(int(round(length * frac)), cmin), cmax)
            err = 0.0
        else:
            target = frac * total
            idx = int(np.searchsorted(cums, target))
            candidates = [c for c in (idx, idx + 1) if cmin <= c <= cmax]
            if not candidates:
                candidates = [min(max(idx, cmin), cmax)]
            cut = min(candidates, key=lambda c: abs(float(cums[c - 1]) - target))
            err = abs(float(cums[cut - 1]) - target)
        if best is None or err < best[0]:
            best = (err, axis, cut)
    if best is None:
        length = max(cube.shape)
        if length < 2:
            return None
        axis = cube.shape.index(length)
        cut = length // 2
        lo_cells = cut * (ncells // length)
        p1 = int(round(nprocs * lo_cells / ncells))
        p1 = min(
            max(p1, max(1, nprocs - (ncells - lo_cells))),
            min(nprocs - 1, lo_cells),
        )
        return axis, cut, p1
    return best[1], best[2], p1


def _bisect(cube, owners, proc_lo, proc_hi):
    nprocs = proc_hi - proc_lo
    if nprocs <= 1:
        owners[...] = proc_lo
        return
    plan = choose_bisection_cut(cube, nprocs)
    if plan is None:
        owners[...] = proc_lo
        return
    axis, cut, p1 = plan
    sl_lo = [slice(None)] * 3
    sl_hi = [slice(None)] * 3
    sl_lo[axis] = slice(0, cut)
    sl_hi[axis] = slice(cut, cube.shape[axis])
    _bisect(cube[tuple(sl_lo)], owners[tuple(sl_lo)], proc_lo, proc_lo + p1)
    _bisect(cube[tuple(sl_hi)], owners[tuple(sl_hi)], proc_lo + p1, proc_hi)


def pbd_partition_cube(cube, num_procs):
    owners = np.zeros(cube.shape, dtype=int)
    _bisect(cube, owners, proc_lo=0, proc_hi=num_procs)
    return owners
