"""Frozen scalar composite-load-map reference (see package docstring).

Verbatim scalar accumulation loop of ``composite_load_map`` in
``repro/amr/workload.py`` at kernel introduction.  Operates on any
duck-typed hierarchy (``levels``, ``cumulative_ratio``, boxes with
``slices``/``coarsen``/``intersection``); returns the raw values array.
"""

from __future__ import annotations

import numpy as np


def _axis_overlap(flo, fhi, clo, chi, ratio):
    n = chi - clo
    idx = np.arange(clo, chi)
    starts = np.maximum(idx * ratio, flo)
    ends = np.minimum((idx + 1) * ratio, fhi)
    return np.maximum(ends - starts, 0).astype(np.int64).reshape(n)


def composite_values(hierarchy):
    domain = hierarchy.domain
    values = np.zeros(domain.shape, dtype=float)

    for lvl in hierarchy.levels:
        ratio = hierarchy.cumulative_ratio(lvl.index)
        subcycles = ratio
        for patch in lvl:
            weight = patch.load_per_cell * subcycles
            if ratio == 1:
                sl = patch.box.slices(domain.lo)
                values[sl] += weight
                continue
            coarse = patch.box.coarsen(ratio)
            counts = [
                _axis_overlap(patch.box.lo[a], patch.box.hi[a], coarse.lo[a],
                              coarse.hi[a], ratio)
                for a in range(3)
            ]
            block = (
                counts[0][:, None, None]
                * counts[1][None, :, None]
                * counts[2][None, None, :]
            ).astype(float)
            clipped = coarse.intersection(domain)
            if clipped is None:
                continue
            bsl = clipped.slices(coarse.lo)
            values[clipped.slices(domain.lo)] += weight * block[bsl]
    return values
