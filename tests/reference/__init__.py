"""Frozen scalar reference implementations (the differential oracle).

These modules are verbatim copies of the scalar halves of every kernel
pair, taken at the moment the vectorized kernels landed.  THE FREEZE
RULE: do not edit these files to make a failing differential test pass —
they define the semantics both backends must reproduce bit-for-bit.
They may only change when the *intended* algorithm changes, in the same
commit as the matching scalar + vector updates and a regression test.

The modules are dependency-free (numpy plus duck-typed hierarchy/box
objects) so they cannot drift along with the production code.
"""
