"""Frozen scalar G-MISP segmentation reference (see package docstring).

Verbatim scalar path of ``variable_grain_segments`` in
``repro/partitioners/gmisp.py`` at kernel introduction, including the
minimum-segment forced splitting.
"""

from __future__ import annotations

import numpy as np


def variable_grain_segments(loads, num_procs, coarse, split_factor):
    loads = np.asarray(loads, dtype=float)
    n = loads.size
    total = loads.sum()
    threshold = split_factor * total / num_procs if total > 0 else np.inf
    prefix = np.concatenate([[0.0], np.cumsum(loads)])

    seg_bounds = []

    def emit(lo, hi):
        load = prefix[hi] - prefix[lo]
        if load > threshold and hi - lo > 1:
            mid = (lo + hi) // 2
            emit(lo, mid)
            emit(mid, hi)
        else:
            seg_bounds.append(lo)

    for start in range(0, n, coarse):
        emit(start, min(start + coarse, n))

    want = min(num_procs, n)
    cuts = list(seg_bounds) + [n]
    while len(cuts) - 1 < want:
        best = -1
        best_load = -1.0
        for k in range(len(cuts) - 1):
            if cuts[k + 1] - cuts[k] > 1:
                load = float(prefix[cuts[k + 1]] - prefix[cuts[k]])
                if load > best_load:
                    best = k
                    best_load = load
        cuts.insert(best + 1, (cuts[best] + cuts[best + 1]) // 2)

    bounds = np.asarray(cuts[:-1], dtype=int)
    seg_of_unit = np.zeros(n, dtype=int)
    seg_of_unit[bounds[1:]] = 1
    return np.cumsum(seg_of_unit)
