"""Frozen scalar sequence-partitioning reference (see package docstring).

Verbatim scalar paths of ``repro/partitioners/sequence.py`` at kernel
introduction, including the greedy reserve clause, the weighted
advance-before-assign, and the feasibility trailing-empty redistribution.
"""

from __future__ import annotations

import numpy as np


def check_inputs(loads, p):
    loads = np.asarray(loads, dtype=float)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads must be a non-empty 1-D array")
    if (loads < 0).any():
        raise ValueError("loads must be non-negative")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return loads


def boundaries_to_assignment(boundaries, n, p):
    owners = np.empty(n, dtype=int)
    for k in range(p):
        owners[boundaries[k] : boundaries[k + 1]] = k
    return owners


def greedy_sequence_partition(loads, p):
    loads = check_inputs(loads, p)
    n = loads.size
    total = loads.sum()
    owners = np.empty(n, dtype=int)
    target = total / p
    acc = 0.0
    seg = 0
    for i in range(n):
        owners[i] = seg
        acc += loads[i]
        if seg < p - 1 and (acc >= target * (seg + 1) or n - 1 - i <= p - 1 - seg):
            seg += 1
    return owners


def feasible(prefix, p, bottleneck):
    n = prefix.size - 1
    boundaries = [0]
    start = 0
    for _ in range(p):
        if start == n:
            break
        limit = prefix[start] + bottleneck
        end = int(np.searchsorted(prefix, limit, side="right")) - 1
        if end <= start:
            return None
        boundaries.append(end)
        start = end
    if start < n:
        return None
    while len(boundaries) < p + 1:
        boundaries.append(n)
    out = np.asarray(boundaries, dtype=int)
    if n >= p:
        out = np.minimum(out, n - p + np.arange(p + 1))
    return out


def optimal_sequence_partition(loads, p, *, tol=1e-9):
    loads = check_inputs(loads, p)
    n = loads.size
    prefix = np.concatenate([[0.0], np.cumsum(loads)])
    total = prefix[-1]
    if p == 1 or total == 0.0:
        return np.zeros(n, dtype=int) if p == 1 else greedy_sequence_partition(loads, p)

    lo = max(loads.max(), total / p)
    hi = total
    best = feasible(prefix, p, hi)
    if best is None:
        raise AssertionError("full-range bottleneck must be feasible")
    eps = max(tol * total, 1e-15)
    while hi - lo > eps:
        mid = 0.5 * (lo + hi)
        b = feasible(prefix, p, mid)
        if b is None:
            lo = mid
        else:
            hi = mid
            best = b
    return boundaries_to_assignment(best, n, p)


def weighted_sequence_partition(loads, p, capacities):
    loads = check_inputs(loads, p)
    capacities = np.asarray(capacities, dtype=float)
    if capacities.shape != (p,):
        raise ValueError(f"capacities shape {capacities.shape}, expected ({p},)")
    if (capacities < 0).any() or capacities.sum() <= 0:
        raise ValueError("capacities must be non-negative with positive sum")
    n = loads.size
    total = loads.sum()
    if total == 0.0:
        return (np.arange(n) * p // max(n, 1)).astype(int)
    prefix = np.cumsum(loads)
    cum_target = np.cumsum(capacities) / capacities.sum() * total
    owners = np.empty(n, dtype=int)
    seg = 0
    prev = 0.0
    for i in range(n):
        while seg < p - 1 and prev >= cum_target[seg]:
            seg += 1
        owners[i] = seg
        prev = prefix[i]
    return owners
