"""Tests for the characterization agent and the online adaptive runtime."""

import pytest

from repro.agents import CharacterizationAgent, MessageCenter
from repro.amr.box import Box
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import RegridPolicy
from repro.apps import RM3D, RM3DConfig
from repro.core import OnlineAdaptiveRuntime
from repro.gridsys import sp2_blue_horizon


def _hierarchy(lo, hi, domain=(32, 16, 16)):
    dom = Box.from_shape(domain)
    base = Level(index=0, ratio=1)
    base.add(Patch(box=dom, level=0, patch_id=0))
    fine = Level(index=1, ratio=2)
    fine.add(Patch(box=Box(lo, hi).refine(2), level=1, patch_id=1))
    return GridHierarchy(domain=dom, levels=[base, fine])


class TestCharacterizationAgent:
    def _agent(self):
        mc = MessageCenter()
        mc.register("listener")
        for topic in ("app-state", "octant-transition", "load-threshold"):
            mc.subscribe("listener", topic)
        return mc, CharacterizationAgent(mc)

    def test_every_observation_publishes_state(self):
        mc, agent = self._agent()
        agent.observe(0, _hierarchy((4, 4, 4), (10, 10, 10)))
        msgs = mc.drain("listener")
        assert [m.topic for m in msgs] == ["app-state"]
        assert agent.current_octant is not None

    def test_transition_event_on_octant_change(self):
        mc, agent = self._agent()
        agent.observe(0, _hierarchy((4, 4, 4), (10, 10, 10)))
        mc.drain("listener")
        # Move the refined region across the domain -> dynamics flips high.
        agent.observe(4, _hierarchy((20, 4, 4), (26, 10, 10)))
        topics = {m.topic for m in mc.drain("listener")}
        assert "octant-transition" in topics

    def test_load_threshold_event(self):
        mc, agent = self._agent()
        agent.observe(0, _hierarchy((4, 4, 4), (8, 8, 8)))
        mc.drain("listener")
        # Much larger refined region -> load jumps far beyond 25%.
        agent.observe(4, _hierarchy((2, 2, 2), (30, 14, 14)))
        topics = {m.topic for m in mc.drain("listener")}
        assert "load-threshold" in topics

    def test_no_spurious_events_when_static(self):
        mc, agent = self._agent()
        h = _hierarchy((4, 4, 4), (10, 10, 10))
        agent.observe(0, h)
        mc.drain("listener")
        agent.observe(4, h.copy())
        topics = [m.topic for m in mc.drain("listener")]
        assert topics == ["app-state"]

    def test_history_recorded(self):
        _, agent = self._agent()
        agent.observe(0, _hierarchy((4, 4, 4), (10, 10, 10)))
        agent.observe(4, _hierarchy((20, 4, 4), (26, 10, 10)))
        assert len(agent.history) >= 2
        assert agent.history[0].topic == "app-state"

    def test_validation(self):
        mc = MessageCenter()
        with pytest.raises(ValueError):
            CharacterizationAgent(mc, load_jump_fraction=0.0)


class TestOnlineAdaptiveRuntime:
    def _app_and_policy(self):
        cfg = RM3DConfig(
            shape=(64, 16, 16), interface_x=20.0, shock_entry_snapshot=6.0,
            reshock_snapshot=30.0, num_seed_clumps=5,
            num_mixing_structures=10,
        )
        return RM3D(cfg), RegridPolicy(thresholds=(0.2, 0.45, 0.7),
                                       regrid_interval=4)

    def test_run_completes_and_accounts_all_steps(self):
        app, policy = self._app_and_policy()
        runtime = OnlineAdaptiveRuntime(sp2_blue_horizon(8))
        report = runtime.run(app, policy, 80)
        assert report.regrids == 20
        steps = sum(r.coarse_steps for r in report.result.records)
        assert steps == 80
        assert report.result.total_runtime > 0

    def test_event_driven_repartitions_less(self):
        app, policy = self._app_and_policy()
        runtime = OnlineAdaptiveRuntime(
            sp2_blue_horizon(8), imbalance_trigger_pct=80.0
        )
        ev = runtime.run(app, policy, 80)
        al = runtime.run(app, policy, 80, always_repartition=True)
        assert ev.repartitions < al.repartitions
        assert al.repartition_fraction == 1.0

    def test_carried_forward_has_no_partition_cost(self):
        app, policy = self._app_and_policy()
        runtime = OnlineAdaptiveRuntime(
            sp2_blue_horizon(8), imbalance_trigger_pct=500.0
        )
        report = runtime.run(app, policy, 80)
        carried = [r for r in report.result.records if r.regrid_time == 0.0]
        assert carried, "some regrids must carry the partition forward"

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineAdaptiveRuntime(sp2_blue_horizon(2), imbalance_trigger_pct=0)
        runtime = OnlineAdaptiveRuntime(sp2_blue_horizon(2))
        app, policy = self._app_and_policy()
        with pytest.raises(ValueError):
            runtime.run(app, policy, 0)


class TestPredictiveSelector:
    def test_predictions_and_validity(self, small_rm3d_trace):
        from repro.core import PredictiveSelector
        from repro.execsim import ExecutionSimulator

        cluster = sp2_blue_horizon(8)
        selector = PredictiveSelector(cluster=cluster, num_procs=8)
        sim = ExecutionSimulator(cluster, num_procs=8)
        res = sim.run(small_rm3d_trace, selector)
        assert res.total_runtime > 0
        # Tie-breaking happened for multi-candidate octants.
        assert selector.predictions
        for _, costs in selector.predictions:
            assert len(costs) >= 2
            assert all(c > 0 for c in costs.values())

    def test_forecast_speeds_used_when_monitored(self):
        from repro.core import PredictiveSelector
        from repro.gridsys import linux_cluster
        from repro.monitoring import ResourceMonitor

        cluster = linux_cluster(4, seed=3)
        monitor = ResourceMonitor(cluster, seed=4)
        monitor.sample_range(0.0, 16.0, 1.0)
        selector = PredictiveSelector(
            cluster=cluster, num_procs=4, monitor=monitor
        )
        speeds = selector._effective_speeds()
        assert speeds.shape == (4,)
        # stepped load: node 3 forecast below node 0
        assert speeds[0] > speeds[3]
