"""Tests for 1-D sequence partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioners.sequence import (
    greedy_sequence_partition,
    optimal_sequence_partition,
    segment_loads,
    weighted_sequence_partition,
)


def is_contiguous(owners: np.ndarray) -> bool:
    return (np.diff(owners) >= 0).all()


class TestGreedy:
    def test_uniform_loads(self):
        owners = greedy_sequence_partition(np.ones(12), 4)
        loads = segment_loads(np.ones(12), owners, 4)
        assert loads.tolist() == [3, 3, 3, 3]

    def test_contiguity(self):
        rng = np.random.default_rng(0)
        owners = greedy_sequence_partition(rng.random(100), 7)
        assert is_contiguous(owners)
        assert owners.max() <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_sequence_partition(np.array([]), 2)
        with pytest.raises(ValueError):
            greedy_sequence_partition(np.array([-1.0, 1.0]), 2)
        with pytest.raises(ValueError):
            greedy_sequence_partition(np.ones(3), 0)


class TestOptimal:
    def test_beats_or_ties_greedy(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            w = rng.random(60) * rng.integers(1, 100, 60)
            p = 8
            g = segment_loads(w, greedy_sequence_partition(w, p), p).max()
            o = segment_loads(w, optimal_sequence_partition(w, p), p).max()
            assert o <= g + 1e-9

    def test_known_optimal(self):
        w = np.array([1.0, 1.0, 1.0, 9.0])
        owners = optimal_sequence_partition(w, 2)
        loads = segment_loads(w, owners, 2)
        assert loads.max() == pytest.approx(9.0)

    def test_single_proc(self):
        w = np.array([1.0, 2.0])
        assert (optimal_sequence_partition(w, 1) == 0).all()

    def test_more_procs_than_items(self):
        w = np.array([5.0, 3.0])
        owners = optimal_sequence_partition(w, 4)
        assert is_contiguous(owners)
        loads = segment_loads(w, owners, 4)
        assert loads.max() == pytest.approx(5.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60),
        st.integers(1, 10),
    )
    def test_optimality_against_bound(self, w, p):
        """Optimal bottleneck is >= max(item, total/p) and every assignment
        is contiguous and complete."""
        w = np.asarray(w)
        owners = optimal_sequence_partition(w, p)
        assert owners.shape == w.shape
        assert is_contiguous(owners)
        bottleneck = segment_loads(w, owners, p).max()
        lower = max(w.max(initial=0.0), w.sum() / p)
        assert bottleneck >= lower - 1e-9
        # And within tolerance of the search's granularity:
        assert bottleneck <= w.sum() + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1000), st.integers(2, 8))
    def test_matches_brute_force_small(self, seed, p):
        """Exact agreement with brute-force DP on tiny instances."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(p, 12))
        w = rng.integers(0, 20, n).astype(float)
        owners = optimal_sequence_partition(w, p)
        got = segment_loads(w, owners, p).max()

        # brute force: DP over prefix cuts
        import itertools
        prefix = np.concatenate([[0.0], np.cumsum(w)])
        best = np.inf
        for cuts in itertools.combinations(range(1, n), min(p - 1, n - 1)):
            bounds = [0, *cuts, n]
            bott = max(prefix[b] - prefix[a] for a, b in zip(bounds, bounds[1:]))
            best = min(best, bott)
        if p - 1 >= n:
            best = w.max(initial=0.0)
        assert got == pytest.approx(best, rel=1e-6, abs=1e-6)


class TestWeighted:
    def test_proportional_split(self):
        w = np.ones(100)
        caps = np.array([1.0, 3.0])
        owners = weighted_sequence_partition(w, 2, caps)
        loads = segment_loads(w, owners, 2)
        assert loads[0] == pytest.approx(25.0, abs=1.0)
        assert loads[1] == pytest.approx(75.0, abs=1.0)

    def test_zero_capacity_gets_nothing_substantial(self):
        w = np.ones(50)
        caps = np.array([0.0, 1.0, 1.0])
        owners = weighted_sequence_partition(w, 3, caps)
        loads = segment_loads(w, owners, 3)
        assert loads[0] <= 1.0

    def test_zero_total_load(self):
        owners = weighted_sequence_partition(np.zeros(10), 2, np.ones(2))
        assert is_contiguous(owners)
        assert owners.max() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_sequence_partition(np.ones(4), 2, np.ones(3))
        with pytest.raises(ValueError):
            weighted_sequence_partition(np.ones(4), 2, np.zeros(2))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 8))
    def test_tracks_capacity_fractions(self, seed, p):
        rng = np.random.default_rng(seed)
        w = rng.random(200)
        caps = rng.random(p) + 0.05
        owners = weighted_sequence_partition(w, p, caps)
        assert is_contiguous(owners)
        loads = segment_loads(w, owners, p)
        targets = caps / caps.sum() * w.sum()
        # each segment within one item weight of its target cumulative cut
        assert np.abs(np.cumsum(loads) - np.cumsum(targets)).max() <= w.max() + 1e-9


class TestScalarFixRegressions:
    """Pinned behaviors of the scalar-loop fixes made when the vectorized
    kernels landed (both backends must satisfy them; the differential suite
    keeps them aligned)."""

    def test_greedy_reserves_units_for_remaining_procs(self):
        # Load concentrated at the tail: without the reserve clause the
        # greedy fill kept everything on processor 0.
        owners = greedy_sequence_partition(np.array([1.0, 1.0, 10.0]), 3)
        assert owners.tolist() == [0, 1, 2]

    def test_optimal_redistributes_trailing_empties(self):
        # A dominant first unit satisfies the bottleneck immediately; the
        # feasibility scan used to pad the remaining processors empty.
        w = np.array([9.0, 1.0, 1.0])
        owners = optimal_sequence_partition(w, 3)
        counts = np.bincount(owners, minlength=3)
        assert (counts > 0).all()
        assert segment_loads(w, owners, 3).max() == pytest.approx(9.0)

    def test_weighted_advances_before_assigning(self):
        # A zero-capacity processor 0 must not receive the first unit:
        # the old assign-then-advance order handed it one anyway.
        owners = weighted_sequence_partition(
            np.array([1.0, 1.0]), 2, np.array([0.0, 1.0])
        )
        assert owners.tolist() == [1, 1]
