"""Tests for patches and levels."""

import pytest

from repro.amr.box import Box
from repro.amr.grid import Level, Patch


def patch(lo, hi, level=0, pid=0, lpc=1.0):
    return Patch(box=Box(lo, hi), level=level, patch_id=pid, load_per_cell=lpc)


class TestPatch:
    def test_load(self):
        p = patch((0, 0, 0), (2, 2, 2), lpc=1.5)
        assert p.num_cells == 8
        assert p.load == 12.0

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            patch((0, 0, 0), (1, 1, 1), level=-1)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            patch((0, 0, 0), (1, 1, 1), lpc=-0.5)

    def test_serialization_roundtrip(self):
        p = patch((1, 2, 3), (4, 5, 6), level=2, pid=7, lpc=2.5)
        q = Patch.from_dict(p.to_dict())
        assert q == p


class TestLevel:
    def test_add_and_iterate(self):
        lvl = Level(index=1, ratio=2)
        lvl.add(patch((0, 0, 0), (2, 2, 2), level=1, pid=0))
        lvl.add(patch((4, 0, 0), (6, 2, 2), level=1, pid=1))
        assert len(lvl) == 2
        assert lvl.num_cells == 16
        assert lvl.load == 16.0

    def test_rejects_overlapping_patches(self):
        lvl = Level(index=0, ratio=1)
        lvl.add(patch((0, 0, 0), (4, 4, 4)))
        with pytest.raises(ValueError, match="overlaps"):
            lvl.add(patch((2, 2, 2), (6, 6, 6), pid=1))

    def test_rejects_wrong_level_patch(self):
        lvl = Level(index=1, ratio=2)
        with pytest.raises(ValueError):
            lvl.add(patch((0, 0, 0), (1, 1, 1), level=0))

    def test_covered_fraction(self):
        lvl = Level(index=0, ratio=1)
        lvl.add(patch((0, 0, 0), (2, 4, 4)))
        probe = Box((0, 0, 0), (4, 4, 4))
        assert lvl.covered_fraction_of(probe) == pytest.approx(0.5)

    def test_bounding_box(self):
        lvl = Level(index=0, ratio=1)
        assert lvl.bounding_box() is None
        lvl.add(patch((0, 0, 0), (1, 1, 1)))
        lvl.add(patch((5, 5, 5), (6, 6, 6), pid=1))
        assert lvl.bounding_box() == Box((0, 0, 0), (6, 6, 6))

    def test_serialization_roundtrip(self):
        lvl = Level(index=1, ratio=2)
        lvl.add(patch((0, 0, 0), (2, 2, 2), level=1))
        out = Level.from_dict(lvl.to_dict())
        assert out.index == 1 and out.ratio == 2 and len(out) == 1
