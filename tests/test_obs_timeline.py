"""Timeline recorder, EWMA anomaly detection, and their pipeline wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.anomaly import Alert, EwmaDetector, detect_alerts, detect_series
from repro.obs.timeline import NullTimeline, StepSample, TimelineRecorder


def _sample(step=0, **over):
    base = dict(
        step=step, t=float(step), coarse_steps=4, partitioner="G-MISP+SP",
        octant="I", compute_s=4.0, comm_s=0.4, regrid_s=0.1,
        checkpoint_s=0.0, recovery_s=0.0, imbalance_pct=7.5,
        forecast_error_pct=3.0, recoveries=0, live_procs=16,
    )
    base.update(over)
    return StepSample(**base)


class TestStepSample:
    def test_step_cost_divides_total_by_coarse_steps(self):
        s = _sample(compute_s=4.0, comm_s=0.4, regrid_s=0.1, coarse_steps=4)
        assert s.step_cost_s == pytest.approx(4.5 / 4)

    def test_zero_coarse_steps_cost_is_zero(self):
        assert _sample(coarse_steps=0).step_cost_s == 0.0

    def test_as_dict_is_json_ready(self):
        d = _sample().as_dict()
        json.dumps(d)
        assert d["t_s"] == 0.0
        assert d["step_cost_s"] == pytest.approx(4.5 / 4)


class TestTimelineRecorder:
    def test_record_and_series(self):
        tl = TimelineRecorder()
        tl.record(_sample(0, imbalance_pct=5.0))
        tl.record(_sample(4, imbalance_pct=9.0))
        assert tl.series("imbalance_pct") == [5.0, 9.0]

    def test_series_drops_none(self):
        tl = TimelineRecorder()
        tl.record(_sample(0, forecast_error_pct=None))
        tl.record(_sample(4, forecast_error_pct=2.0))
        assert tl.series("forecast_error_pct") == [2.0]

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            TimelineRecorder().series("nope")

    def test_events_by_kind(self):
        tl = TimelineRecorder()
        tl.event("checkpoint", t=1.0, step=0)
        tl.event("recovery", t=2.0, step=4)
        tl.event("checkpoint", t=3.0, step=8)
        assert tl.events_by_kind() == {"checkpoint": 2, "recovery": 1}

    def test_summary_has_quantiles_and_usage(self):
        tl = TimelineRecorder()
        for k in range(10):
            tl.record(_sample(k * 4, imbalance_pct=float(k)))
        s = tl.summary()
        assert s["num_samples"] == 10
        assert s["coarse_steps"] == 40
        assert s["partitioner_usage"] == {"G-MISP+SP": 10}
        st = s["series"]["imbalance_pct"]
        assert st["min"] == 0.0 and st["max"] == 9.0
        assert st["p50"] == 5.0
        assert st["p95"] <= st["p99"] <= st["max"]
        json.dumps(s)

    def test_jsonl_roundtrip(self, tmp_path):
        tl = TimelineRecorder()
        tl.record(_sample(0))
        tl.event("checkpoint", t=0.5, step=0, seconds=0.1)
        path = tl.to_jsonl(tmp_path / "tl.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in rows] == ["sample", "event"]
        assert rows[0]["partitioner"] == "G-MISP+SP"
        assert rows[1]["kind"] == "checkpoint"

    def test_reset_clears(self):
        tl = TimelineRecorder()
        tl.record(_sample(0))
        tl.event("x", t=0.0)
        tl.reset()
        assert not tl.samples and not tl.events


class TestNullTimeline:
    def test_records_nothing(self):
        tl = NullTimeline()
        assert not tl.enabled
        tl.record(_sample(0))
        tl.event("checkpoint", t=0.0)
        assert tl.samples == () and tl.events == ()
        assert tl.summary()["num_samples"] == 0

    def test_installed_by_default(self):
        assert not obs.get_timeline().enabled

    def test_collect_installs_and_restores(self):
        before = obs.get_timeline()
        with obs.collect() as window:
            assert obs.get_timeline() is window.timeline
            assert window.timeline.enabled
        assert obs.get_timeline() is before


class TestSimulatorTimeline:
    def test_replay_records_one_sample_per_interval(self, small_rm3d_trace):
        from repro.execsim import ExecutionSimulator, StaticSelector
        from repro.gridsys import sp2_blue_horizon
        from repro.partitioners import ISPPartitioner

        sim = ExecutionSimulator(sp2_blue_horizon(8), num_procs=8)
        with obs.collect() as window:
            res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        tl = window.timeline
        assert len(tl.samples) == len(res.records)
        first, second = tl.samples[0], tl.samples[1]
        assert first.forecast_error_pct is None
        assert second.forecast_error_pct is not None
        assert first.live_procs == 8
        assert tl.samples[0].compute_s == pytest.approx(
            res.records[0].compute_time
        )
        # Phase histograms carry quantiles for the same intervals.
        h = window.registry.histogram("execsim.phase_seconds", phase="compute")
        assert h.count == len(res.records)
        assert h.summary()["p95"] >= h.summary()["p50"]

    def test_resilient_replay_emits_checkpoint_and_recovery_events(
        self, small_rm3d_trace
    ):
        from repro.execsim import ExecutionSimulator, StaticSelector
        from repro.gridsys import FailureSchedule, sp2_blue_horizon
        from repro.partitioners import ISPPartitioner

        cluster = sp2_blue_horizon(8)
        cluster.failures.events.extend(
            FailureSchedule.poisson(
                num_nodes=8, horizon=2000.0, mtbf=120.0, mttr=40.0, seed=3
            ).events
        )
        sim = ExecutionSimulator(cluster, num_procs=8)
        with obs.collect() as window:
            res = sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        kinds = window.timeline.events_by_kind()
        assert kinds.get("checkpoint", 0) == len(res.records)
        if res.num_recoveries:
            assert kinds.get("recovery", 0) == res.num_recoveries
            assert any(s.recoveries for s in window.timeline.samples)

    def test_disabled_path_records_nothing(self, small_rm3d_trace):
        from repro.execsim import ExecutionSimulator, StaticSelector
        from repro.gridsys import sp2_blue_horizon
        from repro.partitioners import ISPPartitioner

        sim = ExecutionSimulator(sp2_blue_horizon(8), num_procs=8)
        sim.run(small_rm3d_trace, StaticSelector(ISPPartitioner()))
        assert obs.get_timeline().samples == ()


class TestEwmaDetector:
    def test_flat_series_never_alerts(self):
        assert detect_series("x", [5.0] * 50) == []

    def test_spike_after_warmup_alerts(self):
        values = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0, 50.0, 1.0]
        alerts = detect_series("step_cost_s", values)
        assert len(alerts) >= 1
        spike = next(a for a in alerts if a.index == 7)
        assert spike.value == 50.0
        assert spike.zscore > 3.0
        assert spike.series == "step_cost_s"

    def test_warmup_suppresses_early_alerts(self):
        # The spike inside the warmup window must not alert.
        alerts = detect_series("x", [1.0, 100.0, 1.0], warmup=5)
        assert alerts == []

    def test_level_shift_stops_alerting_once_absorbed(self):
        values = [1.0] * 10 + [10.0] * 30
        alerts = detect_series("x", values)
        # The transition alerts; the new steady state does not.
        assert alerts
        assert all(a.index < 20 for a in alerts)

    def test_detector_validation(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(z_threshold=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(warmup=0)

    def test_alert_as_dict_is_json_ready(self):
        a = Alert(series="s", index=3, value=9.0, zscore=4.2, mean=1.0,
                  std=0.5)
        json.dumps(a.as_dict())

    def test_detect_alerts_scans_timeline_series(self):
        tl = TimelineRecorder()
        for k in range(12):
            tl.record(
                _sample(k * 4, compute_s=400.0 if k == 9 else 4.0)
            )
        alerts = detect_alerts(tl)
        assert any(
            a.series == "step_cost_s" and a.index == 9 for a in alerts
        )


class TestReportIntegration:
    def test_run_report_carries_timeline_and_alerts(self):
        from repro.obs.report import collect_run_report

        report = collect_run_report(
            num_coarse_steps=24, compare_with=("SFC",), online_steps=8
        )
        doc = report.to_dict()
        assert doc["timeline"]["num_samples"] > 0
        assert "step_cost_s" in doc["timeline"]["series"]
        assert isinstance(doc["obs"]["alerts"], list)
        text = report.render()
        assert "-- timeline --" in text
        assert "anomaly alerts" in text
        json.dumps(doc)
