"""Additional performance-function behaviors: composition algebra edge
cases and the FittedPF contract."""

import numpy as np
import pytest

from repro.perf import (
    CallablePF,
    MaxPF,
    ScaledPF,
    SumPF,
    fit_neural,
    fit_polynomial,
)


class TestCompositionAlgebra:
    def test_nested_composition(self):
        """Compositions compose: sum of (max, scaled) trees."""
        a = CallablePF(lambda x: x, "a")
        b = CallablePF(lambda x: 2 * x, "b")
        c = CallablePF(lambda x: 0 * x + 1, "c")
        pf = SumPF([MaxPF([a, b]), ScaledPF(c, 3.0)])
        assert pf.predict(2.0) == pytest.approx(4.0 + 3.0)

    def test_vectorized_prediction(self):
        a = CallablePF(lambda x: x**2, "sq")
        out = np.asarray(SumPF([a, a]).predict(np.array([1.0, 2.0, 3.0])))
        assert out.tolist() == [2.0, 8.0, 18.0]

    def test_sum_operator_chains(self):
        a = CallablePF(lambda x: x, "a")
        b = CallablePF(lambda x: x, "b")
        c = CallablePF(lambda x: x, "c")
        chained = a + b + c
        assert chained.predict(5.0) == 15.0

    def test_attribute_propagates(self):
        a = CallablePF(lambda x: x, "a", attribute="cpu_load")
        assert ScaledPF(a, 2.0).attribute == "cpu_load"
        assert SumPF([a]).attribute == "cpu_load"


class TestFittedPFContract:
    def test_training_rmse_neural(self):
        x = np.linspace(0, 1, 30)
        y = 2.0 * x + 1.0
        pf = fit_neural(x, y, hidden=8, epochs=1500, seed=1)
        assert pf.training_rmse() < 0.05

    def test_vector_and_scalar_agree(self):
        pf = fit_polynomial([0.0, 1.0, 2.0, 3.0], [0.0, 2.0, 4.0, 6.0],
                            degree=1)
        scalar = pf.predict(1.5)
        vector = np.asarray(pf.predict(np.array([1.5])))
        assert scalar == pytest.approx(float(vector[0]))

    def test_train_data_retained(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([2.0, 4.0, 6.0])
        pf = fit_polynomial(x, y, degree=1)
        assert pf.train_x.tolist() == x.tolist()
        assert pf.train_y.tolist() == y.tolist()

    def test_extrapolation_is_finite(self):
        """MLP predictions saturate (tanh) rather than exploding outside
        the training range — relevant when a PF is queried beyond its
        calibration."""
        x = np.linspace(100, 1000, 19)
        y = 1e-4 + 1e-6 * x
        pf = fit_neural(x, y, hidden=8, epochs=800, seed=0)
        far = float(pf.predict(1e6))
        assert np.isfinite(far)
