"""Microbenchmark guard: the disabled observability path stays cheap.

The zero-cost-when-off contract is what lets every hot loop in the
simulator, partitioners and message center stay permanently
instrumented.  These tests pin the two halves of that contract: the
disabled path returns shared null singletons (no per-call allocation of
instruments or spans), and an instrumented hot loop costs at most a
small constant factor over the bare loop.
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs.metrics import NullRegistry
from repro.obs.timeline import NullTimeline
from repro.obs.tracing import NullTracer

#: generous multiplier so the guard never flakes on a loaded CI host;
#: a removed fast path shows up as 100x+, not 20x
MAX_OVERHEAD_FACTOR = 20.0


def _timeit(fn, n: int = 5) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestNullSingletons:
    def test_disabled_accessors_return_shared_singletons(self):
        assert not obs.enabled()
        assert isinstance(obs.get_registry(), NullRegistry)
        assert isinstance(obs.get_tracer(), NullTracer)
        assert isinstance(obs.get_timeline(), NullTimeline)
        assert obs.get_registry() is obs.get_registry()
        assert obs.get_tracer() is obs.get_tracer()
        assert obs.get_timeline() is obs.get_timeline()

    def test_disabled_instruments_are_shared(self):
        c1 = obs.counter("a.b")
        c2 = obs.counter("x.y", label="z")
        assert c1 is c2
        assert obs.histogram("h") is obs.gauge("g")

    def test_disabled_spans_are_shared(self):
        s1 = obs.span("a", k=1)
        s2 = obs.span("b")
        assert s1 is s2

    def test_collect_restores_null_singletons(self):
        before_reg = obs.get_registry()
        before_tr = obs.get_tracer()
        before_tl = obs.get_timeline()
        with obs.collect():
            assert obs.enabled()
        assert obs.get_registry() is before_reg
        assert obs.get_tracer() is before_tr
        assert obs.get_timeline() is before_tl


class TestDisabledOverhead:
    N = 20_000

    def _bare(self) -> float:
        acc = 0.0
        for i in range(self.N):
            acc += i * 1e-9
        return acc

    def _instrumented(self) -> float:
        acc = 0.0
        for i in range(self.N):
            with obs.span("hot.iter"):
                acc += i * 1e-9
            obs.counter("hot.iters").inc()
        return acc

    def test_disabled_instrumentation_overhead_is_bounded(self):
        assert not obs.enabled()
        bare = _timeit(self._bare)
        instrumented = _timeit(self._instrumented)
        assert instrumented <= MAX_OVERHEAD_FACTOR * max(bare, 1e-4), (
            f"disabled-path overhead {instrumented / bare:.1f}x exceeds "
            f"{MAX_OVERHEAD_FACTOR}x (bare {bare * 1e3:.2f} ms, "
            f"instrumented {instrumented * 1e3:.2f} ms)"
        )

    def test_disabled_histogram_observe_records_nothing(self):
        h = obs.histogram("hot.seconds")
        for _ in range(1000):
            h.observe(0.5)
        assert h.count == 0
        assert h.summary()["p95"] == 0.0
