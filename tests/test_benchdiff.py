"""Bench regression gate: document diffing and the CLI exit codes."""

from __future__ import annotations

import copy
import json

from repro.cli import main
from repro.obs.benchdiff import (
    DEFAULT_IGNORES,
    BenchDiff,
    LeafDiff,
    diff_documents,
    diff_files,
    flatten_document,
)

DOC = {
    "scenario": "quickstart",
    "timings": {"compute": 120.0, "comm": 8.0},
    "tasks": [{"name": "a", "steps": 96}, {"name": "b", "steps": 96}],
    "wall_s": 4.2,
}


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = flatten_document(DOC)
        assert flat["timings.compute"] == 120.0
        assert flat["tasks.0.name"] == "a"
        assert flat["tasks.1.steps"] == 96
        assert flat["wall_s"] == 4.2

    def test_scalar_document(self):
        assert flatten_document(7.0) == {"": 7.0}


class TestDiffDocuments:
    def test_identical_documents_pass(self):
        diff = diff_documents(DOC, copy.deepcopy(DOC))
        assert diff.ok
        assert not diff.failures
        assert diff.counts().get("regression", 0) == 0

    def test_within_tolerance_passes(self):
        cur = copy.deepcopy(DOC)
        cur["timings"]["compute"] = 120.5  # +0.4% under the 1% default
        assert diff_documents(DOC, cur).ok

    def test_regression_fails(self):
        cur = copy.deepcopy(DOC)
        cur["timings"]["compute"] = 150.0
        diff = diff_documents(DOC, cur)
        assert not diff.ok
        (fail,) = diff.failures
        assert fail.path == "timings.compute"
        assert fail.status == "regression"
        assert fail.rel_change > 0.2

    def test_improvement_also_fails(self):
        # A baseline that no longer describes the code must be
        # regenerated deliberately, even when the drift is "good".
        cur = copy.deepcopy(DOC)
        cur["timings"]["compute"] = 60.0
        assert not diff_documents(DOC, cur).ok

    def test_missing_leaf_fails(self):
        cur = copy.deepcopy(DOC)
        del cur["timings"]["comm"]
        diff = diff_documents(DOC, cur)
        assert not diff.ok
        assert diff.failures[0].status == "missing"

    def test_added_leaf_passes(self):
        cur = copy.deepcopy(DOC)
        cur["timings"]["regrid"] = 3.0
        diff = diff_documents(DOC, cur)
        assert diff.ok
        assert "timings.regrid" in diff.to_dict()["added"]

    def test_default_ignores_skip_wall_clock(self):
        cur = copy.deepcopy(DOC)
        cur["wall_s"] = 400.0  # two orders of magnitude, still ignored
        diff = diff_documents(DOC, cur)
        assert diff.ok
        wall = next(d for d in diff.leaves if d.path == "wall_s")
        assert wall.status == "ignored"

    def test_custom_tolerance_rule(self):
        cur = copy.deepcopy(DOC)
        cur["timings"]["comm"] = 9.0  # +12.5%
        assert not diff_documents(DOC, cur).ok
        assert diff_documents(
            DOC, cur, tolerances={"timings.comm": 0.2}
        ).ok

    def test_non_numeric_leaves_must_be_equal(self):
        cur = copy.deepcopy(DOC)
        cur["scenario"] = "other"
        diff = diff_documents(DOC, cur)
        assert not diff.ok
        assert diff.failures[0].rel_change is None

    def test_bool_is_not_numeric(self):
        base = {"invariants": {"hold": True}}
        diff = diff_documents(base, {"invariants": {"hold": False}})
        assert not diff.ok

    def test_near_zero_leaves_use_abs_tol(self):
        base = {"recovery_time": 0.0}
        assert diff_documents(base, {"recovery_time": 5e-7}).ok
        assert not diff_documents(base, {"recovery_time": 0.5}).ok

    def test_to_dict_and_render(self):
        cur = copy.deepcopy(DOC)
        cur["timings"]["compute"] = 150.0
        diff = diff_documents(DOC, cur)
        doc = diff.to_dict()
        json.dumps(doc)
        assert doc["bench"] == "benchdiff"
        assert doc["ok"] is False
        text = diff.render()
        assert "== bench regression gate ==" in text
        assert "REGRESSION timings.compute" in text
        assert text.endswith("FAIL")
        assert diff_documents(DOC, DOC).render().endswith("PASS")

    def test_empty_diff_passes(self):
        assert BenchDiff().ok
        assert LeafDiff(path="x", status="ok").as_dict()["path"] == "x"

    def test_default_ignores_cover_span_paths(self):
        assert "span_totals_by_path*" in DEFAULT_IGNORES


class TestBenchdiffCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_identical_inputs_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", DOC)
        cur = self._write(tmp_path, "cur.json", DOC)
        assert main(["benchdiff", base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        doc = copy.deepcopy(DOC)
        doc["timings"]["compute"] = 150.0
        base = self._write(tmp_path, "base.json", DOC)
        cur = self._write(tmp_path, "cur.json", doc)
        assert main(["benchdiff", base, cur]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, tmp_path):
        base = self._write(tmp_path, "base.json", DOC)
        cur = self._write(tmp_path, "cur.json", DOC)
        out = tmp_path / "diff.json"
        assert main(["benchdiff", base, cur, "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True

    def test_rel_tol_flag_widens_gate(self, tmp_path):
        doc = copy.deepcopy(DOC)
        doc["timings"]["comm"] = 9.0  # +12.5%
        base = self._write(tmp_path, "base.json", DOC)
        cur = self._write(tmp_path, "cur.json", doc)
        assert main(["benchdiff", base, cur]) == 1
        assert main(["benchdiff", base, cur, "--rel-tol", "0.2"]) == 0

    def test_diff_files_matches_diff_documents(self, tmp_path):
        base = self._write(tmp_path, "base.json", DOC)
        cur = self._write(tmp_path, "cur.json", DOC)
        assert diff_files(base, cur).ok


class TestTraceCli:
    def test_trace_verb_writes_perfetto_document(self, tmp_path):
        out = tmp_path / "trace.json"
        tl = tmp_path / "tl.jsonl"
        rc = main([
            "trace", "--steps", "8", "--online-steps", "4",
            "--timeline", str(tl), "--json", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        ts = [e["ts"] for e in events if "ts" in e]
        assert ts == sorted(ts)
        starts = {e["id"] for e in events if e["ph"] == "s"}
        ends = {e["id"] for e in events if e["ph"] == "f"}
        assert ends and ends <= starts
        rows = [json.loads(line) for line in tl.read_text().splitlines()]
        assert any(r["type"] == "sample" for r in rows)
