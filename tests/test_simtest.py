"""The deterministic simulation harness itself.

Covers the virtual clock and cooperative scheduler as units, run-level
determinism (same seed ⇒ byte-identical trace digest, across processes
too since seeding is sha256-derived), the committed seed corpus, the
minimizer + repro-file round trip, the CLI verb — and the acceptance
regressions: re-introducing any of the three serving-runtime race bugs
(module-global modeled-time override, unlocked twin attach, blind
inflight pop) makes committed corpus seeds fail with a minimized,
replayable repro file.
"""

from __future__ import annotations

import json
import threading
import types
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.partitioners import base as partitioner_base
from repro.serve.server import ScenarioServer
from repro.simtest import (
    SimClock,
    SimScheduler,
    WorkloadScript,
    generate_script,
    load_repro,
    minimize_script,
    replay_repro,
    run_script,
    run_simtest,
    sim_yield,
)
from repro.simtest.script import derive_sim_seed

GOLDEN = Path(__file__).parent / "golden"
CORPUS_PATH = GOLDEN / "simtest_seeds.json"


# -- virtual clock ---------------------------------------------------------------


class TestSimClock:
    def test_advance_fires_timers_in_due_order(self):
        clock = SimClock()
        fired = []
        clock.after(2.0, lambda: fired.append(("late", clock.now())))
        clock.after(1.0, lambda: fired.append(("early", clock.now())))
        assert clock.advance(3.0) == 2
        # each callback observed now() at its exact due time
        assert fired == [("early", 1.0), ("late", 2.0)]
        assert clock.now() == 3.0

    def test_periodic_timer_lands_on_exact_grid(self):
        clock = SimClock()
        ticks = []
        clock.every(1.0, lambda: ticks.append(clock.now()))
        clock.advance(0.7)
        clock.advance(2.0)
        clock.advance(1.3)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_sleep_is_the_advance_alias(self):
        clock = SimClock()
        clock.sleep(1.5)
        assert clock.now() == 1.5

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_next_due_and_registration_order_ties(self):
        clock = SimClock()
        order = []
        clock.after(1.0, lambda: order.append("first"))
        clock.after(1.0, lambda: order.append("second"))
        assert clock.next_due() == 1.0
        clock.advance(1.0)
        assert order == ["first", "second"]
        assert clock.next_due() is None


# -- cooperative scheduler -------------------------------------------------------


def _interleave_trace(seed: int) -> list[tuple[str, int]]:
    sched = SimScheduler(seed)
    out: list[tuple[str, int]] = []

    def body(name: str):
        def _run() -> None:
            for i in range(3):
                out.append((name, i))
                sim_yield("loop")
        return _run

    for name in ("a", "b", "c"):
        sched.spawn(name, body(name))
    while sched.step() is not None:
        pass
    return out


class TestSimScheduler:
    def test_grant_order_is_a_pure_function_of_the_seed(self):
        assert _interleave_trace(7) == _interleave_trace(7)
        # different seeds explore different interleavings (any of these
        # colliding with seed 7 would be a 1-in-many coincidence thrice)
        assert any(
            _interleave_trace(s) != _interleave_trace(7) for s in (8, 9, 10)
        )

    def test_sim_yield_is_noop_on_unmanaged_threads(self):
        sim_yield("not-under-simulation")  # must neither park nor raise

    def test_abort_unwinds_live_tasks_cleanly(self):
        sched = SimScheduler(0)

        def spin() -> None:
            while True:
                sim_yield("spin")

        task = sched.spawn("spinner", spin)
        sched.step()
        sched.abort_all()
        assert task.done
        assert task.error is None  # SimAbort is teardown, not a crash

    def test_uncaught_exception_is_surfaced_on_the_task(self):
        sched = SimScheduler(0)

        def bad() -> None:
            raise RuntimeError("task exploded")

        task = sched.spawn("bad", bad)
        sched.step()
        assert task.done
        assert isinstance(task.error, RuntimeError)


# -- scripts and seeds -----------------------------------------------------------


class TestScripts:
    def test_derive_sim_seed_is_process_independent(self):
        # pinned value: sha256-derived, so PYTHONHASHSEED cannot move it
        assert derive_sim_seed("simtest", 1) == derive_sim_seed("simtest", 1)
        assert derive_sim_seed("pinned") == 4587861904022735369

    def test_generate_script_is_deterministic(self):
        assert generate_script(5).to_dict() == generate_script(5).to_dict()

    def test_script_json_roundtrip(self):
        script = generate_script(11)
        assert (
            WorkloadScript.from_dict(script.to_dict()).to_dict()
            == script.to_dict()
        )

    def test_ops_referencing_unknown_handles_are_skipped(self):
        # the property the ddmin minimizer relies on: every subset of an
        # op list is a valid script
        script = WorkloadScript(ops=[
            {"op": "cancel", "client": 0, "handle": "h9"},
            {"op": "await", "client": 1, "handle": "h42"},
            {"op": "drain", "client": 0},
        ])
        report = run_script(script, seed=1)
        assert report.ok, report.violations

    def test_death_plan_is_schedule_independent(self):
        script = WorkloadScript(death_rate=0.4, death_seed=77)
        plans = [script.death_plan(seq, a) for seq in range(20)
                 for a in range(3)]
        assert plans == [script.death_plan(seq, a) for seq in range(20)
                        for a in range(3)]
        assert any(p is not None for p in plans)


# -- determinism -----------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_byte_identical_trace_and_log(self):
        script = generate_script(3)
        first = run_script(script, 3)
        second = run_script(script, 3)
        assert first.ok, first.violations
        assert first.trace == second.trace
        assert first.invariant_log == second.invariant_log
        assert [list(g) for g in first.grants] == [
            list(g) for g in second.grants
        ]
        assert first.digest == second.digest

    def test_different_seeds_schedule_differently(self):
        script = generate_script(3)
        digests = {run_script(script, seed).digest for seed in range(4)}
        assert len(digests) > 1

    def test_corpus_file_shape_and_smoke(self):
        corpus = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))
        assert corpus["format"] == "simtest-corpus-v1"
        seeds = corpus["seeds"]
        assert len(seeds) == len(set(seeds)) >= 20
        # a slice of the corpus runs green here; CI runs the whole file
        summary = run_simtest(seeds[:6], ops=corpus["ops"])
        assert summary["failures"] == 0


# -- races this harness found when it first ran ----------------------------------


class TestHarnessFoundRaces:
    def test_concurrent_cancel_of_one_handle_decrements_once(self):
        # minimized from seed 163's first run: two clients cancel the
        # same handle; the unguarded JobHandle.cancel double-decremented
        # the subscriber count to -1
        script = WorkloadScript(ops=[
            {"op": "submit", "client": 1, "handle": "h1",
             "scenario": "sim-slow", "x": 2, "priority": "high"},
            {"op": "cancel", "client": 0, "handle": "h1"},
            {"op": "cancel", "client": 1, "handle": "h1"},
        ])
        report = run_script(script, 163)
        assert report.ok, report.violations

    def test_queued_cancel_vs_dedup_attach_commit_race(self):
        # seed 210's first run: a sole-subscriber cancel of a queued job
        # raced a same-key submit — the attach landed between the
        # subscriber decrement and the cancelled commit, handing the new
        # client a handle that read 'cancelled' without ever cancelling
        report = run_script(generate_script(210), 210)
        assert report.ok, report.violations


# -- acceptance: reintroduced race bugs must be caught ---------------------------


def _buggy_attach(self, twin):
    # the pre-review variant: no committed re-check under the twin lock
    with twin.lock:
        twin.subscribers += 1
    return True


def _buggy_pop(self, job):
    # the pre-review variant: pops by key without the identity check
    self._inflight.pop(job.key, None)


class TestReintroducedBugsAreCaught:
    """Each of the three PR-8 review races, monkeypatched back in, must
    fail committed corpus seeds with a minimized, replayable repro."""

    def _assert_caught(self, tmp_path, seeds, invariant):
        corpus = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))
        assert set(seeds) <= set(corpus["seeds"])
        summary = run_simtest(seeds, out_dir=tmp_path)
        failing = [r for r in summary["results"] if not r["ok"]]
        hits = [
            e for e in failing
            if any(v["invariant"] == invariant for v in e["violations"])
        ]
        assert hits, f"no corpus seed caught {invariant}"
        doc = load_repro(hits[0]["repro"])
        assert doc["format"] == "simtest-repro-v1"
        assert doc["minimized_ops"] <= doc["original_ops"]
        assert doc["trace_tail"] and doc["invariant_log_tail"]
        # the repro file replays to the same violation (bug still in)
        replay = replay_repro(doc)
        assert any(
            v.invariant == doc["invariant"] for v in replay.violations
        )

    def test_module_global_modeled_time_override(self, monkeypatch,
                                                 tmp_path):
        monkeypatch.setattr(
            partitioner_base, "_MODELED_TIME", types.SimpleNamespace()
        )
        self._assert_caught(tmp_path, [0, 1, 2], "no-modeled-time-leak")

    def test_unlocked_subscriber_attach(self, monkeypatch, tmp_path):
        monkeypatch.setattr(ScenarioServer, "_attach_twin", _buggy_attach)
        self._assert_caught(tmp_path, [48, 123, 144], "no-phantom-cancel")

    def test_non_identity_inflight_pop(self, monkeypatch, tmp_path):
        monkeypatch.setattr(ScenarioServer, "_pop_inflight", _buggy_pop)
        self._assert_caught(tmp_path, [10, 11, 27], "inflight-identity")


# -- minimizer -------------------------------------------------------------------


class TestMinimizer:
    def test_minimize_requires_a_failing_script(self):
        with pytest.raises(ValueError):
            minimize_script(generate_script(0), 0, "no-such-invariant")

    def test_minimizer_shrinks_and_preserves_the_violation(self,
                                                           monkeypatch):
        monkeypatch.setattr(ScenarioServer, "_pop_inflight", _buggy_pop)
        script = generate_script(10)
        minimized, report = minimize_script(
            script, 10, "inflight-identity"
        )
        assert len(minimized.ops) <= len(script.ops)
        assert any(
            v.invariant == "inflight-identity" for v in report.violations
        )
        # minimized scripts stay valid corpus-format scripts
        rt = WorkloadScript.from_dict(minimized.to_dict())
        rerun = run_script(rt, 10)
        assert any(
            v.invariant == "inflight-identity" for v in rerun.violations
        )


# -- CLI verb --------------------------------------------------------------------


class TestCliVerb:
    def test_seed_sweep_json_summary(self, capsys):
        rc = cli_main(["simtest", "--seeds", "3", "--json", "-"])
        captured = capsys.readouterr()
        assert rc == 0
        summary = json.loads(captured.out)
        assert summary["format"] == "simtest-summary-v1"
        assert summary["seeds"] == 3
        assert summary["failures"] == 0

    def test_corpus_and_replay_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main([
                "simtest", "--corpus", str(CORPUS_PATH),
                "--replay", str(tmp_path / "nope.json"),
            ])

    def test_failure_writes_repro_and_replay_round_trips(
            self, tmp_path, capsys):
        out_dir = tmp_path / "repros"
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ScenarioServer, "_pop_inflight", _buggy_pop)
            rc = cli_main([
                "simtest", "--seeds", "2", "--seed", "10",
                "--out-dir", str(out_dir), "--json", "-",
            ])
            assert rc == 1
            summary = json.loads(capsys.readouterr().out)
            failing = [r for r in summary["results"] if not r["ok"]]
            assert failing and "repro" in failing[0]
            repro_path = failing[0]["repro"]
            assert Path(repro_path).exists()
            # with the bug still in, the replay reproduces (exit 0)
            rc = cli_main([
                "simtest", "--replay", repro_path, "--json", "-",
            ])
            assert rc == 0
            replay = json.loads(capsys.readouterr().out)
            assert replay["reproduced"] is True
        # bug fixed (monkeypatch undone): the same repro no longer
        # reproduces, and the replay says so with exit 1
        rc = cli_main(["simtest", "--replay", repro_path, "--json", "-"])
        assert rc == 1
        replay = json.loads(capsys.readouterr().out)
        assert replay["reproduced"] is False


# -- seams stay production-neutral -----------------------------------------------


class TestProductionSeams:
    def test_server_defaults_to_real_time(self):
        server = ScenarioServer(
            workers=1, scenario_modules=(), start=False
        )
        try:
            import time as _time
            assert server.clock is _time.monotonic
            assert server.sleeper is _time.sleep
        finally:
            server.shutdown(wait=False)

    def test_sim_clock_drives_every_server_timestamp(self):
        clock = SimClock(start=100.0)
        server = ScenarioServer(
            workers=1, scenario_modules=(), start=False, clock=clock,
            sleeper=clock.sleep,
        )
        try:
            assert server.stats()["uptime_wall_s"] == 0.0
            clock.advance(5.0)
            assert server.stats()["uptime_wall_s"] == 5.0
        finally:
            server.shutdown(wait=False)

    def test_detector_poll_now_needs_a_clock(self):
        from repro.gridsys.cluster import Cluster
        from repro.gridsys.node import Node
        from repro.resilience.detector import FailureDetector

        detector = FailureDetector(Cluster(nodes=[Node(node_id=0)]))
        with pytest.raises(RuntimeError):
            detector.poll_now()

    def test_snapshot_exporter_uses_injected_clocks(self, tmp_path):
        from repro.obs.live import SnapshotExporter
        from repro.obs.metrics import MetricsRegistry

        clock = SimClock(start=10.0)
        path = tmp_path / "snap.json"
        exporter = SnapshotExporter(
            MetricsRegistry(), path, interval_s=1.0,
            clock=clock, wall_clock=clock,
        )
        # never started: driven synchronously off the virtual clock
        exporter.snapshot_once()
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["t"] == 10.0


def test_sim_worlds_leave_no_stray_threads():
    before = threading.active_count()
    report = run_script(generate_script(1), 1)
    assert report.ok
    # cooperative tasks are joined by abort_all/quiescence teardown
    assert threading.active_count() <= before + 2
