"""NWS-style forecasting: simple predictors plus dynamic selection.

Wolski's Network Weather Service (HPDC'97) forecasts each measurement
stream by running a battery of cheap predictors side by side, scoring each
on its trailing *postcast* error (how well it would have predicted the
measurements that actually arrived), and answering queries with the
current best predictor's value.  The ensemble is therefore nonparametric
and self-tuning — exactly the property Pragma's proactive management needs
on a dynamic grid.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from repro import obs

__all__ = [
    "Predictor",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "SlidingMedian",
    "ExponentialSmoothing",
    "AdaptiveMean",
    "AutoRegressive",
    "ForecasterEnsemble",
    "default_ensemble",
]


class Predictor(abc.ABC):
    """Incremental one-step-ahead predictor of a scalar series."""

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Feed the next observed value."""

    @abc.abstractmethod
    def predict(self) -> float:
        """Forecast the next value; raises ``ValueError`` before any update."""

    @property
    def name(self) -> str:
        """Human-readable identifier (class name plus parameters)."""
        return type(self).__name__

    def _require_data(self, have: bool) -> None:
        if not have:
            raise ValueError(f"{self.name} has no data yet")


class LastValue(Predictor):
    """Forecast = most recent observation."""

    def __init__(self) -> None:
        self._last: float | None = None

    def update(self, value: float) -> None:
        self._last = float(value)

    def predict(self) -> float:
        self._require_data(self._last is not None)
        return self._last  # type: ignore[return-value]


class RunningMean(Predictor):
    """Forecast = mean of the entire history."""

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def update(self, value: float) -> None:
        self._sum += float(value)
        self._n += 1

    def predict(self) -> float:
        self._require_data(self._n > 0)
        return self._sum / self._n


class SlidingWindowMean(Predictor):
    """Forecast = mean of the trailing ``window`` observations."""

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buf: deque = deque(maxlen=window)

    @property
    def name(self) -> str:
        return f"SlidingWindowMean({self.window})"

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        self._require_data(bool(self._buf))
        return float(np.mean(self._buf))


class SlidingMedian(Predictor):
    """Forecast = median of the trailing ``window`` observations.

    Robust to the load spikes that dominate CPU-availability traces.
    """

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buf: deque = deque(maxlen=window)

    @property
    def name(self) -> str:
        return f"SlidingMedian({self.window})"

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        self._require_data(bool(self._buf))
        return float(np.median(self._buf))


class ExponentialSmoothing(Predictor):
    """Forecast = exponentially weighted history with gain ``alpha``."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._state: float | None = None

    @property
    def name(self) -> str:
        return f"ExponentialSmoothing({self.alpha})"

    def update(self, value: float) -> None:
        v = float(value)
        self._state = v if self._state is None else (
            self.alpha * v + (1.0 - self.alpha) * self._state
        )

    def predict(self) -> float:
        self._require_data(self._state is not None)
        return self._state  # type: ignore[return-value]


class AdaptiveMean(Predictor):
    """Mean over a window that shrinks when the series shifts level.

    After each observation the predictor compares the recent half-window
    mean against the full-window mean; a shift beyond ``tolerance`` (as a
    fraction of the full-window std) truncates history, so the mean adapts
    quickly to regime changes while smoothing stationary noise.
    """

    def __init__(self, max_window: int = 32, tolerance: float = 1.5) -> None:
        if max_window < 4:
            raise ValueError(f"max_window must be >= 4, got {max_window}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.max_window = max_window
        self.tolerance = tolerance
        self._buf: deque = deque(maxlen=max_window)

    @property
    def name(self) -> str:
        return f"AdaptiveMean({self.max_window})"

    def update(self, value: float) -> None:
        self._buf.append(float(value))
        if len(self._buf) >= 8:
            arr = np.asarray(self._buf)
            half = arr[len(arr) // 2 :]
            sd = arr.std()
            if sd > 0 and abs(half.mean() - arr.mean()) > self.tolerance * sd:
                recent = list(half)
                self._buf.clear()
                self._buf.extend(recent)

    def predict(self) -> float:
        self._require_data(bool(self._buf))
        return float(np.mean(self._buf))


class AutoRegressive(Predictor):
    """AR(p) forecaster refit by least squares over a sliding window.

    The heaviest member of the NWS battery: captures short-range
    correlation that mean/median predictors smooth away.  Falls back to
    the last value until the window holds enough history to fit.
    """

    def __init__(self, order: int = 3, window: int = 64) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if window < 2 * order + 2:
            raise ValueError(
                f"window {window} too small for AR({order}); "
                f"need >= {2 * order + 2}"
            )
        self.order = order
        self.window = window
        self._buf: deque = deque(maxlen=window)

    @property
    def name(self) -> str:
        return f"AutoRegressive({self.order})"

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        self._require_data(bool(self._buf))
        x = np.asarray(self._buf)
        p = self.order
        if len(x) < 2 * p + 2:
            return float(x[-1])
        # Design matrix of lagged values plus intercept.
        rows = len(x) - p
        X = np.empty((rows, p + 1))
        X[:, 0] = 1.0
        for k in range(p):
            X[:, k + 1] = x[p - 1 - k : len(x) - 1 - k]
        y = x[p:]
        coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        latest = np.concatenate([[1.0], x[-1 : -p - 1 : -1]])
        return float(latest @ coef)


class ForecasterEnsemble:
    """Dynamic predictor selection over a battery of predictors.

    Every ``update`` first scores each predictor's standing forecast
    against the arriving value (accumulating mean absolute postcast error
    with exponential decay ``decay``), then feeds the value to all
    predictors.  ``predict`` returns the forecast of the currently
    best-scoring predictor.
    """

    def __init__(self, predictors: list[Predictor] | None = None, decay: float = 0.98):
        if predictors is None:
            predictors = default_ensemble()
        if not predictors:
            raise ValueError("ensemble needs at least one predictor")
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.predictors = predictors
        self.decay = decay
        self._err = np.zeros(len(predictors))
        self._weight = np.zeros(len(predictors))
        self._n = 0
        self._last_best: int | None = None

    def update(self, value: float) -> float | None:
        """Score standing forecasts against ``value``, then absorb it.

        Returns the standing best predictor's absolute postcast error —
        how far the ensemble's own forecast of this value was off — when
        observability is enabled and the ensemble had history to forecast
        from; ``None`` otherwise (the disabled path skips the argmin).
        """
        v = float(value)
        err_best: float | None = None
        if self._n > 0 and obs.enabled():
            err_best = abs(self.predictors[self.best_index].predict() - v)
        if self._n > 0:
            for i, p in enumerate(self.predictors):
                e = abs(p.predict() - v)
                self._err[i] = self.decay * self._err[i] + e
                self._weight[i] = self.decay * self._weight[i] + 1.0
        for p in self.predictors:
            p.update(v)
        self._n += 1
        if obs.enabled():
            # Predictor-selection churn: how often the postcast winner
            # changes.  Gated so the disabled path skips the argmin.
            obs.counter("forecast.updates").inc()
            if err_best is not None:
                obs.histogram("forecast.abs_error").observe(err_best)
            best = self.best_index
            if self._last_best is not None and best != self._last_best:
                obs.counter(
                    "forecast.selection_switches",
                    predictor=self.predictors[best].name,
                ).inc()
            self._last_best = best
        return err_best

    @property
    def best_index(self) -> int:
        """Index of the predictor with lowest decayed postcast MAE."""
        if self._n == 0:
            raise ValueError("ensemble has no data yet")
        if self._n == 1:
            return 0
        scores = self._err / np.maximum(self._weight, 1e-12)
        return int(np.argmin(scores))

    @property
    def best_name(self) -> str:
        """Name of the currently selected predictor."""
        return self.predictors[self.best_index].name

    def predict(self) -> float:
        """Forecast of the best predictor so far."""
        return self.predictors[self.best_index].predict()

    def postcast_errors(self) -> dict[str, float]:
        """Decayed MAE per predictor (diagnostic / ablation output)."""
        if self._n <= 1:
            return {p.name: float("nan") for p in self.predictors}
        scores = self._err / np.maximum(self._weight, 1e-12)
        return {p.name: float(s) for p, s in zip(self.predictors, scores)}


def default_ensemble() -> list[Predictor]:
    """The predictor battery used by Pragma's resource monitor."""
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(5),
        SlidingWindowMean(20),
        SlidingMedian(5),
        SlidingMedian(20),
        ExponentialSmoothing(0.2),
        ExponentialSmoothing(0.5),
        AdaptiveMean(32),
        AutoRegressive(3),
    ]
