"""Timestamped measurement streams with bounded history."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MeasurementStream"]


@dataclass(slots=True)
class MeasurementStream:
    """Append-only time series of (time, value) with a bounded window.

    Timestamps must be strictly increasing, matching a periodic sensor.
    """

    name: str
    capacity: int = 512
    _times: deque = field(default_factory=deque, repr=False)
    _values: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._times = deque(maxlen=self.capacity)
        self._values = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._values)

    def append(self, t: float, value: float) -> None:
        """Record a measurement; time must advance strictly."""
        if self._times and t <= self._times[-1]:
            raise ValueError(
                f"stream {self.name!r}: time {t} not after {self._times[-1]}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    @property
    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise ValueError(f"stream {self.name!r} is empty")
        return self._values[-1]

    @property
    def last_time(self) -> float:
        """Most recent timestamp."""
        if not self._times:
            raise ValueError(f"stream {self.name!r} is empty")
        return self._times[-1]

    def values(self, window: int | None = None) -> np.ndarray:
        """Values as an array, optionally only the trailing ``window``."""
        vals = np.fromiter(self._values, dtype=float, count=len(self._values))
        if window is not None:
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            vals = vals[-window:]
        return vals

    def times(self) -> np.ndarray:
        """All retained timestamps."""
        return np.fromiter(self._times, dtype=float, count=len(self._times))
