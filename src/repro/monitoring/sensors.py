"""System-level sensors sampling the simulated cluster.

Each sensor observes one attribute of one node (or link) with optional
multiplicative measurement noise — real NWS sensors are intrusive probes,
not oracle reads.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.gridsys.cluster import Cluster
from repro.util.rng import ensure_rng

__all__ = [
    "SystemSensor",
    "CpuAvailabilitySensor",
    "MemorySensor",
    "BandwidthSensor",
]


class SystemSensor(abc.ABC):
    """A probe measuring one scalar attribute of the environment."""

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        noise: float = 0.02,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not (0 <= node_id < cluster.num_nodes):
            raise ValueError(
                f"node {node_id} out of range [0, {cluster.num_nodes})"
            )
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.cluster = cluster
        self.node_id = node_id
        self.noise = noise
        self._rng = ensure_rng(seed)

    @property
    @abc.abstractmethod
    def attribute(self) -> str:
        """Attribute name ('cpu', 'memory', 'bandwidth')."""

    @abc.abstractmethod
    def _true_value(self, t: float) -> float:
        """Noise-free attribute value at time ``t``."""

    def measure(self, t: float) -> float:
        """Noisy measurement at time ``t`` (clipped to be non-negative)."""
        v = self._true_value(t)
        if self.noise:
            v *= 1.0 + self.noise * float(self._rng.standard_normal())
        return max(v, 0.0)


class CpuAvailabilitySensor(SystemSensor):
    """Fraction of the node's CPU available to the application, in [0, 1]."""

    @property
    def attribute(self) -> str:
        return "cpu"

    def _true_value(self, t: float) -> float:
        if not self.cluster.failures.is_alive(self.node_id, t):
            return 0.0
        avail = 1.0 - self.cluster.background_load(self.node_id, t)
        # Degraded windows (gray failures) show up in the sensor stream as
        # reduced availability — this is what feeds graded suspicion.
        if self.cluster.failures.degraded:
            avail *= self.cluster.failures.capacity_factor(self.node_id, t)
        return avail

    def measure(self, t: float) -> float:
        return min(super().measure(t), 1.0)


class MemorySensor(SystemSensor):
    """Available memory on the node (static capacity in this simulator)."""

    @property
    def attribute(self) -> str:
        return "memory"

    def _true_value(self, t: float) -> float:
        if not self.cluster.failures.is_alive(self.node_id, t):
            return 0.0
        return self.cluster.nodes[self.node_id].memory


class BandwidthSensor(SystemSensor):
    """Observed link bandwidth from this node into the switch fabric.

    Background CPU load degrades achievable bandwidth slightly (the TCP
    stack competes for cycles), which gives the capacity calculator a
    genuinely time-varying third input.
    """

    @property
    def attribute(self) -> str:
        return "bandwidth"

    def _true_value(self, t: float) -> float:
        if not self.cluster.failures.is_alive(self.node_id, t):
            return 0.0
        degradation = 1.0 - 0.3 * self.cluster.background_load(self.node_id, t)
        return self.cluster.link.bandwidth * degradation
