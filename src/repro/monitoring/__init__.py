"""System characterization: NWS-style monitoring and forecasting.

Section 3.1: "The Pragma system characterization component builds on
existing infrastructure, such as NWS".  The Network Weather Service keeps
time series of resource measurements (CPU availability, memory, link
bandwidth) and forecasts each series with a *dynamic ensemble*: many simple
predictors run in parallel and the one with the lowest accumulated postcast
error supplies the forecast.  This package reimplements that design over
the simulated cluster.
"""

from repro.monitoring.streams import MeasurementStream
from repro.monitoring.forecasting import (
    Predictor,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingMedian,
    ExponentialSmoothing,
    AdaptiveMean,
    AutoRegressive,
    ForecasterEnsemble,
    default_ensemble,
)
from repro.monitoring.sensors import (
    SystemSensor,
    CpuAvailabilitySensor,
    MemorySensor,
    BandwidthSensor,
)
from repro.monitoring.monitor import ResourceMonitor, NodeState

__all__ = [
    "MeasurementStream",
    "Predictor",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "SlidingMedian",
    "ExponentialSmoothing",
    "AdaptiveMean",
    "AutoRegressive",
    "ForecasterEnsemble",
    "default_ensemble",
    "SystemSensor",
    "CpuAvailabilitySensor",
    "MemorySensor",
    "BandwidthSensor",
    "ResourceMonitor",
    "NodeState",
]
