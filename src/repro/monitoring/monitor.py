"""The resource-monitor facade: sensors + streams + forecasters per node."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.gridsys.cluster import Cluster
from repro.monitoring.forecasting import ForecasterEnsemble, default_ensemble
from repro.monitoring.sensors import (
    BandwidthSensor,
    CpuAvailabilitySensor,
    MemorySensor,
    SystemSensor,
)
from repro.monitoring.streams import MeasurementStream
from repro.util.rng import ensure_rng, spawn_rng

__all__ = ["NodeState", "ResourceMonitor"]

ATTRIBUTES = ("cpu", "memory", "bandwidth")


@dataclass(frozen=True, slots=True)
class NodeState:
    """Most recent characterization of one node."""

    node_id: int
    cpu: float
    memory: float
    bandwidth: float

    def as_dict(self) -> dict[str, float]:
        """Attribute name → value."""
        return {"cpu": self.cpu, "memory": self.memory, "bandwidth": self.bandwidth}


class ResourceMonitor:
    """NWS-like monitoring of a simulated cluster.

    One sensor + measurement stream + forecaster ensemble per
    (node, attribute).  Call :meth:`sample` periodically with advancing
    simulation time; query current values with :meth:`current` and
    one-step-ahead forecasts with :meth:`forecast`.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        noise: float = 0.02,
        seed: int = 0,
        history: int = 512,
    ) -> None:
        self.cluster = cluster
        rngs = spawn_rng(ensure_rng(seed), cluster.num_nodes * len(ATTRIBUTES))
        self._sensors: dict[tuple[int, str], SystemSensor] = {}
        self._streams: dict[tuple[int, str], MeasurementStream] = {}
        self._forecasters: dict[tuple[int, str], ForecasterEnsemble] = {}
        sensor_cls = {
            "cpu": CpuAvailabilitySensor,
            "memory": MemorySensor,
            "bandwidth": BandwidthSensor,
        }
        i = 0
        for node in range(cluster.num_nodes):
            for attr in ATTRIBUTES:
                key = (node, attr)
                self._sensors[key] = sensor_cls[attr](
                    cluster, node, noise=noise, seed=rngs[i]
                )
                self._streams[key] = MeasurementStream(
                    name=f"node{node}.{attr}", capacity=history
                )
                self._forecasters[key] = ForecasterEnsemble(default_ensemble())
                i += 1

    def sample(self, t: float) -> None:
        """Measure every (node, attribute) at simulation time ``t``.

        With observability enabled the sweep also aggregates the
        forecaster ensembles' own postcast errors on the CPU streams —
        how far the monitor's forecasts of this sweep's values were off —
        into the ``monitor.forecast_abs_error`` histogram and a
        ``forecast-sweep`` timeline event.
        """
        cpu_errors: list[float] = []
        for key, sensor in self._sensors.items():
            v = sensor.measure(t)
            self._streams[key].append(t, v)
            err = self._forecasters[key].update(v)
            if err is not None and key[1] == "cpu":
                cpu_errors.append(err)
        obs.counter("monitor.samples").inc(len(self._sensors))
        obs.counter("monitor.sweeps").inc()
        if cpu_errors:
            mean_err = sum(cpu_errors) / len(cpu_errors)
            obs.histogram("monitor.forecast_abs_error").observe(mean_err)
            tl = obs.get_timeline()
            if tl.enabled:
                tl.event(
                    "forecast-sweep", t=t, mean_cpu_abs_error=mean_err,
                    nodes=len(cpu_errors),
                )

    def sample_range(self, t0: float, t1: float, period: float = 1.0) -> None:
        """Sample periodically over [t0, t1) with the given period."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        t = t0
        while t < t1:
            self.sample(t)
            t += period

    def current(self, node_id: int) -> NodeState:
        """Latest measured state of ``node_id``."""
        vals = {attr: self._streams[(node_id, attr)].last for attr in ATTRIBUTES}
        return NodeState(node_id=node_id, **vals)

    def forecast(self, node_id: int, attribute: str) -> float:
        """One-step-ahead forecast for (node, attribute)."""
        if attribute not in ATTRIBUTES:
            raise ValueError(
                f"unknown attribute {attribute!r}; choose from {ATTRIBUTES}"
            )
        return self._forecasters[(node_id, attribute)].predict()

    def forecast_vector(self, attribute: str) -> np.ndarray:
        """Forecasts of one attribute across all nodes."""
        return np.array(
            [self.forecast(n, attribute) for n in range(self.cluster.num_nodes)]
        )

    def current_matrix(self) -> dict[str, np.ndarray]:
        """Latest measurements per attribute across all nodes."""
        return {
            attr: np.array(
                [
                    self._streams[(n, attr)].last
                    for n in range(self.cluster.num_nodes)
                ]
            )
            for attr in ATTRIBUTES
        }

    def stream(self, node_id: int, attribute: str) -> MeasurementStream:
        """Raw measurement stream (inspection / tests)."""
        return self._streams[(node_id, attribute)]

    def ensemble(self, node_id: int, attribute: str) -> ForecasterEnsemble:
        """Forecaster ensemble (inspection / ablation benches)."""
        return self._forecasters[(node_id, attribute)]
