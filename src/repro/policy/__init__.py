"""Application characterization and the adaptation policy knowledge base.

Two halves:

- :mod:`repro.policy.octant` — the octant approach (Figure 2): classify
  SAMR application state along three binary axes (adaptation pattern,
  activity dynamics, computation/communication dominance) into octants
  I–VIII.
- :mod:`repro.policy.kb` / :mod:`repro.policy.rules` /
  :mod:`repro.policy.fuzzy` — the programmable policy base (Section 3.5):
  rules relating state abstractions to configurations, with associative
  partial-match queries and fuzzy reasoning.
- :mod:`repro.policy.defaults` — the paper's policy content, including the
  Table 2 octant → partitioner recommendations.
"""

from repro.policy.octant import (
    Octant,
    OctantAxes,
    OctantThresholds,
    AppSignals,
    OctantState,
    classify_hierarchy,
    classify_trace,
)
from repro.policy.fuzzy import FuzzySet, triangular, trapezoidal
from repro.policy.rules import Condition, Rule
from repro.policy.kb import PolicyKnowledgeBase, QueryResult
from repro.policy.derive import derive_recommendations, requirement_weights
from repro.policy.serialize import kb_to_json, kb_from_json, save_kb, load_kb
from repro.policy.defaults import (
    TABLE2_RECOMMENDATIONS,
    default_policy_base,
    octant_partitioner_rules,
)

__all__ = [
    "Octant",
    "OctantAxes",
    "OctantThresholds",
    "AppSignals",
    "OctantState",
    "classify_hierarchy",
    "classify_trace",
    "FuzzySet",
    "triangular",
    "trapezoidal",
    "Condition",
    "Rule",
    "PolicyKnowledgeBase",
    "QueryResult",
    "derive_recommendations",
    "requirement_weights",
    "kb_to_json",
    "kb_from_json",
    "save_kb",
    "load_kb",
    "TABLE2_RECOMMENDATIONS",
    "default_policy_base",
    "octant_partitioner_rules",
]
