"""Knowledge-base persistence.

Section 3.5 makes the policy base *programmable* — operators extend and
modify rules at runtime.  This module persists a knowledge base to JSON
so programmed policies survive across sessions, covering exact conditions
(including octant values) and factory-built fuzzy sets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.policy.fuzzy import (
    FuzzySet,
    crisp_above,
    crisp_below,
    trapezoidal,
    triangular,
)
from repro.policy.kb import PolicyKnowledgeBase
from repro.policy.octant import Octant
from repro.policy.rules import Condition, Rule

__all__ = ["kb_to_json", "kb_from_json", "save_kb", "load_kb"]

_FUZZY_FACTORIES = {
    "triangular": triangular,
    "trapezoidal": trapezoidal,
    "crisp_above": crisp_above,
    "crisp_below": crisp_below,
}


def _encode_value(value: Any) -> Any:
    if isinstance(value, Octant):
        return {"__octant__": value.value}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__octant__" in value:
        return Octant(value["__octant__"])
    return value


def _encode_fuzzy(fset: FuzzySet) -> dict:
    if fset.spec is None:
        raise ValueError(
            f"fuzzy set {fset.name!r} was not built by a repro.policy.fuzzy "
            "factory and cannot be serialized"
        )
    kind, *params = fset.spec
    return {"kind": kind, "name": fset.name, "params": list(params)}


def _decode_fuzzy(d: dict) -> FuzzySet:
    kind = d["kind"]
    if kind not in _FUZZY_FACTORIES:
        raise ValueError(f"unknown fuzzy set kind {kind!r}")
    return _FUZZY_FACTORIES[kind](d["name"], *d["params"])


def kb_to_json(kb: PolicyKnowledgeBase) -> str:
    """Serialize every rule of the knowledge base to a JSON string."""
    rules = []
    for rule in kb.rules():
        rules.append(
            {
                "name": rule.name,
                "priority": rule.priority,
                "description": rule.description,
                "exact": {
                    k: _encode_value(v) for k, v in rule.condition.exact.items()
                },
                "fuzzy": {
                    k: _encode_fuzzy(f) for k, f in rule.condition.fuzzy.items()
                },
                "action": {
                    k: _encode_value(v) for k, v in rule.action.items()
                },
            }
        )
    return json.dumps({"rules": rules}, indent=2)


def kb_from_json(text: str) -> PolicyKnowledgeBase:
    """Inverse of :func:`kb_to_json`."""
    data = json.loads(text)
    kb = PolicyKnowledgeBase()
    for r in data["rules"]:
        action = {k: _decode_value(v) for k, v in r["action"].items()}
        # JSON turns action tuples into lists; restore known tuple fields.
        if isinstance(action.get("partitioners"), list):
            action["partitioners"] = tuple(action["partitioners"])
        kb.add(
            Rule(
                name=r["name"],
                condition=Condition(
                    exact={
                        k: _decode_value(v) for k, v in r["exact"].items()
                    },
                    fuzzy={
                        k: _decode_fuzzy(f) for k, f in r["fuzzy"].items()
                    },
                ),
                action=action,
                priority=r["priority"],
                description=r.get("description", ""),
            )
        )
    return kb


def save_kb(kb: PolicyKnowledgeBase, path: str | Path) -> None:
    """Write the knowledge base to ``path``."""
    Path(path).write_text(kb_to_json(kb))


def load_kb(path: str | Path) -> PolicyKnowledgeBase:
    """Read a knowledge base written by :func:`save_kb`."""
    return kb_from_json(Path(path).read_text())
