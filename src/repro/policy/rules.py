"""Policy rules: conditions over state attributes → configuration actions.

A rule encodes one heuristic of the kind the paper sketches — "If on a
networked cluster and AMR application is in octant VI use latency-tolerant
communication" — as a :class:`Condition` (exact values and/or fuzzy sets
over named attributes) plus an action dictionary and a priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.policy.fuzzy import FuzzySet

__all__ = ["Condition", "Rule"]


@dataclass(frozen=True, slots=True)
class Condition:
    """Conjunction of attribute constraints.

    ``exact`` entries must match by equality; ``fuzzy`` entries contribute
    a membership degree.  The condition's match degree against a state is
    the *minimum* over all constraints (standard fuzzy AND); attributes
    missing from the state make the rule inapplicable (degree 0) unless
    the query is partial — see :meth:`match`.
    """

    exact: Mapping[str, Any] = field(default_factory=dict)
    fuzzy: Mapping[str, FuzzySet] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = set(self.exact) & set(self.fuzzy)
        if overlap:
            raise ValueError(
                f"attributes {sorted(overlap)} appear in both exact and fuzzy"
            )
        if not self.exact and not self.fuzzy:
            raise ValueError("condition must constrain at least one attribute")

    @property
    def attributes(self) -> set[str]:
        """All attribute names the condition constrains."""
        return set(self.exact) | set(self.fuzzy)

    def match(self, state: Mapping[str, Any], *, partial: bool = False) -> float:
        """Degree in [0, 1] to which ``state`` satisfies the condition.

        With ``partial=True`` (associative queries), constraints on
        attributes absent from the state are skipped rather than failing —
        agents may query with whatever subset of the state they hold.
        """
        degrees: list[float] = []
        for attr, expected in self.exact.items():
            if attr not in state:
                if partial:
                    continue
                return 0.0
            degrees.append(1.0 if state[attr] == expected else 0.0)
        for attr, fset in self.fuzzy.items():
            if attr not in state:
                if partial:
                    continue
                return 0.0
            degrees.append(fset(float(state[attr])))
        if not degrees:
            # Partial query constrained nothing the state mentions.
            return 0.0
        return min(degrees)


@dataclass(frozen=True, slots=True)
class Rule:
    """One policy: condition → action, with a priority for tie-breaking."""

    name: str
    condition: Condition
    action: Mapping[str, Any]
    priority: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule needs a non-empty name")
        if not self.action:
            raise ValueError(f"rule {self.name!r} has an empty action")
