"""The paper's default policy content.

``TABLE2_RECOMMENDATIONS`` reproduces Table 2 verbatim: the ordered
partitioner recommendations per application-state octant.  The rule
factory functions turn that table (plus the configuration heuristics of
Sections 3.5/4.3 — partitioning granularity and communication mechanism
per octant) into :class:`~repro.policy.rules.Rule` objects for the
knowledge base.
"""

from __future__ import annotations

from repro.policy.kb import PolicyKnowledgeBase
from repro.policy.octant import Octant, OctantAxes
from repro.policy.rules import Condition, Rule

__all__ = [
    "TABLE2_RECOMMENDATIONS",
    "octant_partitioner_rules",
    "default_policy_base",
]

#: Table 2 — "Recommendations for mapping octants onto partitioning schemes".
TABLE2_RECOMMENDATIONS: dict[Octant, tuple[str, ...]] = {
    Octant.I: ("pBD-ISP", "G-MISP+SP"),
    Octant.II: ("pBD-ISP",),
    Octant.III: ("G-MISP+SP", "SP-ISP"),
    Octant.IV: ("G-MISP+SP", "SP-ISP", "ISP"),
    Octant.V: ("pBD-ISP",),
    Octant.VI: ("pBD-ISP",),
    Octant.VII: ("G-MISP+SP",),
    Octant.VIII: ("G-MISP+SP", "ISP"),
}


def _octant_config(octant: Octant) -> dict:
    """Per-octant partitioner configuration (Section 4.3: partitioners are
    "configured with appropriate parameters such as partitioning
    granularity and threshold").

    Computation-dominated octants use a finer partitioning granularity —
    balance is what matters and the extra partitioning cost amortizes over
    the heavy compute; communication-dominated and high-dynamics octants
    use coarser grain and latency-tolerant communication.
    """
    axes = OctantAxes.of(octant)
    granularity = 1 if axes.comm_dominated else 2
    comm_mechanism = (
        "latency-tolerant" if axes.comm_dominated or axes.high_dynamics
        else "synchronous"
    )
    return {
        "granularity": granularity,
        "comm_mechanism": comm_mechanism,
        # Repartition eagerly in high-dynamics octants, lazily otherwise.
        "repartition_hysteresis": 0 if axes.high_dynamics else 1,
    }


def octant_partitioner_rules() -> list[Rule]:
    """One rule per octant: Table 2 recommendation plus configuration."""
    rules = []
    for octant, partitioners in TABLE2_RECOMMENDATIONS.items():
        rules.append(
            Rule(
                name=f"octant-{octant.value}-partitioner",
                condition=Condition(exact={"octant": octant}),
                action={
                    "partitioners": partitioners,
                    "partitioner": partitioners[0],
                    **_octant_config(octant),
                },
                priority=1.0,
                description=(
                    f"Table 2: octant {octant.value} -> "
                    f"{', '.join(partitioners)}"
                ),
            )
        )
    return rules


def _example_rules() -> list[Rule]:
    """The paper's Section 3.5 example heuristics, encoded literally."""
    return [
        Rule(
            name="cluster-octant-VI-latency-tolerant",
            condition=Condition(
                exact={"system": "networked-cluster", "octant": Octant.VI}
            ),
            action={"comm_mechanism": "latency-tolerant"},
            priority=2.0,
            description=(
                "If on a networked cluster and AMR application is in octant "
                "VI use latency-tolerant communication"
            ),
        ),
        Rule(
            name="small-cache-small-grids",
            condition=Condition(exact={"cache": "small"}),
            action={"max_refined_patch_cells": 4096},
            priority=0.5,
            description=(
                "If cache size is small use refined grid components no "
                "larger than Q"
            ),
        ),
    ]


def default_policy_base() -> PolicyKnowledgeBase:
    """Knowledge base preloaded with the paper's policies."""
    return PolicyKnowledgeBase(octant_partitioner_rules() + _example_rules())
