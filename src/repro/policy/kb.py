"""The programmable policy knowledge base."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.policy.rules import Rule

__all__ = ["QueryResult", "PolicyKnowledgeBase"]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """One matched rule with its match degree."""

    rule: Rule
    degree: float

    @property
    def score(self) -> float:
        """Ranking key: match degree weighted by rule priority."""
        return self.degree * self.rule.priority


class PolicyKnowledgeBase:
    """A programmable store of adaptation policies.

    Supports the operations Section 3.5 calls out: rules can be added,
    replaced and removed at runtime ("programmability of the knowledge
    base will allow rules to be modified, adapted and extended"), and
    queries may be partial and fuzzy.
    """

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self._rules: dict[str, Rule] = {}
        for rule in rules or []:
            self.add(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def add(self, rule: Rule, *, replace: bool = False) -> None:
        """Register a rule; refuses duplicates unless ``replace=True``."""
        if rule.name in self._rules and not replace:
            raise ValueError(
                f"rule {rule.name!r} already exists (pass replace=True to update)"
            )
        self._rules[rule.name] = rule

    def remove(self, name: str) -> Rule:
        """Delete and return a rule by name."""
        if name not in self._rules:
            raise KeyError(f"no rule named {name!r}")
        return self._rules.pop(name)

    def get(self, name: str) -> Rule:
        """Look up a rule by name."""
        if name not in self._rules:
            raise KeyError(f"no rule named {name!r}")
        return self._rules[name]

    def rules(self) -> list[Rule]:
        """All rules (registration order)."""
        return list(self._rules.values())

    def query(
        self,
        state: Mapping[str, Any],
        *,
        partial: bool = True,
        min_degree: float = 1e-9,
        top: int | None = None,
    ) -> list[QueryResult]:
        """Rank rules by match against ``state``.

        ``partial=True`` is the associative interface: the state may
        mention any subset of attributes.  Results are ordered by
        ``degree * priority`` descending, ties broken by rule name for
        determinism.
        """
        results = []
        for rule in self._rules.values():
            degree = rule.condition.match(state, partial=partial)
            if degree >= min_degree:
                results.append(QueryResult(rule=rule, degree=degree))
        results.sort(key=lambda r: (-r.score, r.rule.name))
        return results[:top] if top is not None else results

    def best_action(
        self, state: Mapping[str, Any], *, partial: bool = True
    ) -> Mapping[str, Any] | None:
        """Action of the best-matching rule, or ``None`` if nothing matches."""
        results = self.query(state, partial=partial, top=1)
        return results[0].rule.action if results else None

    def merged_action(
        self, state: Mapping[str, Any], *, partial: bool = True
    ) -> dict[str, Any]:
        """Union of all matching rules' actions, higher scores overriding.

        Rules are applied in ascending score order, so the best-matching /
        highest-priority rule wins every conflicting key while
        complementary keys (e.g. a communication-mechanism override on top
        of a partitioner recommendation) accumulate.
        """
        merged: dict[str, Any] = {}
        for result in reversed(self.query(state, partial=partial)):
            merged.update(result.rule.action)
        return merged
