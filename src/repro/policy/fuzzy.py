"""Fuzzy membership primitives for the policy base's associative interface.

Section 3.5: "the policy knowledge base will present an associative
interface that allows the agents to formulate partial queries and use
fuzzy reasoning."  Numeric rule conditions are fuzzy sets; a query value
matches with a degree in [0, 1] instead of a hard predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["FuzzySet", "triangular", "trapezoidal", "crisp_above", "crisp_below"]


@dataclass(frozen=True, slots=True)
class FuzzySet:
    """A named membership function over a scalar attribute.

    ``spec`` records how the set was constructed (kind + parameters) when
    it came from one of this module's factories — that is what makes a
    knowledge base serializable (:mod:`repro.policy.serialize`).  Hand
    built sets with arbitrary callables have ``spec=None`` and cannot be
    persisted.
    """

    name: str
    membership: Callable[[float], float]
    spec: tuple | None = None

    def __call__(self, x: float) -> float:
        mu = self.membership(float(x))
        if not (0.0 <= mu <= 1.0):
            raise ValueError(
                f"membership of fuzzy set {self.name!r} returned {mu}, "
                "expected a value in [0, 1]"
            )
        return mu


def triangular(name: str, lo: float, peak: float, hi: float) -> FuzzySet:
    """Triangular membership: 0 at ``lo``/``hi``, 1 at ``peak``."""
    if not (lo <= peak <= hi) or lo == hi:
        raise ValueError(f"need lo <= peak <= hi with lo < hi, got {(lo, peak, hi)}")

    def mu(x: float) -> float:
        if x <= lo or x >= hi:
            return 0.0
        if x == peak:
            return 1.0
        if x < peak:
            return (x - lo) / (peak - lo) if peak > lo else 1.0
        return (hi - x) / (hi - peak) if hi > peak else 1.0

    return FuzzySet(name, mu, spec=("triangular", lo, peak, hi))


def trapezoidal(name: str, lo: float, a: float, b: float, hi: float) -> FuzzySet:
    """Trapezoidal membership: plateau of 1 between ``a`` and ``b``."""
    if not (lo <= a <= b <= hi) or lo == hi:
        raise ValueError(f"need lo <= a <= b <= hi with lo < hi, got {(lo, a, b, hi)}")

    def mu(x: float) -> float:
        if x < lo or x > hi:
            return 0.0
        if a <= x <= b:
            return 1.0
        if x < a:
            return (x - lo) / (a - lo) if a > lo else 1.0
        return (hi - x) / (hi - b) if hi > b else 1.0

    return FuzzySet(name, mu, spec=("trapezoidal", lo, a, b, hi))


def crisp_above(name: str, threshold: float) -> FuzzySet:
    """Hard step: 1 at or above the threshold, else 0."""
    return FuzzySet(name, lambda x: 1.0 if x >= threshold else 0.0,
                    spec=("crisp_above", threshold))


def crisp_below(name: str, threshold: float) -> FuzzySet:
    """Hard step: 1 strictly below the threshold, else 0."""
    return FuzzySet(name, lambda x: 1.0 if x < threshold else 0.0,
                    spec=("crisp_below", threshold))
