"""Deriving octant → partitioner recommendations from measurements.

Table 2 encodes expert knowledge ("we then assign partitioner(s) to
application state-octants based on their ability to meet the requirements
of that octant").  This module mechanizes that assignment: it takes an
adaptation trace, groups snapshots by octant, scores every partitioner on
the five-component PAC metric over each group, weights the components by
the octant's *requirements* (communication-dominated octants care about
communication volume and migration; computation-dominated octants care
about load balance; high-dynamics octants penalize partitioning time and
migration), and ranks.

The derived ranking can be compared against — or substituted for — the
paper's Table 2 via :func:`recommendations_to_rules`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.amr.trace import AdaptationTrace
from repro.partitioners import PARTITIONER_REGISTRY, build_units, evaluate_partition
from repro.policy.octant import Octant, OctantAxes, OctantThresholds, classify_trace

__all__ = ["OctantWeights", "derive_recommendations", "requirement_weights"]

#: PAC metric component names in fixed order
_COMPONENTS = (
    "load_imbalance_pct",
    "comm_volume",
    "data_migration",
    "partition_time",
    "overhead",
)


@dataclass(frozen=True, slots=True)
class OctantWeights:
    """Relative importance of the PAC components for one octant."""

    load_imbalance: float
    comm: float
    migration: float
    partition_time: float
    overhead: float

    def as_array(self) -> np.ndarray:
        w = np.array(
            [
                self.load_imbalance,
                self.comm,
                self.migration,
                self.partition_time,
                self.overhead,
            ]
        )
        total = w.sum()
        if total <= 0:
            raise ValueError("octant weights must have a positive sum")
        return w / total


def requirement_weights(octant: Octant) -> OctantWeights:
    """The octant's partitioning requirements as PAC-component weights.

    Encodes Section 4.2's reasoning: the pattern axis sets how much load
    balance is worth, the dominance axis how much communication is worth,
    and the dynamics axis how much repartitioning speed and migration are
    worth.
    """
    axes = OctantAxes.of(octant)
    balance = 1.0 if not axes.comm_dominated else 0.35
    comm = 1.0 if axes.comm_dominated else 0.25
    migration = 0.7 if axes.high_dynamics else 0.25
    ptime = 0.5 if axes.high_dynamics else 0.15
    overhead = 0.35 if axes.scattered else 0.2
    return OctantWeights(
        load_imbalance=balance,
        comm=comm,
        migration=migration,
        partition_time=ptime,
        overhead=overhead,
    )


def derive_recommendations(
    trace: AdaptationTrace,
    *,
    num_procs: int = 64,
    granularity: int = 2,
    thresholds: OctantThresholds | None = None,
    partitioners: dict | None = None,
    max_snapshots_per_octant: int = 8,
) -> dict[Octant, tuple[str, ...]]:
    """Rank partitioners per octant from measured PAC metrics.

    For every octant present in the trace, up to
    ``max_snapshots_per_octant`` representative snapshots are partitioned
    with every candidate; each PAC component is min-max normalized across
    candidates per snapshot (so components with different units compose),
    weighted by :func:`requirement_weights`, and averaged.  Lower score
    ranks first.
    """
    if partitioners is None:
        partitioners = {name: cls() for name, cls in PARTITIONER_REGISTRY.items()}
    states = classify_trace(trace, thresholds)
    by_octant: dict[Octant, list[int]] = defaultdict(list)
    for idx, state in enumerate(states):
        by_octant[state.octant].append(idx)

    out: dict[Octant, tuple[str, ...]] = {}
    for octant, indices in by_octant.items():
        # Spread the sample across the octant's occurrences.
        step = max(len(indices) // max_snapshots_per_octant, 1)
        sample = indices[::step][:max_snapshots_per_octant]
        weights = requirement_weights(octant).as_array()
        scores: dict[str, list[float]] = {name: [] for name in partitioners}
        prev_partitions = {name: None for name in partitioners}
        for idx in sample:
            units = build_units(
                trace[idx].hierarchy, granularity=granularity
            )
            rows = {}
            for name, part in partitioners.items():
                partition = part.partition(units, num_procs)
                metrics = evaluate_partition(
                    partition, prev_partitions[name]
                )
                prev_partitions[name] = partition
                rows[name] = np.array(
                    [getattr(metrics, c) for c in _COMPONENTS]
                )
            matrix = np.stack([rows[name] for name in partitioners])
            lo = matrix.min(axis=0)
            span = matrix.max(axis=0) - lo
            span[span == 0] = 1.0
            normalized = (matrix - lo) / span
            for k, name in enumerate(partitioners):
                scores[name].append(float(normalized[k] @ weights))
        ranking = sorted(partitioners, key=lambda n: np.mean(scores[n]))
        out[octant] = tuple(ranking)
    return out
