"""The octant approach for characterizing SAMR application state (Figure 2).

Application state is classified along three binary axes:

1. **Adaptation pattern** — localized (refinement concentrated in one
   contiguous region) vs scattered (many separate refined regions spread
   through the domain);
2. **Activity dynamics** — how fast the refinement footprint changes
   between regrids (a moving shock is high-dynamics, a slowly growing
   mixing zone is low-dynamics);
3. **Computation/communication dominance** — whether the hierarchy's
   runtime is dominated by cell updates (bulky refined regions) or by
   ghost-cell exchange (thin, high-surface refined regions).

Canonical octant numbering.  The paper's Figure 2 shows the cube without
an unambiguous bit assignment, so we fix the one that is consistent with
the Table 2 recommendations and the partitioner capabilities (pBD-ISP for
communication-dominated octants, the G-MISP+SP family for
computation-dominated ones):

===========  ==========  =========  =====
octant       pattern     dynamics   ratio
===========  ==========  =========  =====
I            localized   high       comm
II           scattered   high       comm
III          localized   high       comp
IV           scattered   high       comp
V            localized   low        comm
VI           scattered   low        comm
VII          localized   low        comp
VIII         scattered   low        comp
===========  ==========  =========  =====
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.amr.hierarchy import GridHierarchy
from repro.amr.trace import AdaptationTrace

__all__ = [
    "Octant",
    "OctantAxes",
    "OctantThresholds",
    "AppSignals",
    "OctantState",
    "classify_hierarchy",
    "classify_trace",
]


class Octant(enum.Enum):
    """Octants I–VIII of the application-state cube."""

    I = "I"
    II = "II"
    III = "III"
    IV = "IV"
    V = "V"
    VI = "VI"
    VII = "VII"
    VIII = "VIII"


@dataclass(frozen=True, slots=True)
class OctantAxes:
    """The three binary axis values behind an octant."""

    scattered: bool
    high_dynamics: bool
    comm_dominated: bool

    def octant(self) -> Octant:
        """Map axis values to the canonical octant numeral."""
        table = {
            (False, True, True): Octant.I,
            (True, True, True): Octant.II,
            (False, True, False): Octant.III,
            (True, True, False): Octant.IV,
            (False, False, True): Octant.V,
            (True, False, True): Octant.VI,
            (False, False, False): Octant.VII,
            (True, False, False): Octant.VIII,
        }
        return table[(self.scattered, self.high_dynamics, self.comm_dominated)]

    @classmethod
    def of(cls, octant: Octant) -> "OctantAxes":
        """Inverse of :meth:`octant`."""
        for scattered in (False, True):
            for dyn in (False, True):
                for comm in (False, True):
                    axes = cls(scattered, dyn, comm)
                    if axes.octant() is octant:
                        return axes
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True, slots=True)
class OctantThresholds:
    """Calibration of the three binary axis decisions.

    Defaults were calibrated on the RM3D reference trace; see the
    ``test_table3_rm3d_octants`` benchmark.
    """

    #: scattered if refined footprint has at least this many components ...
    min_components_scattered: int = 4
    #: ... or its normalized centroid spread exceeds this
    min_spread_scattered: float = 0.40
    #: high dynamics if footprint change fraction per regrid exceeds this
    min_activity_high: float = 0.18
    #: communication-dominated if surface-to-compute ratio exceeds this
    min_comm_ratio: float = 0.095

    def __post_init__(self) -> None:
        if self.min_components_scattered < 1:
            raise ValueError("min_components_scattered must be >= 1")
        for name in ("min_spread_scattered", "min_activity_high", "min_comm_ratio"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True, slots=True)
class AppSignals:
    """Raw application-characterization signals for one snapshot."""

    num_components: int      # connected refined regions
    spread: float            # normalized refined-centroid spread, [0, 1]
    activity: float          # refined-footprint change fraction vs previous
    comm_ratio: float        # ghost-surface to compute-load ratio
    refined_fraction: float  # refined share of the base domain


@dataclass(frozen=True, slots=True)
class OctantState:
    """Classification result for one snapshot."""

    step: int
    octant: Octant
    axes: OctantAxes
    signals: AppSignals


def _signals(
    hierarchy: GridHierarchy,
    prev_mask: np.ndarray | None,
    cur_mask: np.ndarray | None = None,
) -> AppSignals:
    mask = hierarchy.refined_mask() if cur_mask is None else cur_mask
    if mask.any():
        labeled, n_comp = ndimage.label(mask)
        refined_fraction = float(mask.mean())
    else:
        n_comp = 0
        refined_fraction = 0.0
    spread = hierarchy.adaptation_scatter()
    comm_ratio = hierarchy.comm_to_comp_ratio()
    if prev_mask is None:
        activity = 0.0
    else:
        union = np.logical_or(mask, prev_mask).sum()
        if union == 0:
            activity = 0.0
        else:
            activity = float(np.logical_xor(mask, prev_mask).sum() / union)
    return AppSignals(
        num_components=int(n_comp),
        spread=spread,
        activity=activity,
        comm_ratio=comm_ratio,
        refined_fraction=refined_fraction,
    )


def _axes_from_signals(
    sig: AppSignals, thresholds: OctantThresholds
) -> OctantAxes:
    scattered = (
        sig.num_components >= thresholds.min_components_scattered
        or sig.spread > thresholds.min_spread_scattered
    )
    high_dynamics = sig.activity > thresholds.min_activity_high
    comm_dominated = sig.comm_ratio > thresholds.min_comm_ratio
    return OctantAxes(
        scattered=scattered,
        high_dynamics=high_dynamics,
        comm_dominated=comm_dominated,
    )


def classify_hierarchy(
    hierarchy: GridHierarchy,
    previous: GridHierarchy | None = None,
    thresholds: OctantThresholds | None = None,
) -> tuple[Octant, AppSignals]:
    """Classify one hierarchy, using ``previous`` for the dynamics axis.

    Without a previous hierarchy the dynamics axis defaults to *low*
    (activity 0); trace-level classification (:func:`classify_trace`)
    substitutes the forward difference for the first snapshot instead.
    """
    thresholds = thresholds or OctantThresholds()
    prev_mask = previous.refined_mask() if previous is not None else None
    sig = _signals(hierarchy, prev_mask)
    axes = _axes_from_signals(sig, thresholds)
    return axes.octant(), sig


def classify_trace(
    trace: AdaptationTrace,
    thresholds: OctantThresholds | None = None,
) -> list[OctantState]:
    """Classify every snapshot of a trace.

    The dynamics signal for snapshot *t* is the footprint change from
    *t-1* to *t*; the first snapshot uses the forward change to *t+1*
    (the startup transient is measured, not assumed).
    """
    thresholds = thresholds or OctantThresholds()
    if len(trace) == 0:
        return []
    masks = [s.hierarchy.refined_mask() for s in trace]
    out: list[OctantState] = []
    for idx, snap in enumerate(trace):
        if idx > 0:
            prev_mask = masks[idx - 1]
        elif len(trace) > 1:
            prev_mask = masks[1]  # forward difference for the first snapshot
        else:
            prev_mask = None
        sig = _signals(snap.hierarchy, prev_mask, cur_mask=masks[idx])
        axes = _axes_from_signals(sig, thresholds)
        out.append(
            OctantState(step=snap.step, octant=axes.octant(), axes=axes, signals=sig)
        )
    return out
