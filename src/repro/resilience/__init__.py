"""Fault tolerance for the Pragma reproduction.

The paper lists "respond to system failures" among the CATALINA control
network's responsibilities; this package supplies the machinery:

- :mod:`~repro.resilience.detector` — heartbeat/lease failure detection
  with configurable detection latency, fed by monitoring sensors,
- :mod:`~repro.resilience.checkpoint` — coordinated checkpoint/restart of
  the SAMR grid hierarchy at regrid boundaries, with a rollback cost
  model,
- :mod:`~repro.resilience.durable` — a crash-consistent on-disk
  checkpoint store (atomic rename, checksummed records, walk-back
  restore) plus the torn-write/bit-flip fault injector,
- :mod:`~repro.resilience.recovery` — the :class:`FaultTolerance` knob
  bundle and per-recovery bookkeeping consumed by the execution
  simulator's rollback + redistribute + resume path,
- :mod:`~repro.resilience.chaos` — a chaos harness sweeping Poisson
  failure schedules through the quickstart scenario and asserting
  recovery invariants, plus the gray-failure chaos matrix (imported
  lazily: ``import repro.resilience.chaos``).
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointCostModel,
    CheckpointStore,
)
from repro.resilience.detector import (
    DetectionEvent,
    DetectorConfig,
    FailureDetector,
)
from repro.resilience.durable import DurableCheckpointStore, corrupt_checkpoint
from repro.resilience.recovery import FaultTolerance, RecoveryRecord

__all__ = [
    "Checkpoint",
    "CheckpointCostModel",
    "CheckpointStore",
    "DetectionEvent",
    "DetectorConfig",
    "DurableCheckpointStore",
    "FailureDetector",
    "FaultTolerance",
    "RecoveryRecord",
    "corrupt_checkpoint",
]
