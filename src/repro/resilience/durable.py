"""Crash-consistent on-disk checkpoint store.

:class:`~repro.resilience.checkpoint.CheckpointStore` keeps checkpoints in
memory — enough to model rollback *cost*, but a real Cactus-Worm restart
survives the driver process dying, which needs stable storage that stays
consistent under exactly the failures this repo injects: a crash mid-write
(torn record) and silent media corruption (bit flips).

Each checkpoint is one file written with the classic atomic recipe —
serialize to ``<name>.tmp``, ``fsync``, then ``os.replace`` onto the final
name (and ``fsync`` the directory so the rename itself is durable).  A
reader therefore never observes a half-renamed record; a crash before the
rename leaves only a ``.tmp`` file that restore ignores.

The record format is self-validating::

    {"format": "repro-ckpt-v1", "step": ..., "sim_time": ..., "num_cells": ...,
     "payload_bytes": N, "payload_sha256": "<hex>"}\\n
    <N bytes of JSON-serialized hierarchy>

Restore walks records newest-first and returns the first one that passes
validation, counting every rejected record under
``resilience.checkpoint_corrupt{reason}`` (``header`` / ``torn`` /
``checksum`` / ``decode``) — a corrupted newest checkpoint costs one
extra interval of rollback, never the run.  :func:`corrupt_checkpoint` is
the matching fault injector used by the chaos matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from pathlib import Path

from repro import obs
from repro.amr.hierarchy import GridHierarchy
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointCostModel,
    CheckpointStore,
)

__all__ = ["DurableCheckpointStore", "corrupt_checkpoint", "FORMAT_NAME"]

FORMAT_NAME = "repro-ckpt-v1"
_SUFFIX = ".ckpt"


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a completed rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FSes
        pass
    finally:
        os.close(fd)


class DurableCheckpointStore(CheckpointStore):
    """Checkpoint store that also persists every save to disk.

    Extends the in-memory :class:`CheckpointStore` (same cost model, same
    counters, same bounded ``keep`` window) with a crash-consistent file
    per checkpoint.  :meth:`restore` reads back from *disk*, walking to
    the newest record that validates, so a torn or bit-flipped newest
    record falls back to the previous one instead of poisoning recovery.
    """

    def __init__(
        self,
        directory: str | Path,
        cost_model: CheckpointCostModel | None = None,
        *,
        keep: int = 2,
        deep_copy: bool = False,
    ) -> None:
        super().__init__(cost_model, keep=keep, deep_copy=deep_copy)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep

    # -- record IO -----------------------------------------------------------------

    def record_paths(self) -> list[Path]:
        """Persisted records, oldest first (save order == name order)."""
        return sorted(self.directory.glob(f"*{_SUFFIX}"))

    def _persist(self, ck: Checkpoint) -> Path:
        payload = json.dumps(
            ck.hierarchy.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        header = {
            "format": FORMAT_NAME,
            "step": ck.step,
            "sim_time": ck.sim_time,
            "num_cells": ck.num_cells,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        name = f"ckpt-{self.saved:06d}-step{ck.step:06d}{_SUFFIX}"
        final = self.directory / name
        tmp = final.with_suffix(final.suffix + ".tmp")
        blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
        _fsync_dir(self.directory)
        return final

    def _prune(self) -> None:
        paths = self.record_paths()
        for stale in paths[: max(0, len(paths) - self._keep)]:
            stale.unlink(missing_ok=True)

    @staticmethod
    def validate(path: Path) -> tuple[Checkpoint | None, str | None]:
        """Deserialize one record; ``(checkpoint, None)`` or ``(None, reason)``.

        Reasons: ``header`` (unreadable or malformed header line),
        ``torn`` (payload length disagrees with the header — a write cut
        short), ``checksum`` (length right, bytes wrong — media bit rot),
        ``decode`` (checksummed bytes that no longer parse; in practice
        only reachable if the writer itself was buggy).
        """
        try:
            blob = Path(path).read_bytes()
        except OSError:
            return None, "header"
        head, sep, payload = blob.partition(b"\n")
        if not sep:
            return None, "header"
        try:
            header = json.loads(head)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "header"
        if (
            not isinstance(header, dict)
            or header.get("format") != FORMAT_NAME
            or not all(
                k in header
                for k in ("step", "sim_time", "num_cells", "payload_bytes",
                          "payload_sha256")
            )
        ):
            return None, "header"
        if len(payload) != header["payload_bytes"]:
            return None, "torn"
        if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
            return None, "checksum"
        try:
            hierarchy = GridHierarchy.from_dict(json.loads(payload))
        except Exception:
            return None, "decode"
        return (
            Checkpoint(
                step=int(header["step"]),
                sim_time=float(header["sim_time"]),
                num_cells=int(header["num_cells"]),
                hierarchy=hierarchy,
            ),
            None,
        )

    # -- CheckpointStore API -------------------------------------------------------

    def save(
        self, step: int, sim_time: float, hierarchy: GridHierarchy
    ) -> tuple[Checkpoint, float]:
        """Coordinated checkpoint, durably persisted before it is visible."""
        ck, seconds = super().save(step, sim_time, hierarchy)
        self._persist(ck)
        self._prune()
        return ck, seconds

    def restore(self) -> tuple[Checkpoint, float]:
        """Roll back to the newest *valid* on-disk checkpoint.

        Records that fail validation are skipped (newest-first) and
        counted under ``resilience.checkpoint_corrupt{reason}``; each
        skip widens the rollback by one checkpoint interval.  Raises
        ``RuntimeError`` when no record validates.
        """
        for path in reversed(self.record_paths()):
            ck, reason = self.validate(path)
            if ck is None:
                obs.counter("resilience.checkpoint_corrupt", reason=reason).inc()
                continue
            self.restored += 1
            seconds = self.cost.restore_seconds(ck.num_cells)
            obs.counter("resilience.restores").inc()
            obs.counter("resilience.restore_seconds").inc(seconds)
            return ck, seconds
        raise RuntimeError(
            f"no valid checkpoint record in {self.directory} "
            f"({len(self.record_paths())} present, all corrupt)"
        )


def corrupt_checkpoint(
    path: str | Path, mode: str = "torn", seed: int = 0
) -> None:
    """Damage one checkpoint record the way real storage fails.

    ``mode="torn"`` truncates the payload mid-record (a crash between the
    write and the fsync made durable only a prefix); ``mode="bitflip"``
    flips one deterministic bit inside the payload (silent media
    corruption the checksum must catch).  Both leave the header intact so
    validation exercises the payload checks, not the header parse.
    """
    p = Path(path)
    blob = p.read_bytes()
    head, sep, payload = blob.partition(b"\n")
    if not sep or not payload:
        raise ValueError(f"{p} is not a checkpoint record")
    if mode == "torn":
        cut = max(1, len(payload) // 2)
        blob = head + sep + payload[:cut]
    elif mode == "bitflip":
        rng = random.Random(seed)
        idx = rng.randrange(len(payload))
        flipped = payload[idx] ^ (1 << rng.randrange(8))
        blob = head + sep + payload[:idx] + bytes([flipped]) + payload[idx + 1:]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    p.write_bytes(blob)
