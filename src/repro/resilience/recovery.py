"""Fault-tolerance configuration and recovery bookkeeping types.

These are the types the execution simulator's rollback + redistribute +
resume path produces and consumes; they live here (not in
:mod:`repro.execsim`) so the agents layer and the chaos harness can share
them without importing the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.checkpoint import CheckpointCostModel
from repro.resilience.detector import DetectorConfig

__all__ = ["FaultTolerance", "RecoveryRecord"]


@dataclass(frozen=True, slots=True)
class FaultTolerance:
    """Knob bundle for fault-tolerant trace replay.

    The execution simulator builds one of these by default whenever the
    cluster carries a failure schedule, so failure scenarios run natively;
    pass one explicitly to tune detection latency, checkpoint costs, or
    the livelock guard (or to force checkpointing on a failure-free run).
    """

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    checkpoint: CheckpointCostModel = field(default_factory=CheckpointCostModel)
    #: recovery attempts tolerated within one regrid interval before the
    #: run is declared livelocked (failures arriving faster than the
    #: interval can be re-executed)
    max_recoveries_per_interval: int = 32
    #: when set, checkpoints are additionally persisted to this directory
    #: through a :class:`~repro.resilience.durable.DurableCheckpointStore`
    #: (atomic rename + checksummed records); ``None`` keeps the in-memory
    #: store only
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_recoveries_per_interval < 1:
            raise ValueError(
                f"max_recoveries_per_interval must be >= 1, "
                f"got {self.max_recoveries_per_interval}"
            )


@dataclass(frozen=True, slots=True)
class RecoveryRecord:
    """One detect → rollback → redistribute → resume cycle."""

    #: snapshot step of the regrid interval the failure interrupted
    step: int
    #: processors declared failed in this cycle
    failed_nodes: tuple[int, ...]
    #: simulation time of the declaration
    t_detected: float
    #: seconds from the earliest true failure to the declaration
    detection_lag: float
    #: rolled-back attempt seconds (work + stall discarded by the rollback)
    wasted_seconds: float
    #: checkpoint restore seconds
    restore_seconds: float
    #: degraded-mode repartition + migration seconds
    repartition_seconds: float
    #: coarse steps of the interval that had to be re-executed
    steps_lost: int
    #: surviving processors the interval resumed on
    live_after: tuple[int, ...]

    @property
    def recovery_lag(self) -> float:
        """Seconds from true failure until execution resumed.

        Detection lag plus restore plus repartition — the re-executed
        coarse steps are excluded (they are ordinary committed work).
        """
        return self.detection_lag + self.restore_seconds + self.repartition_seconds
