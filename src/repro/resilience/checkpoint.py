"""Coordinated checkpoint/restart of the SAMR grid hierarchy.

The Cactus-Worm loop — detect, checkpoint, reconfigure, resume — needs a
cost model for the "checkpoint" and "resume" legs.  Checkpoints are
*coordinated*: taken at regrid boundaries, where every processor is at the
same coarse step and the hierarchy is globally consistent, so no message
logging or channel flushing is required.  A restart rolls back to the most
recent checkpoint; all coarse steps executed since are re-run (their cost
is accounted as rollback overhead, never as committed work).

:class:`CheckpointCostModel` translates hierarchy size into seconds;
:class:`CheckpointStore` keeps the last ``keep`` checkpoints and charges
save/restore costs through :mod:`repro.obs`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.amr.hierarchy import GridHierarchy

__all__ = ["CheckpointCostModel", "Checkpoint", "CheckpointStore"]


@dataclass(frozen=True, slots=True)
class CheckpointCostModel:
    """Constants translating hierarchy size into checkpoint/restore seconds."""

    #: bytes of solver state serialized per hierarchy cell
    bytes_per_cell: float = 8.0
    #: aggregate bytes/second to stable storage when saving
    write_bandwidth: float = 2.0e8
    #: aggregate bytes/second from stable storage when restoring
    read_bandwidth: float = 4.0e8
    #: fixed seconds per coordinated checkpoint (barrier + metadata commit)
    coordination_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.bytes_per_cell < 0:
            raise ValueError(f"bytes_per_cell must be >= 0, got {self.bytes_per_cell}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("write/read bandwidth must be positive")
        if self.coordination_seconds < 0:
            raise ValueError(
                f"coordination_seconds must be >= 0, got {self.coordination_seconds}"
            )

    def checkpoint_seconds(self, num_cells: int) -> float:
        """Cost of one coordinated save of a ``num_cells`` hierarchy."""
        return (
            self.coordination_seconds
            + num_cells * self.bytes_per_cell / self.write_bandwidth
        )

    def restore_seconds(self, num_cells: int) -> float:
        """Cost of restoring a ``num_cells`` checkpoint onto survivors."""
        return (
            self.coordination_seconds
            + num_cells * self.bytes_per_cell / self.read_bandwidth
        )


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One coordinated checkpoint: where, when, and how big."""

    step: int
    sim_time: float
    num_cells: int
    hierarchy: GridHierarchy | None = None


class CheckpointStore:
    """Bounded store of the most recent coordinated checkpoints."""

    def __init__(
        self,
        cost_model: CheckpointCostModel | None = None,
        *,
        keep: int = 2,
        deep_copy: bool = False,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.cost = cost_model or CheckpointCostModel()
        self.deep_copy = deep_copy
        self._checkpoints: deque[Checkpoint] = deque(maxlen=keep)
        self.saved = 0
        self.restored = 0

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def latest(self) -> Checkpoint | None:
        """Most recent checkpoint, or ``None`` before the first save."""
        return self._checkpoints[-1] if self._checkpoints else None

    def save(
        self, step: int, sim_time: float, hierarchy: GridHierarchy
    ) -> tuple[Checkpoint, float]:
        """Take a coordinated checkpoint; returns it and the seconds charged.

        With ``deep_copy=True`` the hierarchy is copied; with the default
        ``deep_copy=False`` the checkpoint *aliases* the caller's object.
        Aliasing is only safe when the caller never mutates the hierarchy
        after saving — true for plain trace replay, where each step's
        snapshot is a fresh immutable object, but NOT for incremental
        replay, where the simulator regrids one hierarchy in place: an
        aliased checkpoint would silently track the mutations and a later
        restore would return post-failure state instead of the state at
        save time.  Callers that mutate in place must pass
        ``deep_copy=True`` (the execution simulator does this whenever
        ``incremental=True``).
        """
        ck = Checkpoint(
            step=step,
            sim_time=sim_time,
            num_cells=hierarchy.total_cells,
            hierarchy=hierarchy.copy() if self.deep_copy else hierarchy,
        )
        self._checkpoints.append(ck)
        self.saved += 1
        seconds = self.cost.checkpoint_seconds(ck.num_cells)
        obs.counter("resilience.checkpoints").inc()
        obs.counter("resilience.checkpoint_seconds").inc(seconds)
        return ck, seconds

    def restore(self) -> tuple[Checkpoint, float]:
        """Roll back to the most recent checkpoint; returns it and the cost."""
        if not self._checkpoints:
            raise RuntimeError("no checkpoint to restore from")
        ck = self._checkpoints[-1]
        self.restored += 1
        seconds = self.cost.restore_seconds(ck.num_cells)
        obs.counter("resilience.restores").inc()
        obs.counter("resilience.restore_seconds").inc(seconds)
        return ck, seconds
