"""Heartbeat/lease-based failure detection.

The control network's failure response starts with *detection*: CATALINA
agents cannot read the :class:`~repro.gridsys.failures.FailureSchedule`
ground truth, only sensor measurements.  A :class:`FailureDetector` owns
one health probe per node (a
:class:`~repro.monitoring.sensors.CpuAvailabilitySensor` by default — a
failed node measures zero availability), polls them every
``heartbeat_period`` seconds, and declares a node failed once
``misses_to_declare`` consecutive heartbeats are missed (its lease
expires).  Recovery is declared after ``recovery_confirmations``
consecutive healthy heartbeats.

The execution simulator replays traces in closed form rather than running
the polling loop, so the detector also exposes the analytic equivalent: an
outage beginning at ``t_fail`` is *declared* at ``t_fail +
detection_latency`` and a repair at ``t_recover`` is *recognized* at
``t_recover + recovery_latency``.  Outages shorter than the detection
latency never expire the lease and are never declared — transient blips
stall work but trigger no recovery.  Both faces share the same latency
constants, so agent-layer polling and simulator replay agree on when the
system "knows" about a failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.gridsys.cluster import Cluster
from repro.gridsys.failures import FailureEvent, FailureSchedule

__all__ = ["DetectorConfig", "DetectionEvent", "FailureDetector"]


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Lease parameters of the heartbeat failure detector."""

    #: seconds between heartbeat probes
    heartbeat_period: float = 1.0
    #: consecutive missed heartbeats that expire a node's lease
    misses_to_declare: int = 3
    #: consecutive healthy heartbeats that re-admit a declared-down node
    recovery_confirmations: int = 1
    #: a heartbeat reading at or below this counts as a miss
    healthy_threshold: float = 1e-9

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat_period must be positive, got {self.heartbeat_period}"
            )
        if self.misses_to_declare < 1:
            raise ValueError(
                f"misses_to_declare must be >= 1, got {self.misses_to_declare}"
            )
        if self.recovery_confirmations < 1:
            raise ValueError(
                f"recovery_confirmations must be >= 1, "
                f"got {self.recovery_confirmations}"
            )
        if self.healthy_threshold < 0:
            raise ValueError(
                f"healthy_threshold must be >= 0, got {self.healthy_threshold}"
            )

    @property
    def detection_latency(self) -> float:
        """Worst-case seconds from true failure to lease expiry."""
        return self.heartbeat_period * self.misses_to_declare

    @property
    def recovery_latency(self) -> float:
        """Seconds from true repair to the detector re-admitting the node."""
        return self.heartbeat_period * self.recovery_confirmations


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One state change declared by the detector."""

    node_id: int
    kind: str  # "failure" | "recovery"
    t_detected: float


class FailureDetector:
    """Turns ground-truth outages into detection events with latency."""

    def __init__(
        self,
        cluster: Cluster,
        config: DetectorConfig | None = None,
        *,
        message_center=None,
        sensor_noise: float = 0.0,
        sensor_seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.config = config or DetectorConfig()
        self.message_center = message_center
        self.events: list[DetectionEvent] = []
        n = cluster.num_nodes
        self._misses = [0] * n
        self._hits = [0] * n
        self._declared_down = [False] * n
        self._sensors: list | None = None
        self._sensor_noise = sensor_noise
        self._sensor_seed = sensor_seed
        self._detected_sched: FailureSchedule | None = None
        self._detected_sched_len = -1

    # -- sensor-fed polling face ---------------------------------------------------

    def _sensor(self, node_id: int):
        if self._sensors is None:
            from repro.monitoring.sensors import CpuAvailabilitySensor
            from repro.util.rng import ensure_rng, spawn_rng

            rngs = spawn_rng(
                ensure_rng(self._sensor_seed), self.cluster.num_nodes
            )
            self._sensors = [
                CpuAvailabilitySensor(
                    self.cluster, i, noise=self._sensor_noise, seed=rngs[i]
                )
                for i in range(self.cluster.num_nodes)
            ]
        return self._sensors[node_id]

    def poll(self, t: float) -> list[DetectionEvent]:
        """One heartbeat sweep at time ``t``; returns new declarations.

        Declared failures/recoveries are appended to :attr:`events` and —
        when a message center was attached — published on the
        ``node-failed`` / ``node-recovered`` topics for the ADM.
        """
        cfg = self.config
        new: list[DetectionEvent] = []
        for node in range(self.cluster.num_nodes):
            healthy = self._sensor(node).measure(t) > cfg.healthy_threshold
            if self._declared_down[node]:
                if healthy:
                    self._hits[node] += 1
                    if self._hits[node] >= cfg.recovery_confirmations:
                        self._declared_down[node] = False
                        self._misses[node] = 0
                        new.append(DetectionEvent(node, "recovery", t))
                else:
                    self._hits[node] = 0
            else:
                if healthy:
                    self._misses[node] = 0
                else:
                    self._misses[node] += 1
                    if self._misses[node] >= cfg.misses_to_declare:
                        self._declared_down[node] = True
                        self._hits[node] = 0
                        new.append(DetectionEvent(node, "failure", t))
        for ev in new:
            obs.counter("resilience.detections", kind=ev.kind).inc()
            if self.message_center is not None:
                self.message_center.publish(
                    "failure-detector",
                    "node-failed" if ev.kind == "failure" else "node-recovered",
                    {"node": ev.node_id},
                    time=t,
                )
        self.events.extend(new)
        return new

    def sweep(self, t0: float, t1: float) -> list[DetectionEvent]:
        """Poll every ``heartbeat_period`` over ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        out: list[DetectionEvent] = []
        t = t0
        while t < t1:
            out.extend(self.poll(t))
            t += self.config.heartbeat_period
        return out

    def declared_down_nodes(self) -> list[int]:
        """Nodes currently declared down by the polling loop."""
        return [i for i, d in enumerate(self._declared_down) if d]

    # -- analytic face (used during trace replay) -----------------------------------

    def _detected_schedule(self) -> FailureSchedule:
        """Ground truth shifted by the lease latencies.

        An outage ``[t_fail, t_recover)`` appears to the detector as
        ``[t_fail + detection_latency, t_recover + recovery_latency)``;
        outages too short to expire the lease disappear entirely.
        """
        truth = self.cluster.failures
        if self._detected_sched_len != len(truth.events):
            cfg = self.config
            shifted = FailureSchedule()
            for e in truth.events:
                t_det = e.t_fail + cfg.detection_latency
                t_clear = e.t_recover + cfg.recovery_latency
                if t_clear > t_det:
                    shifted.add(FailureEvent(e.node_id, t_det, t_clear))
            self._detected_sched = shifted
            self._detected_sched_len = len(truth.events)
        return self._detected_sched

    def detected_down(self, node_id: int, t: float) -> bool:
        """True while the detector considers ``node_id`` failed at ``t``."""
        return not self._detected_schedule().is_alive(node_id, t)

    def live_nodes(self, t: float, candidates=None) -> list[int]:
        """Nodes not declared down at ``t`` (subset of ``candidates``)."""
        if candidates is None:
            candidates = range(self.cluster.num_nodes)
        sched = self._detected_schedule()
        return [n for n in candidates if sched.is_alive(n, t)]

    def next_detected_alive(self, node_id: int, t: float) -> float:
        """Earliest time ``>= t`` at which the detector trusts the node."""
        return self._detected_schedule().next_alive_time(node_id, t)

    def detection_fire_time(self, node_id: int, t: float) -> float:
        """When the in-progress (undeclared) outage at ``t`` will be declared.

        ``inf`` when no covering outage lasts long enough to expire the
        lease (a transient blip the detector never sees).
        """
        cfg = self.config
        best = math.inf
        for e in self.cluster.failures.down_during(t, math.inf):
            if e.node_id != node_id or not e.is_down(t):
                continue
            t_det = e.t_fail + cfg.detection_latency
            if t_det >= t and t_det < e.t_recover + cfg.recovery_latency:
                best = min(best, t_det)
        return best

    def true_fail_time(self, node_id: int, t: float) -> float:
        """``t_fail`` of the outage whose detection window covers ``t``.

        Used to compute detection lag; falls back to ``t`` when no ground
        truth matches (shouldn't happen for declarations this detector
        produced).
        """
        cfg = self.config
        best = t
        for e in self.cluster.failures.events:
            if (
                e.node_id == node_id
                and e.t_fail + cfg.detection_latency <= t
                and t < e.t_recover + cfg.recovery_latency
            ):
                best = min(best, e.t_fail)
        return best
