"""Heartbeat/lease-based failure detection.

The control network's failure response starts with *detection*: CATALINA
agents cannot read the :class:`~repro.gridsys.failures.FailureSchedule`
ground truth, only sensor measurements.  A :class:`FailureDetector` owns
one health probe per node (a
:class:`~repro.monitoring.sensors.CpuAvailabilitySensor` by default — a
failed node measures zero availability), polls them every
``heartbeat_period`` seconds, and declares a node failed once
``misses_to_declare`` consecutive heartbeats are missed (its lease
expires).  Recovery is declared after ``recovery_confirmations``
consecutive healthy heartbeats.

Suspicion is *graded*, not binary.  Each node walks a four-state machine
driven by the sensor stream — ``healthy`` → ``degraded`` (availability
sagging but heartbeats answered) → ``suspect`` (lease expired:
``misses_to_declare`` consecutive misses) → ``dead`` (suspect for a
further ``eviction_hysteresis_polls`` misses).  :meth:`suspicion` exposes
the underlying phi-accrual-style score (misses normalized by the lease
length), and :meth:`capacity_estimate` an EWMA of measured availability
that the execution simulator routes into capacity-weighted partitioning
as a *down-weight* — a degraded node is slowed, never evacuated.  The
suspect → dead hysteresis is the flapping defense: a node must stay
suspect for the extra polls before recovery evicts it, so short flaps
stall work briefly instead of triggering a rollback storm.  The default
hysteresis of zero collapses suspect and dead into the PR-2 behavior.

The execution simulator replays traces in closed form rather than running
the polling loop, so the detector also exposes the analytic equivalent: an
outage beginning at ``t_fail`` is *declared* at ``t_fail +
detection_latency``, becomes *evictable* at ``t_fail + eviction_latency``,
and a repair at ``t_recover`` is *recognized* at ``t_recover +
recovery_latency``.  Outages shorter than the respective latency never
cross that line — transient blips stall work but trigger no recovery.
Both faces share the same latency constants, so agent-layer polling and
simulator replay agree on when the system "knows" about a failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.gridsys.cluster import Cluster
from repro.gridsys.failures import FailureEvent, FailureSchedule

__all__ = ["DetectorConfig", "DetectionEvent", "FailureDetector"]


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Lease parameters of the heartbeat failure detector."""

    #: seconds between heartbeat probes
    heartbeat_period: float = 1.0
    #: consecutive missed heartbeats that expire a node's lease (suspect)
    misses_to_declare: int = 3
    #: consecutive healthy heartbeats that re-admit a declared-down node
    recovery_confirmations: int = 1
    #: a heartbeat reading at or below this counts as a miss
    healthy_threshold: float = 1e-9
    #: extra consecutive misses a suspect node must accrue before it is
    #: declared dead and evacuated.  0 (the default) evicts at lease
    #: expiry; raising it suppresses flap-induced rollback storms at the
    #: cost of stalling that much longer on a genuine crash.
    eviction_hysteresis_polls: int = 0
    #: an answered heartbeat at or below this availability marks the node
    #: degraded (slow, not dead)
    degraded_threshold: float = 0.5
    #: EWMA smoothing for the per-node capacity estimate
    capacity_ewma_alpha: float = 0.3
    #: record degraded/restored transitions as :class:`DetectionEvent`\ s
    #: and publish ``node-degraded`` / ``node-restored`` (off by default:
    #: background-loaded clusters would emit them constantly)
    track_degraded: bool = False

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat_period must be positive, got {self.heartbeat_period}"
            )
        if self.misses_to_declare < 1:
            raise ValueError(
                f"misses_to_declare must be >= 1, got {self.misses_to_declare}"
            )
        if self.recovery_confirmations < 1:
            raise ValueError(
                f"recovery_confirmations must be >= 1, "
                f"got {self.recovery_confirmations}"
            )
        if self.healthy_threshold < 0:
            raise ValueError(
                f"healthy_threshold must be >= 0, got {self.healthy_threshold}"
            )
        if self.eviction_hysteresis_polls < 0:
            raise ValueError(
                f"eviction_hysteresis_polls must be >= 0, "
                f"got {self.eviction_hysteresis_polls}"
            )
        if not 0.0 <= self.degraded_threshold <= 1.0:
            raise ValueError(
                f"degraded_threshold must be in [0, 1], "
                f"got {self.degraded_threshold}"
            )
        if not 0.0 < self.capacity_ewma_alpha <= 1.0:
            raise ValueError(
                f"capacity_ewma_alpha must be in (0, 1], "
                f"got {self.capacity_ewma_alpha}"
            )

    @property
    def detection_latency(self) -> float:
        """Worst-case seconds from true failure to lease expiry (suspect)."""
        return self.heartbeat_period * self.misses_to_declare

    @property
    def eviction_latency(self) -> float:
        """Worst-case seconds from true failure to eviction (dead).

        Detection latency plus the suspect → dead hysteresis; equal to
        :attr:`detection_latency` when the hysteresis is zero.
        """
        return self.heartbeat_period * (
            self.misses_to_declare + self.eviction_hysteresis_polls
        )

    @property
    def recovery_latency(self) -> float:
        """Seconds from true repair to the detector re-admitting the node."""
        return self.heartbeat_period * self.recovery_confirmations


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One state change declared by the detector."""

    node_id: int
    kind: str  # "failure" | "recovery" | "degraded" | "restored"
    t_detected: float


class FailureDetector:
    """Turns ground-truth outages into detection events with latency."""

    def __init__(
        self,
        cluster: Cluster,
        config: DetectorConfig | None = None,
        *,
        message_center=None,
        sensor_noise: float = 0.0,
        sensor_seed: int = 0,
        clock=None,
    ) -> None:
        self.cluster = cluster
        self.config = config or DetectorConfig()
        self.message_center = message_center
        #: optional time source for :meth:`poll_now` — the seam the
        #: simulation harness uses to drive heartbeats off a virtual
        #: clock; :meth:`poll`/:meth:`sweep` keep taking explicit times
        self.clock = clock
        self.events: list[DetectionEvent] = []
        n = cluster.num_nodes
        self._misses = [0] * n
        self._hits = [0] * n
        self._declared_down = [False] * n
        self._degraded = [False] * n
        self._capacity = [1.0] * n
        self._sensors: list | None = None
        self._sensor_noise = sensor_noise
        self._sensor_seed = sensor_seed
        self._face_scheds: dict[float, FailureSchedule] = {}
        self._face_sched_len = -1

    # -- sensor-fed polling face ---------------------------------------------------

    def _sensor(self, node_id: int):
        if self._sensors is None:
            from repro.monitoring.sensors import CpuAvailabilitySensor
            from repro.util.rng import ensure_rng, spawn_rng

            rngs = spawn_rng(
                ensure_rng(self._sensor_seed), self.cluster.num_nodes
            )
            self._sensors = [
                CpuAvailabilitySensor(
                    self.cluster, i, noise=self._sensor_noise, seed=rngs[i]
                )
                for i in range(self.cluster.num_nodes)
            ]
        return self._sensors[node_id]

    def poll(self, t: float) -> list[DetectionEvent]:
        """One heartbeat sweep at time ``t``; returns new declarations.

        Declared failures/recoveries are appended to :attr:`events` and —
        when a message center was attached — published on the
        ``node-failed`` / ``node-recovered`` topics for the ADM.
        """
        cfg = self.config
        alpha = cfg.capacity_ewma_alpha
        declare_at = cfg.misses_to_declare + cfg.eviction_hysteresis_polls
        new: list[DetectionEvent] = []
        for node in range(self.cluster.num_nodes):
            reading = self._sensor(node).measure(t)
            healthy = reading > cfg.healthy_threshold
            if healthy:
                self._capacity[node] += alpha * (
                    min(reading, 1.0) - self._capacity[node]
                )
            if self._declared_down[node]:
                if healthy:
                    self._hits[node] += 1
                    if self._hits[node] >= cfg.recovery_confirmations:
                        self._declared_down[node] = False
                        self._misses[node] = 0
                        new.append(DetectionEvent(node, "recovery", t))
                else:
                    self._hits[node] = 0
            else:
                if healthy:
                    if self._misses[node] >= cfg.misses_to_declare:
                        # A suspect node answered before the hysteresis ran
                        # out: the flap is absorbed without an eviction.
                        obs.counter("resilience.flap_suppressed").inc()
                    self._misses[node] = 0
                    degraded = reading <= cfg.degraded_threshold
                    if degraded != self._degraded[node]:
                        self._degraded[node] = degraded
                        if cfg.track_degraded:
                            kind = "degraded" if degraded else "restored"
                            new.append(DetectionEvent(node, kind, t))
                else:
                    self._misses[node] += 1
                    if self._misses[node] >= declare_at:
                        self._declared_down[node] = True
                        self._hits[node] = 0
                        new.append(DetectionEvent(node, "failure", t))
        topics = {
            "failure": "node-failed",
            "recovery": "node-recovered",
            "degraded": "node-degraded",
            "restored": "node-restored",
        }
        for ev in new:
            obs.counter("resilience.detections", kind=ev.kind).inc()
            if self.message_center is not None:
                self.message_center.publish(
                    "failure-detector",
                    topics[ev.kind],
                    {"node": ev.node_id, "capacity": self._capacity[ev.node_id]},
                    time=t,
                )
        self.events.extend(new)
        return new

    def poll_now(self) -> list[DetectionEvent]:
        """One heartbeat sweep at the attached clock's current time.

        Requires a ``clock`` to have been passed at construction — the
        serving-runtime and simulation integrations poll this way, so
        one injected clock paces heartbeats and timeouts alike.
        """
        if self.clock is None:
            raise RuntimeError(
                "poll_now() needs a clock= attached at construction; "
                "use poll(t) with explicit times otherwise"
            )
        return self.poll(self.clock())

    def sweep(self, t0: float, t1: float) -> list[DetectionEvent]:
        """Poll every ``heartbeat_period`` over ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        out: list[DetectionEvent] = []
        t = t0
        while t < t1:
            out.extend(self.poll(t))
            t += self.config.heartbeat_period
        return out

    def declared_down_nodes(self) -> list[int]:
        """Nodes currently declared down by the polling loop."""
        return [i for i, d in enumerate(self._declared_down) if d]

    def suspicion(self, node_id: int) -> float:
        """Phi-accrual-style suspicion score from the polling loop.

        Consecutive misses normalized by the lease length: 0 for a node
        answering heartbeats, 1.0 at lease expiry (suspect), above 1.0
        while the eviction hysteresis accrues, ``inf`` once declared dead.
        """
        if self._declared_down[node_id]:
            return math.inf
        return self._misses[node_id] / self.config.misses_to_declare

    def node_state(self, node_id: int) -> str:
        """Current rung of the suspicion ladder for ``node_id``.

        One of ``"healthy"``, ``"degraded"``, ``"suspect"``, ``"dead"``
        as seen by the polling face after the most recent :meth:`poll`.
        """
        if self._declared_down[node_id]:
            return "dead"
        if self._misses[node_id] >= self.config.misses_to_declare:
            return "suspect"
        if self._degraded[node_id]:
            return "degraded"
        return "healthy"

    def capacity_estimate(self, node_id: int) -> float:
        """EWMA of measured availability; 0.0 for a declared-dead node."""
        if self._declared_down[node_id]:
            return 0.0
        return self._capacity[node_id]

    # -- analytic face (used during trace replay) -----------------------------------

    def _shifted_schedule(self, latency: float) -> FailureSchedule:
        """Ground truth shifted by ``latency`` / the recovery latency.

        An outage ``[t_fail, t_recover)`` appears as ``[t_fail + latency,
        t_recover + recovery_latency)``; outages too short to cross the
        line disappear entirely.
        """
        truth = self.cluster.failures
        if self._face_sched_len != len(truth.events):
            self._face_scheds.clear()
            self._face_sched_len = len(truth.events)
        sched = self._face_scheds.get(latency)
        if sched is None:
            t_rec = self.config.recovery_latency
            sched = FailureSchedule()
            for e in truth.events:
                t_det = e.t_fail + latency
                t_clear = e.t_recover + t_rec
                if t_clear > t_det:
                    sched.add(FailureEvent(e.node_id, t_det, t_clear))
            self._face_scheds[latency] = sched
        return sched

    def _detected_schedule(self) -> FailureSchedule:
        """Outages as seen at lease expiry (the suspect line)."""
        return self._shifted_schedule(self.config.detection_latency)

    def _eviction_schedule(self) -> FailureSchedule:
        """Outages that survive the hysteresis (the dead/evict line).

        Identical to :meth:`_detected_schedule` when
        ``eviction_hysteresis_polls`` is 0.
        """
        return self._shifted_schedule(self.config.eviction_latency)

    def detected_down(self, node_id: int, t: float) -> bool:
        """True while the detector considers ``node_id`` failed at ``t``."""
        return not self._detected_schedule().is_alive(node_id, t)

    def evictable_down(self, node_id: int, t: float) -> bool:
        """True once the outage has also outlasted the eviction hysteresis.

        A node can be ``detected_down`` (suspect) without being evictable;
        recovery only evacuates evictable nodes, so flaps shorter than the
        hysteresis stall work instead of rolling it back.
        """
        return not self._eviction_schedule().is_alive(node_id, t)

    def live_nodes(self, t: float, candidates=None) -> list[int]:
        """Nodes not evicted at ``t`` (subset of ``candidates``)."""
        if candidates is None:
            candidates = range(self.cluster.num_nodes)
        sched = self._eviction_schedule()
        return [n for n in candidates if sched.is_alive(n, t)]

    def next_detected_alive(self, node_id: int, t: float) -> float:
        """Earliest time ``>= t`` at which the detector trusts the node."""
        return self._detected_schedule().next_alive_time(node_id, t)

    def next_evictable_alive(self, node_id: int, t: float) -> float:
        """Earliest time ``>= t`` at which the node is no longer evicted."""
        return self._eviction_schedule().next_alive_time(node_id, t)

    def detection_fire_time(self, node_id: int, t: float) -> float:
        """When the in-progress (undeclared) outage at ``t`` will be declared.

        ``inf`` when no covering outage lasts long enough to expire the
        lease (a transient blip the detector never sees).
        """
        return self._fire_time(node_id, t, self.config.detection_latency)

    def eviction_fire_time(self, node_id: int, t: float) -> float:
        """When the in-progress outage at ``t`` will become evictable.

        ``inf`` when the outage ends before the hysteresis runs out — a
        flap the detector suspects but never evicts.
        """
        return self._fire_time(node_id, t, self.config.eviction_latency)

    def _fire_time(self, node_id: int, t: float, latency: float) -> float:
        cfg = self.config
        best = math.inf
        for e in self.cluster.failures.down_during(t, math.inf):
            if e.node_id != node_id or not e.is_down(t):
                continue
            t_det = e.t_fail + latency
            if t_det >= t and t_det < e.t_recover + cfg.recovery_latency:
                best = min(best, t_det)
        return best

    def detected_capacity_factor(self, node_id: int, t: float) -> float:
        """Degraded-window down-weight as the detector perceives it.

        Ground-truth :class:`~repro.gridsys.failures.DegradedWindow`\\ s
        reach the detector through the same sensor stream as outages, so
        each window is visible over ``[t_start + detection_latency,
        t_end + recovery_latency)``.  Returns 1.0 for an undegraded node.
        """
        truth = self.cluster.failures
        if not truth.degraded:
            return 1.0
        cfg = self.config
        factor = 1.0
        for w in truth.degraded:
            if (
                w.node_id == node_id
                and w.t_start + cfg.detection_latency <= t
                and t < w.t_end + cfg.recovery_latency
            ):
                factor *= w.capacity_factor
        return factor

    def degraded_nodes(self, t: float, candidates=None) -> list[int]:
        """Nodes with a detected capacity down-weight at ``t``."""
        if candidates is None:
            candidates = range(self.cluster.num_nodes)
        return [
            n for n in candidates if self.detected_capacity_factor(n, t) < 1.0
        ]

    def true_fail_time(self, node_id: int, t: float) -> float:
        """``t_fail`` of the outage whose detection window covers ``t``.

        Used to compute detection lag; falls back to ``t`` when no ground
        truth matches (shouldn't happen for declarations this detector
        produced).
        """
        cfg = self.config
        best = t
        for e in self.cluster.failures.events:
            if (
                e.node_id == node_id
                and e.t_fail + cfg.detection_latency <= t
                and t < e.t_recover + cfg.recovery_latency
            ):
                best = min(best, e.t_fail)
        return best
