"""Chaos harness: Poisson failure sweeps over the quickstart scenario.

Drives the reduced RM3D quickstart through the fault-tolerant execution
simulator under seeded :meth:`FailureSchedule.poisson` schedules and
asserts the recovery invariants end-to-end:

1. **No coarse-step work is lost** — every planned coarse step is
   committed despite rollbacks.
2. **Every patch is owned by a live node** — each interval's owner set is
   a subset of the detected-live processor set.
3. **Recovery lag is bounded** — failure-to-resume never exceeds the
   configured detection latency plus a slack proportional to the clean
   runtime.

A companion agent-layer soak runs the CATALINA control network (MCS +
ADM + CAs) on the same failing cluster over a lossy message-center link,
checking the application still completes while counting retries, dead
letters and migrations.

``python -m repro chaos`` runs the sweep from the command line;
``benchmarks/test_chaos_recovery.py`` pins it in CI and writes
``BENCH_chaos.json``.

The *chaos matrix* (``python -m repro chaos --matrix``) extends the sweep
from crashes to the full gray-failure vocabulary: one deterministic cell
per (fault type × intensity) — ``crash``, ``degraded`` (capacity
down-weight, never evacuated), ``flapping`` (eviction hysteresis bounds
rollbacks), ``partition`` (severed sends dead-letter; duplicates are
deduped), ``checkpoint`` (corrupted records are skipped by the durable
walk-back) — each gated on its own invariants.

This module imports the simulator and agents layers, so it is *not*
re-exported from :mod:`repro.resilience` — import it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.config import SimulatorOptions
from repro.resilience.detector import DetectorConfig
from repro.resilience.recovery import FaultTolerance

__all__ = [
    "ChaosConfig",
    "MatrixConfig",
    "run_chaos",
    "render_chaos",
    "run_chaos_matrix",
    "render_chaos_matrix",
    "FAULT_TYPES",
    "INTENSITIES",
]

#: fault families the matrix can inject
FAULT_TYPES = ("crash", "degraded", "flapping", "partition", "checkpoint")
#: supported intensity grades
INTENSITIES = ("low", "high")


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Knobs for one chaos sweep."""

    num_procs: int = 16
    #: coarse steps per replay (reduced from the quickstart's 160 for CI)
    num_coarse_steps: int = 96
    #: mean time between failures per node (simulated seconds)
    mtbf: float = 300.0
    #: mean time to repair (simulated seconds)
    mttr: float = 40.0
    #: one fault-tolerant replay per seed
    seeds: tuple[int, ...] = (0, 1, 2)
    #: message-center loss rate for the agent-layer soak (0 skips the soak)
    loss_rate: float = 0.05
    #: recovery-lag budget beyond detection latency, as a fraction of the
    #: clean runtime (floored at 10 s)
    lag_slack_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.num_coarse_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {self.num_coarse_steps}"
            )
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.lag_slack_fraction < 0:
            raise ValueError("lag_slack_fraction must be >= 0")


def _quickstart_pieces(config: ChaosConfig):
    """Trace + selector + clean-cluster factory for the reduced scenario."""
    from repro.apps.base import generate_trace
    from repro.execsim import StaticSelector
    from repro.gridsys import sp2_blue_horizon
    from repro.obs.report import quickstart_scenario
    from repro.partitioners import ISPPartitioner

    app, policy, _runtime = quickstart_scenario()
    trace = generate_trace(app, policy, config.num_coarse_steps)
    selector = StaticSelector(ISPPartitioner())
    return trace, selector, lambda: sp2_blue_horizon(config.num_procs)


def _replay_one(config: ChaosConfig, seed: int, trace, selector,
                make_cluster, clean_runtime: float, ft: FaultTolerance) -> dict:
    """One fault-tolerant replay under a seeded Poisson schedule."""
    from repro.execsim import ExecutionSimulator
    from repro.gridsys import FailureSchedule

    horizon = 3.0 * clean_runtime
    schedule = FailureSchedule.poisson(
        num_nodes=config.num_procs, horizon=horizon,
        mtbf=config.mtbf, mttr=config.mttr, seed=seed,
    )
    cluster = make_cluster()
    cluster.failures.events.extend(schedule.events)

    res = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft)).run(trace, selector)

    planned = trace.meta["num_coarse_steps"]
    executed = sum(r.coarse_steps for r in res.records)
    owners_live = all(
        set(r.owners) <= set(r.live_procs) for r in res.records
    )
    lag_bound = ft.detector.detection_latency + max(
        10.0, config.lag_slack_fraction * clean_runtime
    )
    lag_ok = res.max_recovery_lag <= lag_bound
    return {
        "seed": seed,
        "schedule_events": len(schedule.events),
        "planned_steps": planned,
        "executed_steps": executed,
        "recoveries": res.num_recoveries,
        "failures_detected": res.failures_detected,
        "runtime": res.total_runtime,
        "checkpoint_time": res.total_checkpoint_time,
        "recovery_time": res.total_recovery_time,
        "max_recovery_lag": res.max_recovery_lag,
        "recovery_lag_bound": lag_bound,
        "overhead_pct": 100.0 * (res.total_runtime - clean_runtime)
        / clean_runtime,
        "invariants": {
            "no_work_lost": executed == planned,
            "owners_live": owners_live,
            "lag_bounded": lag_ok,
        },
    }


def _soak_one(config: ChaosConfig, seed: int) -> dict:
    """Agent-layer soak: lossy control network on a failing cluster."""
    from repro.agents import (
        DeliveryPolicy,
        ManagementComputingSystem,
        ManagementEditor,
    )
    from repro.gridsys import FailureSchedule, sp2_blue_horizon

    cluster = sp2_blue_horizon(min(config.num_procs, 8))
    cluster.failures.events.extend(
        FailureSchedule.poisson(
            num_nodes=cluster.num_nodes, horizon=600.0,
            mtbf=config.mtbf, mttr=config.mttr, seed=1000 + seed,
        ).events
    )
    # Work sized so each component runs a few hundred ticks on an idle SP2
    # node — long enough to live through several scheduled outages.
    spec = ManagementEditor("chaos-soak")
    for i in range(4):
        spec.add_component(f"c{i}", 4e8)
    spec = spec.require("performance", 1.0).build()
    policy = DeliveryPolicy(loss_rate=config.loss_rate, seed=seed)
    mcs = ManagementComputingSystem(cluster, delivery_policy=policy)
    env = mcs.build_environment(spec)
    env.run(2000.0)
    mc = env.message_center
    return {
        "seed": seed,
        "completed": env.done,
        "delivered": mc.delivered_count,
        "retries": mc.retry_count,
        "dead_letters": mc.dead_letter_count,
        "migrations": sum(c.migrations for c in env.components),
    }


def run_chaos(config: ChaosConfig | None = None) -> dict:
    """Run the chaos sweep; returns the BENCH_chaos.json document."""
    config = config or ChaosConfig()
    trace, selector, make_cluster = _quickstart_pieces(config)
    ft = FaultTolerance()

    from repro.execsim import ExecutionSimulator
    from repro.partitioners import deterministic_partition_time

    # Deterministic partitioner timings keep the whole document
    # machine-independent, so committed BENCH_chaos.json baselines can be
    # gated with `python -m repro benchdiff`.
    with deterministic_partition_time():
        clean = ExecutionSimulator(
            make_cluster(), options=SimulatorOptions(fault_tolerance=False)
        ).run(trace, selector)
        clean_runtime = clean.total_runtime

        runs = [
            _replay_one(config, seed, trace, selector, make_cluster,
                        clean_runtime, ft)
            for seed in config.seeds
        ]
    soaks = (
        [_soak_one(config, seed) for seed in config.seeds]
        if config.loss_rate > 0.0
        else []
    )

    all_hold = all(all(r["invariants"].values()) for r in runs) and all(
        s["completed"] for s in soaks
    )
    return {
        "scenario": "quickstart-rm3d-chaos",
        "config": {
            "num_procs": config.num_procs,
            "num_coarse_steps": config.num_coarse_steps,
            "mtbf": config.mtbf,
            "mttr": config.mttr,
            "seeds": list(config.seeds),
            "loss_rate": config.loss_rate,
        },
        "clean_runtime": clean_runtime,
        "runs": runs,
        "messaging_soak": soaks,
        "aggregate": {
            "all_invariants_hold": all_hold,
            "total_recoveries": sum(r["recoveries"] for r in runs),
            "total_failures_detected": sum(
                r["failures_detected"] for r in runs
            ),
            "max_recovery_lag": max(
                (r["max_recovery_lag"] for r in runs), default=0.0
            ),
            "mean_overhead_pct": sum(r["overhead_pct"] for r in runs)
            / len(runs),
        },
    }


def render_chaos(result: dict) -> str:
    """Human-readable text rendering (the CLI's default output)."""
    cfg = result["config"]
    agg = result["aggregate"]
    lines = ["== Pragma chaos sweep =="]
    lines.append(
        f"scenario: {result['scenario']} | {cfg['num_procs']} procs | "
        f"{cfg['num_coarse_steps']} coarse steps | mtbf {cfg['mtbf']:.0f}s | "
        f"mttr {cfg['mttr']:.0f}s | seeds {cfg['seeds']}"
    )
    lines.append(f"clean runtime: {result['clean_runtime']:.1f} s")
    lines.append("-- fault-tolerant replays --")
    for r in result["runs"]:
        inv = r["invariants"]
        status = "OK " if all(inv.values()) else "FAIL"
        lines.append(
            f"  seed {r['seed']}: [{status}] {r['executed_steps']}/"
            f"{r['planned_steps']} steps | {r['recoveries']} recoveries | "
            f"lag {r['max_recovery_lag']:.2f}s (bound "
            f"{r['recovery_lag_bound']:.1f}s) | overhead "
            f"{r['overhead_pct']:+.1f}%"
        )
    if result["messaging_soak"]:
        lines.append("-- lossy-link agent soak --")
        for s in result["messaging_soak"]:
            status = "OK " if s["completed"] else "FAIL"
            lines.append(
                f"  seed {s['seed']}: [{status}] delivered {s['delivered']} | "
                f"retries {s['retries']} | dead letters {s['dead_letters']} | "
                f"migrations {s['migrations']}"
            )
    lines.append(
        f"aggregate: invariants "
        f"{'HOLD' if agg['all_invariants_hold'] else 'VIOLATED'} | "
        f"{agg['total_recoveries']} recoveries | max lag "
        f"{agg['max_recovery_lag']:.2f}s | mean overhead "
        f"{agg['mean_overhead_pct']:+.1f}%"
    )
    return "\n".join(lines)


# -- chaos matrix: fault type × intensity ------------------------------------------


@dataclass(frozen=True, slots=True)
class MatrixConfig:
    """Knobs for the gray-failure chaos matrix."""

    num_procs: int = 8
    #: coarse steps per replay cell (small: the matrix runs many cells)
    num_coarse_steps: int = 48
    fault_types: tuple[str, ...] = FAULT_TYPES
    intensities: tuple[str, ...] = INTENSITIES
    seed: int = 0
    #: extra misses a suspect node must accrue before eviction in the
    #: flapping cells (the hysteresis under test)
    hysteresis_polls: int = 3

    def __post_init__(self) -> None:
        if self.num_procs < 2:
            raise ValueError(f"num_procs must be >= 2, got {self.num_procs}")
        if self.num_coarse_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {self.num_coarse_steps}"
            )
        unknown = set(self.fault_types) - set(FAULT_TYPES)
        if unknown:
            raise ValueError(f"unknown fault types: {sorted(unknown)}")
        unknown = set(self.intensities) - set(INTENSITIES)
        if unknown:
            raise ValueError(f"unknown intensities: {sorted(unknown)}")
        if not self.fault_types or not self.intensities:
            raise ValueError("need at least one fault type and intensity")
        if self.hysteresis_polls < 1:
            raise ValueError(
                f"hysteresis_polls must be >= 1, got {self.hysteresis_polls}"
            )


def _run_cell_sim(config: MatrixConfig, trace, selector, make_cluster,
                  mutate_cluster, ft: FaultTolerance) -> tuple[dict, "object"]:
    """One fault-tolerant replay; returns (base metrics, collect window)."""
    from repro.execsim import ExecutionSimulator

    cluster = make_cluster()
    mutate_cluster(cluster)
    with obs.collect() as window:
        res = ExecutionSimulator(cluster, options=SimulatorOptions(fault_tolerance=ft)).run(
            trace, selector
        )
    planned = trace.meta["num_coarse_steps"]
    executed = sum(r.coarse_steps for r in res.records)
    owners_live = all(set(r.owners) <= set(r.live_procs) for r in res.records)
    return (
        {
            "planned_steps": planned,
            "executed_steps": executed,
            "recoveries": res.num_recoveries,
            "runtime": res.total_runtime,
            "recovery_time": res.total_recovery_time,
            "no_work_lost": executed == planned,
            "owners_live": owners_live,
            "result": res,
        },
        window,
    )


def _cell_crash(config: MatrixConfig, intensity: str, trace, selector,
                make_cluster, clean_runtime: float) -> dict:
    """Fail-stop crashes: detected, evicted, rolled back, recovered."""
    from repro.gridsys import FailureEvent

    duration = max(10.0, 0.15 * clean_runtime)
    if intensity == "low":
        outages = [FailureEvent(1, 0.35 * clean_runtime,
                                0.35 * clean_runtime + duration)]
    else:
        outages = [
            FailureEvent(n, frac * clean_runtime,
                         frac * clean_runtime + duration)
            for n, frac in ((1, 0.25), (3, 0.5), (5, 0.7))
        ]

    def mutate(cluster):
        cluster.failures.events.extend(outages)

    base, _ = _run_cell_sim(
        config, trace, selector, make_cluster, mutate, FaultTolerance()
    )
    res = base.pop("result")
    return {
        "fault": "crash",
        "intensity": intensity,
        "metrics": {**base, "injected_outages": len(outages)},
        "invariants": {
            "no_work_lost": base["no_work_lost"],
            "owners_live": base["owners_live"],
            "recovered": res.num_recoveries >= 1,
            "bounded_rollback": res.num_recoveries <= len(outages),
        },
    }


def _cell_degraded(config: MatrixConfig, intensity: str, trace, selector,
                   make_cluster, clean_runtime: float) -> dict:
    """Gray slowness: the node is down-weighted, never evacuated."""
    from repro.gridsys import DegradedWindow

    # The window spans the whole (slowed) run: regrid boundaries are where
    # partitions are recomputed, and early intervals dominate the quickstart
    # runtime, so a mid-run window could fall between boundaries entirely.
    t0, t1 = 0.05 * clean_runtime, 20.0 * clean_runtime
    if intensity == "low":
        windows = [DegradedWindow(2, t0, t1, capacity_factor=0.5)]
    else:
        windows = [
            DegradedWindow(2, t0, t1, capacity_factor=0.25),
            DegradedWindow(4, t0, t1, capacity_factor=0.25),
        ]

    def mutate(cluster):
        for w in windows:
            cluster.failures.add_degraded(w)

    base, window = _run_cell_sim(
        config, trace, selector, make_cluster, mutate, FaultTolerance()
    )
    res = base.pop("result")
    downweights = window.registry.counter_value(
        "resilience.degraded_downweights"
    )
    degraded_nodes = {w.node_id for w in windows}
    owners_union: set[int] = set()
    for r in res.records:
        owners_union |= set(r.owners)
    return {
        "fault": "degraded",
        "intensity": intensity,
        "metrics": {
            **base,
            "degraded_nodes": sorted(degraded_nodes),
            "downweighted_partitions": downweights,
        },
        "invariants": {
            "no_work_lost": base["no_work_lost"],
            "owners_live": base["owners_live"],
            # Proportional response: the capacity-weighted path engaged...
            "downweighted": downweights >= 1,
            # ...but degraded is not dead — no rollback, no evacuation.
            "never_evacuated": res.num_recoveries == 0
            and degraded_nodes <= owners_union,
        },
    }


def _cell_flapping(config: MatrixConfig, intensity: str, trace, selector,
                   make_cluster, clean_runtime: float) -> dict:
    """Flapping node under eviction hysteresis: rollbacks stay bounded."""
    from repro.gridsys import FlappingNode

    detector = DetectorConfig(
        eviction_hysteresis_polls=config.hysteresis_polls
    )
    ft = FaultTolerance(detector=detector)
    # Low: flaps shorter than the eviction latency — every one must be
    # absorbed as a stall.  High: flaps outlast the hysteresis — each may
    # evict, but never more than once per flap.
    down_time = (
        0.6 * detector.eviction_latency
        if intensity == "low"
        else 1.5 * detector.eviction_latency
    )
    t0, t1 = 0.2 * clean_runtime, 0.8 * clean_runtime
    period = max((t1 - t0) / 4.0, 3.0 * down_time)
    spec = FlappingNode(3, t0, t1, period=period, down_time=down_time)
    flaps = spec.events()
    qualifying = sum(
        1 for e in flaps if e.duration >= detector.eviction_latency
    )

    def mutate(cluster):
        cluster.failures.add_flapping(spec)

    base, window = _run_cell_sim(
        config, trace, selector, make_cluster, mutate, ft
    )
    res = base.pop("result")
    suppressed = window.registry.counter_value("resilience.flap_suppressed")
    invariants = {
        "no_work_lost": base["no_work_lost"],
        "owners_live": base["owners_live"],
        # The hysteresis bound: one rollback per flap that outlasted it,
        # and zero for flaps that didn't.
        "bounded_rollback": res.num_recoveries <= qualifying,
    }
    if intensity == "low":
        invariants["flaps_suppressed"] = suppressed >= 1
    return {
        "fault": "flapping",
        "intensity": intensity,
        "metrics": {
            **base,
            "flaps": len(flaps),
            "qualifying_flaps": qualifying,
            "flap_suppressed": suppressed,
            "eviction_latency": detector.eviction_latency,
        },
        "invariants": invariants,
    }


def _cell_partition(config: MatrixConfig, intensity: str) -> dict:
    """Network partition at the message center: severed sends dead-letter,
    duplicate deliveries are suppressed by per-port dedup."""
    from repro.agents import DeliveryPolicy, MessageCenter
    from repro.agents.messages import Message
    from repro.gridsys import NetworkPartition

    n = 4 if intensity == "low" else 8
    dup_rate = 0.3 if intensity == "low" else 0.6
    policy = DeliveryPolicy(duplicate_rate=dup_rate, seed=config.seed)
    mc = MessageCenter(policy)
    for i in range(n):
        mc.register(f"p{i}")
        mc.bind_port(f"p{i}", i)
    half = n // 2
    cut = NetworkPartition(
        t_start=10.0,
        t_end=20.0,
        groups=(tuple(range(half)), tuple(range(half, n))),
    )
    mc.inject_partition(cut)

    group_of = {i: (0 if i < half else 1) for i in range(n)}
    expected_cut = 0
    healed_ok = True
    with obs.collect() as window:
        for t in (5.0, 15.0, 25.0):
            for i in range(n):
                for j in range(n):
                    if i == j:
                        continue
                    crosses = cut.active(t) and group_of[i] != group_of[j]
                    delivered = mc.send(
                        Message(sender=f"p{i}", dest=f"p{j}", topic="tick",
                                payload={"t": t}, time=t)
                    )
                    if crosses:
                        expected_cut += 1
                        if delivered:
                            healed_ok = False
                    elif not delivered:
                        healed_ok = False
        reg = window.registry
        partitioned = reg.counter_value("mc.dead_letters", reason="partitioned")
        injected = reg.counter_value("mc.duplicates_injected")
        suppressed = reg.counter_value("mc.duplicates_suppressed")

    # No message sent across the cut during the window may sit in any
    # mailbox, and every delivered message must be unique per port.
    leaked = 0
    dup_in_box = 0
    for i in range(n):
        seen: set[int] = set()
        for m in mc.drain(f"p{i}"):
            if m.seq in seen:
                dup_in_box += 1
            seen.add(m.seq)
            src = int(m.sender[1:])
            if cut.severed(src, i, m.time):
                leaked += 1
    return {
        "fault": "partition",
        "intensity": intensity,
        "metrics": {
            "ports": n,
            "severed_sends": expected_cut,
            "partitioned_dead_letters": partitioned,
            "duplicates_injected": injected,
            "duplicates_suppressed": suppressed,
        },
        "invariants": {
            "severed_dead_lettered": partitioned == expected_cut > 0,
            "no_cross_cut_delivery": leaked == 0 and healed_ok,
            "duplicates_suppressed": injected == suppressed and dup_in_box == 0,
        },
    }


def _cell_checkpoint(config: MatrixConfig, intensity: str, trace) -> dict:
    """Corrupted durable checkpoints: restore walks back to a valid one."""
    import tempfile
    from pathlib import Path

    from repro.resilience.durable import (
        DurableCheckpointStore,
        corrupt_checkpoint,
    )

    snaps = []
    for snap in trace:
        snaps.append(snap)
        if len(snaps) == 3:
            break
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as tmp:
        store = DurableCheckpointStore(Path(tmp), keep=len(snaps))
        for i, snap in enumerate(snaps):
            store.save(snap.step, float(i), snap.hierarchy)
        paths = store.record_paths()
        corrupt_checkpoint(paths[-1], mode="torn")
        corrupted = 1
        if intensity == "high":
            corrupt_checkpoint(paths[-2], mode="bitflip", seed=config.seed)
            corrupted = 2
        expected = snaps[len(snaps) - 1 - corrupted]
        with obs.collect() as window:
            ck, _ = store.restore()
            counted = window.registry.sum_counters(
                "resilience.checkpoint_corrupt"
            )
    return {
        "fault": "checkpoint",
        "intensity": intensity,
        "metrics": {
            "records": len(paths),
            "corrupted": corrupted,
            "restored_step": ck.step,
            "corruption_counted": counted,
        },
        "invariants": {
            "restored_prior_valid": ck.step == expected.step,
            "corruption_counted": counted == corrupted,
            "payload_intact": ck.hierarchy is not None
            and ck.hierarchy.total_cells == ck.num_cells,
        },
    }


def run_chaos_matrix(config: MatrixConfig | None = None) -> dict:
    """Run the fault-matrix sweep; returns the matrix document.

    Every cell is deterministic (seeded faults, deterministic partition
    timings), so the document can be committed and gated with
    ``python -m repro benchdiff`` like any other benchmark snapshot.
    """
    config = config or MatrixConfig()
    shim = ChaosConfig(
        num_procs=config.num_procs,
        num_coarse_steps=config.num_coarse_steps,
        loss_rate=0.0,
    )
    trace, selector, make_cluster = _quickstart_pieces(shim)

    from repro.execsim import ExecutionSimulator
    from repro.partitioners import deterministic_partition_time

    cells: list[dict] = []
    with deterministic_partition_time():
        clean = ExecutionSimulator(
            make_cluster(), options=SimulatorOptions(fault_tolerance=False)
        ).run(trace, selector)
        clean_runtime = clean.total_runtime
        for fault in config.fault_types:
            for intensity in config.intensities:
                if fault == "crash":
                    cell = _cell_crash(config, intensity, trace, selector,
                                       make_cluster, clean_runtime)
                elif fault == "degraded":
                    cell = _cell_degraded(config, intensity, trace, selector,
                                          make_cluster, clean_runtime)
                elif fault == "flapping":
                    cell = _cell_flapping(config, intensity, trace, selector,
                                          make_cluster, clean_runtime)
                elif fault == "partition":
                    cell = _cell_partition(config, intensity)
                else:
                    cell = _cell_checkpoint(config, intensity, trace)
                cells.append(cell)

    all_hold = all(all(c["invariants"].values()) for c in cells)
    return {
        "scenario": "gray-failure-chaos-matrix",
        "config": {
            "num_procs": config.num_procs,
            "num_coarse_steps": config.num_coarse_steps,
            "fault_types": list(config.fault_types),
            "intensities": list(config.intensities),
            "seed": config.seed,
            "hysteresis_polls": config.hysteresis_polls,
        },
        "clean_runtime": clean_runtime,
        "cells": cells,
        "aggregate": {
            "all_invariants_hold": all_hold,
            "cells": len(cells),
            "cells_failed": sum(
                0 if all(c["invariants"].values()) else 1 for c in cells
            ),
        },
    }


def render_chaos_matrix(result: dict) -> str:
    """Human-readable rendering of the fault matrix."""
    agg = result["aggregate"]
    cfg = result["config"]
    lines = ["== Pragma gray-failure chaos matrix =="]
    lines.append(
        f"scenario: {result['scenario']} | {cfg['num_procs']} procs | "
        f"{cfg['num_coarse_steps']} coarse steps | "
        f"hysteresis {cfg['hysteresis_polls']} polls"
    )
    lines.append(f"clean runtime: {result['clean_runtime']:.1f} s")
    for c in result["cells"]:
        inv = c["invariants"]
        status = "OK " if all(inv.values()) else "FAIL"
        failed = [k for k, v in inv.items() if not v]
        detail = "" if not failed else f" | violated: {', '.join(failed)}"
        lines.append(
            f"  {c['fault']:<10s} x {c['intensity']:<4s} [{status}] "
            f"{', '.join(sorted(inv))}{detail}"
        )
    lines.append(
        f"aggregate: {agg['cells'] - agg['cells_failed']}/{agg['cells']} "
        f"cells hold — invariants "
        f"{'HOLD' if agg['all_invariants_hold'] else 'VIOLATED'}"
    )
    return "\n".join(lines)
