"""Chaos harness: Poisson failure sweeps over the quickstart scenario.

Drives the reduced RM3D quickstart through the fault-tolerant execution
simulator under seeded :meth:`FailureSchedule.poisson` schedules and
asserts the recovery invariants end-to-end:

1. **No coarse-step work is lost** — every planned coarse step is
   committed despite rollbacks.
2. **Every patch is owned by a live node** — each interval's owner set is
   a subset of the detected-live processor set.
3. **Recovery lag is bounded** — failure-to-resume never exceeds the
   configured detection latency plus a slack proportional to the clean
   runtime.

A companion agent-layer soak runs the CATALINA control network (MCS +
ADM + CAs) on the same failing cluster over a lossy message-center link,
checking the application still completes while counting retries, dead
letters and migrations.

``python -m repro chaos`` runs the sweep from the command line;
``benchmarks/test_chaos_recovery.py`` pins it in CI and writes
``BENCH_chaos.json``.

This module imports the simulator and agents layers, so it is *not*
re-exported from :mod:`repro.resilience` — import it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.recovery import FaultTolerance

__all__ = ["ChaosConfig", "run_chaos", "render_chaos"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Knobs for one chaos sweep."""

    num_procs: int = 16
    #: coarse steps per replay (reduced from the quickstart's 160 for CI)
    num_coarse_steps: int = 96
    #: mean time between failures per node (simulated seconds)
    mtbf: float = 300.0
    #: mean time to repair (simulated seconds)
    mttr: float = 40.0
    #: one fault-tolerant replay per seed
    seeds: tuple[int, ...] = (0, 1, 2)
    #: message-center loss rate for the agent-layer soak (0 skips the soak)
    loss_rate: float = 0.05
    #: recovery-lag budget beyond detection latency, as a fraction of the
    #: clean runtime (floored at 10 s)
    lag_slack_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.num_coarse_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {self.num_coarse_steps}"
            )
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.lag_slack_fraction < 0:
            raise ValueError("lag_slack_fraction must be >= 0")


def _quickstart_pieces(config: ChaosConfig):
    """Trace + selector + clean-cluster factory for the reduced scenario."""
    from repro.apps.base import generate_trace
    from repro.execsim import StaticSelector
    from repro.gridsys import sp2_blue_horizon
    from repro.obs.report import quickstart_scenario
    from repro.partitioners import ISPPartitioner

    app, policy, _runtime = quickstart_scenario()
    trace = generate_trace(app, policy, config.num_coarse_steps)
    selector = StaticSelector(ISPPartitioner())
    return trace, selector, lambda: sp2_blue_horizon(config.num_procs)


def _replay_one(config: ChaosConfig, seed: int, trace, selector,
                make_cluster, clean_runtime: float, ft: FaultTolerance) -> dict:
    """One fault-tolerant replay under a seeded Poisson schedule."""
    from repro.execsim import ExecutionSimulator
    from repro.gridsys import FailureSchedule

    horizon = 3.0 * clean_runtime
    schedule = FailureSchedule.poisson(
        num_nodes=config.num_procs, horizon=horizon,
        mtbf=config.mtbf, mttr=config.mttr, seed=seed,
    )
    cluster = make_cluster()
    cluster.failures.events.extend(schedule.events)

    res = ExecutionSimulator(cluster, fault_tolerance=ft).run(trace, selector)

    planned = trace.meta["num_coarse_steps"]
    executed = sum(r.coarse_steps for r in res.records)
    owners_live = all(
        set(r.owners) <= set(r.live_procs) for r in res.records
    )
    lag_bound = ft.detector.detection_latency + max(
        10.0, config.lag_slack_fraction * clean_runtime
    )
    lag_ok = res.max_recovery_lag <= lag_bound
    return {
        "seed": seed,
        "schedule_events": len(schedule.events),
        "planned_steps": planned,
        "executed_steps": executed,
        "recoveries": res.num_recoveries,
        "failures_detected": res.failures_detected,
        "runtime": res.total_runtime,
        "checkpoint_time": res.total_checkpoint_time,
        "recovery_time": res.total_recovery_time,
        "max_recovery_lag": res.max_recovery_lag,
        "recovery_lag_bound": lag_bound,
        "overhead_pct": 100.0 * (res.total_runtime - clean_runtime)
        / clean_runtime,
        "invariants": {
            "no_work_lost": executed == planned,
            "owners_live": owners_live,
            "lag_bounded": lag_ok,
        },
    }


def _soak_one(config: ChaosConfig, seed: int) -> dict:
    """Agent-layer soak: lossy control network on a failing cluster."""
    from repro.agents import (
        DeliveryPolicy,
        ManagementComputingSystem,
        ManagementEditor,
    )
    from repro.gridsys import FailureSchedule, sp2_blue_horizon

    cluster = sp2_blue_horizon(min(config.num_procs, 8))
    cluster.failures.events.extend(
        FailureSchedule.poisson(
            num_nodes=cluster.num_nodes, horizon=600.0,
            mtbf=config.mtbf, mttr=config.mttr, seed=1000 + seed,
        ).events
    )
    # Work sized so each component runs a few hundred ticks on an idle SP2
    # node — long enough to live through several scheduled outages.
    spec = ManagementEditor("chaos-soak")
    for i in range(4):
        spec.add_component(f"c{i}", 4e8)
    spec = spec.require("performance", 1.0).build()
    policy = DeliveryPolicy(loss_rate=config.loss_rate, seed=seed)
    mcs = ManagementComputingSystem(cluster, delivery_policy=policy)
    env = mcs.build_environment(spec)
    env.run(2000.0)
    mc = env.message_center
    return {
        "seed": seed,
        "completed": env.done,
        "delivered": mc.delivered_count,
        "retries": mc.retry_count,
        "dead_letters": mc.dead_letter_count,
        "migrations": sum(c.migrations for c in env.components),
    }


def run_chaos(config: ChaosConfig | None = None) -> dict:
    """Run the chaos sweep; returns the BENCH_chaos.json document."""
    config = config or ChaosConfig()
    trace, selector, make_cluster = _quickstart_pieces(config)
    ft = FaultTolerance()

    from repro.execsim import ExecutionSimulator
    from repro.partitioners import deterministic_partition_time

    # Deterministic partitioner timings keep the whole document
    # machine-independent, so committed BENCH_chaos.json baselines can be
    # gated with `python -m repro benchdiff`.
    with deterministic_partition_time():
        clean = ExecutionSimulator(
            make_cluster(), fault_tolerance=False
        ).run(trace, selector)
        clean_runtime = clean.total_runtime

        runs = [
            _replay_one(config, seed, trace, selector, make_cluster,
                        clean_runtime, ft)
            for seed in config.seeds
        ]
    soaks = (
        [_soak_one(config, seed) for seed in config.seeds]
        if config.loss_rate > 0.0
        else []
    )

    all_hold = all(all(r["invariants"].values()) for r in runs) and all(
        s["completed"] for s in soaks
    )
    return {
        "scenario": "quickstart-rm3d-chaos",
        "config": {
            "num_procs": config.num_procs,
            "num_coarse_steps": config.num_coarse_steps,
            "mtbf": config.mtbf,
            "mttr": config.mttr,
            "seeds": list(config.seeds),
            "loss_rate": config.loss_rate,
        },
        "clean_runtime": clean_runtime,
        "runs": runs,
        "messaging_soak": soaks,
        "aggregate": {
            "all_invariants_hold": all_hold,
            "total_recoveries": sum(r["recoveries"] for r in runs),
            "total_failures_detected": sum(
                r["failures_detected"] for r in runs
            ),
            "max_recovery_lag": max(
                (r["max_recovery_lag"] for r in runs), default=0.0
            ),
            "mean_overhead_pct": sum(r["overhead_pct"] for r in runs)
            / len(runs),
        },
    }


def render_chaos(result: dict) -> str:
    """Human-readable text rendering (the CLI's default output)."""
    cfg = result["config"]
    agg = result["aggregate"]
    lines = ["== Pragma chaos sweep =="]
    lines.append(
        f"scenario: {result['scenario']} | {cfg['num_procs']} procs | "
        f"{cfg['num_coarse_steps']} coarse steps | mtbf {cfg['mtbf']:.0f}s | "
        f"mttr {cfg['mttr']:.0f}s | seeds {cfg['seeds']}"
    )
    lines.append(f"clean runtime: {result['clean_runtime']:.1f} s")
    lines.append("-- fault-tolerant replays --")
    for r in result["runs"]:
        inv = r["invariants"]
        status = "OK " if all(inv.values()) else "FAIL"
        lines.append(
            f"  seed {r['seed']}: [{status}] {r['executed_steps']}/"
            f"{r['planned_steps']} steps | {r['recoveries']} recoveries | "
            f"lag {r['max_recovery_lag']:.2f}s (bound "
            f"{r['recovery_lag_bound']:.1f}s) | overhead "
            f"{r['overhead_pct']:+.1f}%"
        )
    if result["messaging_soak"]:
        lines.append("-- lossy-link agent soak --")
        for s in result["messaging_soak"]:
            status = "OK " if s["completed"] else "FAIL"
            lines.append(
                f"  seed {s['seed']}: [{status}] delivered {s['delivered']} | "
                f"retries {s['retries']} | dead letters {s['dead_letters']} | "
                f"migrations {s['migrations']}"
            )
    lines.append(
        f"aggregate: invariants "
        f"{'HOLD' if agg['all_invariants_hold'] else 'VIOLATED'} | "
        f"{agg['total_recoveries']} recoveries | max lag "
        f"{agg['max_recovery_lag']:.2f}s | mean overhead "
        f"{agg['mean_overhead_pct']:+.1f}%"
    )
    return "\n".join(lines)
