"""System-sensitive partitioners (Section 4.6, Figure 4).

:class:`HeterogeneousPartitioner` distributes the curve-ordered workload
in proportion to relative processor capacities computed from monitored
CPU / memory / bandwidth; :class:`EqualPartitioner` is the paper's default
baseline that "performs an equal distribution of the workload on the
processors" regardless of their actual state.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner, PartitionError
from repro.partitioners.sequence import weighted_sequence_partition
from repro.partitioners.units import CompositeUnits

__all__ = ["HeterogeneousPartitioner", "EqualPartitioner"]


class HeterogeneousPartitioner(Partitioner):
    """Capacity-proportional contiguous split of the composite grid."""

    name = "heterogeneous"

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        if capacities is None:
            raise PartitionError(
                "HeterogeneousPartitioner requires relative capacities; "
                "use CapacityCalculator (repro.core) to compute them"
            )
        return weighted_sequence_partition(units.loads, num_procs, capacities)


class EqualPartitioner(Partitioner):
    """Equal-share contiguous split (the paper's default baseline)."""

    name = "equal"

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        return weighted_sequence_partition(
            units.loads, num_procs, np.ones(num_procs)
        )
