"""The five-component PAC quality metric (Section 4.1).

"The proposed metric for characterizing the quality of a PAC for the
adaptive SAMR meta-partitioner include Communication requirements, Load
imbalance, Amount of data migration, Partitioning time, and Partitioning
induced overheads."

The components conflict (minimizing communication and load imbalance
together is NP-hard), so no single partitioner optimizes all five; the
metric exists to expose each partitioner's trade-offs to the policy base.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partitioners.base import Partition
from repro.util.stats import max_load_imbalance_pct

__all__ = ["PACMetrics", "evaluate_partition"]


@dataclass(frozen=True, slots=True)
class PACMetrics:
    """Quality of one partition (lower is better on every component)."""

    load_imbalance_pct: float   # 100 * (max - mean) / mean over proc loads
    comm_volume: float          # load-weighted inter-processor face area
    data_migration: float       # load that changed owner since last partition
    partition_time: float       # seconds spent computing the partition
    overhead: float             # ownership fragments (patch splits forced)

    def as_dict(self) -> dict[str, float]:
        """Component name → value."""
        return {
            "load_imbalance_pct": self.load_imbalance_pct,
            "comm_volume": self.comm_volume,
            "data_migration": self.data_migration,
            "partition_time": self.partition_time,
            "overhead": self.overhead,
        }


def evaluate_partition(
    partition: Partition, previous: Partition | None = None
) -> PACMetrics:
    """Score a partition on the five PAC components.

    ``previous`` (the partition in force before this regrid) enables the
    data-migration component; without it migration is reported as 0.
    """
    units = partition.units
    imbalance = max_load_imbalance_pct(partition.proc_loads())
    comm = _comm_volume(partition)
    migration = _migration(partition, previous)
    return PACMetrics(
        load_imbalance_pct=imbalance,
        comm_volume=comm,
        data_migration=migration,
        partition_time=partition.partition_time,
        overhead=float(partition.rect_fragments()),
    )


def _comm_volume(partition: Partition) -> float:
    """Ghost-exchange volume across processor boundaries.

    For every face between units with different owners, the exchanged data
    is the face area (in base cells) scaled by the mean *load density* of
    the two units: refined columns carry proportionally more ghost data
    (each refined level adds a layer of ghost cells at higher resolution).
    """
    units = partition.units
    i, j, axis = units.adjacency_arrays()
    if i.size == 0:
        return 0.0
    cut = partition.assignment[i] != partition.assignment[j]
    if not cut.any():
        return 0.0
    shapes = units.unit_shapes()  # (n, 3), curve order
    cells = shapes.prod(axis=1).astype(float)
    density = units.loads / np.maximum(cells, 1.0)
    # Face area: product of the smaller extents along the two other axes.
    other = np.array([[1, 2], [0, 2], [0, 1]])
    face = np.empty(i.size, dtype=float)
    for ax in range(3):
        sel = axis == ax
        if not sel.any():
            continue
        o1, o2 = other[ax]
        a = np.minimum(shapes[i[sel], o1], shapes[j[sel], o1])
        b = np.minimum(shapes[i[sel], o2], shapes[j[sel], o2])
        face[sel] = a * b
    dens = 0.5 * (density[i] + density[j])
    return float((face[cut] * dens[cut]).sum())


def _migration(partition: Partition, previous: Partition | None) -> float:
    """Load volume whose owner changed relative to ``previous``.

    Owner lattices are compared cell-block-wise; if the unit lattice
    changed shape (different granularity after a policy switch), the
    previous owners are resampled with nearest-neighbor indexing.
    """
    if previous is None:
        return 0.0
    cur = partition.owner_lattice()
    prev = previous.owner_lattice()
    if prev.shape != cur.shape:
        prev = _resample_nearest(prev, cur.shape)
    moved = cur != prev
    # Unit loads are stored in curve order; scatter to lattice order.
    lat = np.empty(len(partition.units))
    lat[partition.units.lattice_index] = partition.units.loads
    loads = lat.reshape(cur.shape)
    return float(loads[moved].sum())


def _resample_nearest(arr: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Nearest-neighbor resample of an integer lattice to a new shape."""
    idx = [
        np.minimum(
            (np.arange(shape[a]) * arr.shape[a] / shape[a]).astype(int),
            arr.shape[a] - 1,
        )
        for a in range(3)
    ]
    return arr[np.ix_(idx[0], idx[1], idx[2])]
