"""Partitioner interface and the Partition result object."""

from __future__ import annotations

import abc
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.partitioners.units import CompositeUnits

__all__ = ["PartitionError", "Partition", "Partitioner",
           "deterministic_partition_time"]

#: when set, partition() reports this modeled per-unit cost instead of
#: measured wall-clock (see :func:`deterministic_partition_time`).
#: Thread-local: the serving runtime scopes the override per worker
#: thread, so concurrent jobs must not see each other's set/restore.
_MODELED_TIME = threading.local()

#: default modeled cost — the order of the measured per-unit cost of the
#: ISP-family partitioners on this codebase
DEFAULT_SECONDS_PER_UNIT = 1e-7


@contextmanager
def deterministic_partition_time(
    seconds_per_unit: float = DEFAULT_SECONDS_PER_UNIT,
):
    """Scope overriding the modeled per-unit partition cost.

    ``Partition.partition_time`` is modeled as
    ``seconds_per_unit * len(units)`` by default (see
    :meth:`Partitioner.partition`), so this context is only needed to
    *change* the per-unit cost — e.g. the scenario sweep engine
    (:mod:`repro.sweep`) pins it explicitly so sweep digests are
    insensitive to any future default change.  The override is
    thread-local, so concurrent server workers each scoping it cannot
    clobber (or leak) each other's value.
    """
    prev = getattr(_MODELED_TIME, "seconds_per_unit", None)
    _MODELED_TIME.seconds_per_unit = float(seconds_per_unit)
    try:
        yield
    finally:
        _MODELED_TIME.seconds_per_unit = prev


class PartitionError(RuntimeError):
    """A partitioner could not produce a valid assignment."""


@dataclass(slots=True)
class Partition:
    """An assignment of composite units to processors.

    ``assignment[i]`` is the owner of the unit at curve position ``i``.
    ``partition_time`` is the cost of computing the partition — one of
    the paper's five quality components; modeled (deterministic) unless
    the caller asked :meth:`Partitioner.partition` to measure wall clock.
    """

    units: CompositeUnits
    num_procs: int
    assignment: np.ndarray
    partitioner_name: str
    partition_time: float = 0.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=int)
        if self.assignment.shape != (len(self.units),):
            raise ValueError(
                f"assignment length {self.assignment.shape} does not match "
                f"{len(self.units)} units"
            )
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_procs
        ):
            raise ValueError("assignment references processors out of range")

    def proc_loads(self) -> np.ndarray:
        """Total composite load per processor."""
        return np.bincount(
            self.assignment, weights=self.units.loads, minlength=self.num_procs
        )

    def owner_lattice(self) -> np.ndarray:
        """Owner of each unit arranged on the unit lattice (nx, ny, nz)."""
        lat = self.assignment[self.units.curve_position]
        return lat.reshape(self.units.grid_shape)

    def subdomain_count(self) -> int:
        """Number of contiguous (curve-order) ownership runs."""
        if self.assignment.size == 0:
            return 0
        return int(1 + np.count_nonzero(np.diff(self.assignment)))

    def rect_fragments(self) -> int:
        """Approximate count of rectangular patches the partition induces.

        This is the "partitioning induced overheads" component of the PAC
        metric: every owned region must be realized as axis-aligned
        patches, and jagged curve segments decompose into many more boxes
        than pBD-ISP's rectangles.  Counted by 2.5-D greedy run merging:
        maximal same-owner x-runs, merged across y when the neighboring
        column carries an identical run (same owner, same x-extent); z
        sheets are counted separately, so a uniform owner measures one
        fragment per z-sheet.
        """
        lat = self.owner_lattice()
        nx, ny, nz = lat.shape
        # Start of an x-run at (x, y, z): first cell or owner change.
        start = np.ones(lat.shape, dtype=bool)
        start[1:, :, :] = lat[1:, :, :] != lat[:-1, :, :]
        if ny == 1:
            return int(start.sum())
        # A run merges with its y-neighbor when every cell of the column
        # pair agrees in owner AND the run-start pattern matches, i.e. the
        # runs have identical extent.  Count runs that do NOT merge.
        same_owner = np.zeros(lat.shape, dtype=bool)
        same_owner[:, 1:, :] = lat[:, 1:, :] == lat[:, :-1, :]
        same_start = np.zeros(lat.shape, dtype=bool)
        same_start[:, 1:, :] = start[:, 1:, :] == start[:, :-1, :]
        # Propagate "column pair agrees over the whole run" down each run:
        # a run merges iff all its cells have same_owner and same_start.
        mergeable = (same_owner & same_start).astype(np.int64)
        # Reduce per run: a run's cells share the cumulative run id along x.
        run_id = np.cumsum(start, axis=0) - 1  # per (y, z) column
        fragments = 0
        for z in range(nz):
            for y in range(ny):
                ids = run_id[:, y, z]
                starts_col = start[:, y, z]
                n_runs = int(starts_col.sum())
                if y == 0:
                    fragments += n_runs
                    continue
                # A run survives (is not merged) unless every cell merges.
                merge_all = np.ones(n_runs, dtype=np.int64)
                np.minimum.at(merge_all, ids, mergeable[:, y, z])
                fragments += int(n_runs - merge_all.sum())
        return int(fragments)


class Partitioner(abc.ABC):
    """Common interface of all SAMR partitioners."""

    #: name used in tables, the policy base, and the registry
    name: str = "abstract"
    #: patch-based schemes re-deal the entire patch list every regrid;
    #: domain-based schemes shift contiguous ranges incrementally
    full_redistribution: bool = False
    #: ghost messages exchanged per neighbor processor per step — a
    #: structural property of the partitioning style: one aggregated
    #: block exchange for rectangular subdomains (pBD-ISP), several
    #: per-fragment messages for variable-grain or patch-scattered
    #: schemes (see the partitioner characterization in [7] of the paper)
    messages_per_neighbor: float = 3.0

    @abc.abstractmethod
    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        """Produce the per-unit owner array (curve order)."""

    def partition(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None = None,
        *,
        measure_wall_clock: bool = False,
    ) -> Partition:
        """Partition ``units`` over ``num_procs`` processors.

        ``capacities`` are optional relative processor capacities; most
        partitioners target equal shares and ignore them (the
        heterogeneous partitioner is the exception).

        ``partition_time`` is *modeled* (``seconds_per_unit * len(units)``,
        see :func:`deterministic_partition_time`) so that two identical
        calls return identical partitions — the execution simulator folds
        this time into simulated runtime, and measured wall clock made
        every downstream result nondeterministic.  Pass
        ``measure_wall_clock=True`` to opt back into real timing (profiling
        only; never inside reproducibility-gated paths).
        """
        if num_procs < 1:
            raise PartitionError(f"num_procs must be >= 1, got {num_procs}")
        if len(units) == 0:
            raise PartitionError("cannot partition zero units")
        if capacities is not None:
            capacities = np.asarray(capacities, dtype=float)
            if capacities.shape != (num_procs,):
                raise PartitionError(
                    f"capacities shape {capacities.shape} does not match "
                    f"num_procs {num_procs}"
                )
            if (capacities < 0).any() or capacities.sum() <= 0:
                raise PartitionError("capacities must be non-negative, sum > 0")
        t0 = time.perf_counter()
        assignment = self._assign(units, num_procs, capacities)
        if measure_wall_clock:
            elapsed = time.perf_counter() - t0
        else:
            per_unit = getattr(_MODELED_TIME, "seconds_per_unit", None)
            if per_unit is None:
                per_unit = DEFAULT_SECONDS_PER_UNIT
            elapsed = per_unit * len(units)
        return Partition(
            units=units,
            num_procs=num_procs,
            assignment=assignment,
            partitioner_name=self.name,
            partition_time=elapsed,
            params={
                "full_redistribution": self.full_redistribution,
                "messages_per_neighbor": self.messages_per_neighbor,
            },
        )
