"""SP-ISP: pure sequence partitioning over the inverse SFC.

The exact minimal-bottleneck split applied directly at unit granularity —
the best achievable contiguous load balance, paid for with the highest
partitioning time of the suite (binary search over the full-resolution
sequence) and cut positions that move freely between regrids (higher
migration).  The policy base recommends it only for low-dynamics,
computation-dominated octants (Table 2: octants III and IV).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner
from repro.partitioners.sequence import optimal_sequence_partition
from repro.partitioners.units import CompositeUnits

__all__ = ["SPISPPartitioner"]


class SPISPPartitioner(Partitioner):
    """Exact minimal-bottleneck contiguous split at unit granularity."""

    name = "SP-ISP"

    def __init__(self, tol: float = 1e-12) -> None:
        """``tol``: relative bottleneck tolerance of the binary search (the
        tight default makes the split effectively exact)."""
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.tol = tol

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        return optimal_sequence_partition(units.loads, num_procs, tol=self.tol)
