"""Patch-based space-filling-curve partitioner (SFC).

The classic GrACE-style SAMR partitioner: grid patches are ordered along a
space-filling curve and dealt out greedily as *indivisible* blocks.  We
emulate patch indivisibility on the composite-unit representation by
aggregating fixed runs of consecutive curve units into pseudo-patches; the
coarse, indivisible grain is what gives the SFC partitioner its
characteristically higher load imbalance (Table 4: 24.9 % vs G-MISP+SP's
11.3 %), and re-dealing all patches from scratch at every regrid gives it
high data migration.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner
from repro.partitioners.sequence import greedy_sequence_partition
from repro.partitioners.units import CompositeUnits

__all__ = ["SFCPartitioner"]


class SFCPartitioner(Partitioner):
    """Greedy curve-order assignment of indivisible patch-sized chunks."""

    name = "SFC"
    full_redistribution = True
    messages_per_neighbor = 6.0

    def __init__(self, patch_units: int = 2) -> None:
        """``patch_units``: consecutive curve units forming one indivisible
        pseudo-patch (the patch granularity of the emulated patch-based
        scheme)."""
        if patch_units < 1:
            raise ValueError(f"patch_units must be >= 1, got {patch_units}")
        self.patch_units = patch_units

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        n = len(units)
        chunk_ids = np.arange(n) // self.patch_units
        num_chunks = int(chunk_ids[-1]) + 1
        chunk_loads = np.bincount(chunk_ids, weights=units.loads,
                                  minlength=num_chunks)

        # Greedy deal in curve order; the chunk sequence is exactly a
        # sequence-partitioning instance, so the shared (backend-dispatched)
        # greedy kernel does the dealing.
        owners_of_chunk = greedy_sequence_partition(chunk_loads, num_procs)
        return owners_of_chunk[chunk_ids]
