"""Pure inverse space-filling-curve partitioner (ISP).

Domain-based: the composite grid is linearized along the inverse curve at
unit granularity and split greedily into contiguous segments.  Fine grain
buys good balance at modest cost; no attempt is made to optimize the cut
positions beyond the greedy fill.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner
from repro.partitioners.sequence import greedy_sequence_partition
from repro.partitioners.units import CompositeUnits

__all__ = ["ISPPartitioner"]


class ISPPartitioner(Partitioner):
    """Greedy contiguous split of the curve-ordered composite grid."""

    name = "ISP"

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        return greedy_sequence_partition(units.loads, num_procs)
