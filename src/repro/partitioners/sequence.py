"""One-dimensional sequence partitioning.

Splitting a curve-ordered load sequence into ``p`` contiguous segments is
the final step of every ISP-family partitioner.  Two algorithms:

- :func:`greedy_sequence_partition` — single pass filling each segment to
  the average; fast, near-optimal on fine-grained loads.
- :func:`optimal_sequence_partition` — exact minimal-bottleneck split via
  binary search on the bottleneck with a greedy feasibility check
  (O(n log(total/min_gap))).  This is the "SP" in G-MISP+SP: the paper's
  sequence-partitioning refinement that buys the best load balance.

Both have capacity-weighted variants for heterogeneous targets.

Each hot loop exists twice: the scalar reference below and a vectorized
kernel in :mod:`repro.kernels.sequence`, selected by the process-wide
kernel backend (``REPRO_KERNELS``).  The pair is proven bit-identical by
the differential suite in ``tests/test_kernels.py``; keep both halves in
lockstep when changing either.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, obs
from repro.kernels.sequence import (
    boundaries_to_assignment_vector,
    greedy_owners_vector,
    weighted_owners_vector,
)

__all__ = [
    "greedy_sequence_partition",
    "optimal_sequence_partition",
    "weighted_sequence_partition",
    "segment_loads",
    "boundaries_to_assignment",
]


def _tick(kernel: str) -> str:
    """Count the dispatch under the active backend; returns the backend."""
    backend = kernels.active_backend()
    obs.counter("kernels.calls", kernel=kernel, backend=backend).inc()
    return backend


def _check_inputs(loads: np.ndarray, p: int) -> np.ndarray:
    loads = np.asarray(loads, dtype=float)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads must be a non-empty 1-D array")
    if (loads < 0).any():
        raise ValueError("loads must be non-negative")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return loads


def boundaries_to_assignment(boundaries: np.ndarray, n: int, p: int) -> np.ndarray:
    """Segment boundaries (p+1 prefix cut points) → per-item owner array."""
    if _tick("boundaries_to_assignment") == "vector":
        return boundaries_to_assignment_vector(boundaries, n, p)
    owners = np.empty(n, dtype=int)
    for k in range(p):
        owners[boundaries[k] : boundaries[k + 1]] = k
    return owners


def segment_loads(loads: np.ndarray, assignment: np.ndarray, p: int) -> np.ndarray:
    """Total load per segment/processor."""
    return np.bincount(np.asarray(assignment), weights=loads, minlength=p)


def greedy_sequence_partition(loads: np.ndarray, p: int) -> np.ndarray:
    """Greedy split: close each segment once it reaches the running target.

    Returns the per-item owner array.  Guarantees every processor gets a
    contiguous range, all items are assigned, and — when there are at
    least ``p`` items — no processor is left empty: a segment also closes
    when the remaining items are only just enough to give every remaining
    processor one.
    """
    loads = _check_inputs(loads, p)
    n = loads.size
    if _tick("greedy") == "vector":
        return greedy_owners_vector(loads, p)
    total = loads.sum()
    owners = np.empty(n, dtype=int)
    target = total / p
    acc = 0.0
    seg = 0
    for i in range(n):
        owners[i] = seg
        acc += loads[i]
        # Close the segment when it reached its fair share — or when the
        # items left are exactly enough for the processors left (the
        # reserve clause that keeps every processor non-empty).
        if seg < p - 1 and (acc >= target * (seg + 1) or n - 1 - i <= p - 1 - seg):
            seg += 1
    return owners


def _feasible(prefix: np.ndarray, p: int, bottleneck: float) -> np.ndarray | None:
    """Greedy check: can the sequence split into <= p segments of sum <=
    bottleneck?  Returns boundaries if yes else None."""
    n = prefix.size - 1
    boundaries = [0]
    start = 0
    for _ in range(p):
        if start == n:
            break
        # furthest end with prefix[end]-prefix[start] <= bottleneck
        limit = prefix[start] + bottleneck
        end = int(np.searchsorted(prefix, limit, side="right")) - 1
        if end <= start:
            # single item exceeds bottleneck -> infeasible at this bottleneck
            return None
        boundaries.append(end)
        start = end
    if start < n:
        return None
    while len(boundaries) < p + 1:
        boundaries.append(n)
    out = np.asarray(boundaries, dtype=int)
    if n >= p:
        # The greedy fill packs left and can leave trailing segments
        # empty.  Cap boundary k at n - p + k: late cut points slide left
        # just enough to hand every trailing segment one item.  Each
        # donated item's load is <= max(load) <= any feasible bottleneck,
        # so feasibility (and the optimal bottleneck) is preserved.
        out = np.minimum(out, n - p + np.arange(p + 1))
    return out


def optimal_sequence_partition(
    loads: np.ndarray, p: int, *, tol: float = 1e-9
) -> np.ndarray:
    """Exact minimal-bottleneck contiguous partition (owner array).

    Binary search over the bottleneck value between ``max(load)`` (and the
    average) and ``total``; the greedy feasibility check is optimal for
    this decision problem.  The final boundaries are recomputed at the
    smallest feasible bottleneck found.
    """
    loads = _check_inputs(loads, p)
    n = loads.size
    prefix = np.concatenate([[0.0], np.cumsum(loads)])
    total = prefix[-1]
    if p == 1 or total == 0.0:
        return np.zeros(n, dtype=int) if p == 1 else greedy_sequence_partition(loads, p)

    lo = max(loads.max(), total / p)
    hi = total
    best = _feasible(prefix, p, hi)
    if best is None:  # pragma: no cover - hi == total is always feasible
        raise AssertionError("full-range bottleneck must be feasible")
    # Binary search on a continuous bottleneck; tolerance relative to total.
    eps = max(tol * total, 1e-15)
    while hi - lo > eps:
        mid = 0.5 * (lo + hi)
        b = _feasible(prefix, p, mid)
        if b is None:
            lo = mid
        else:
            hi = mid
            best = b
    return boundaries_to_assignment(best, n, p)


def weighted_sequence_partition(
    loads: np.ndarray, p: int, capacities: np.ndarray
) -> np.ndarray:
    """Contiguous split with per-processor targets ∝ ``capacities``.

    Implements the paper's system-sensitive distribution: "the workload is
    distributed proportionately" to relative capacities (Section 4.6).
    Cut points are chosen so each processor's cumulative share tracks the
    cumulative capacity fraction.  Targets already met by the load
    *preceding* an item are skipped before the item is assigned, so a
    zero-capacity processor (duplicate cumulative target) receives no
    items at all.
    """
    loads = _check_inputs(loads, p)
    capacities = np.asarray(capacities, dtype=float)
    if capacities.shape != (p,):
        raise ValueError(f"capacities shape {capacities.shape}, expected ({p},)")
    if (capacities < 0).any() or capacities.sum() <= 0:
        raise ValueError("capacities must be non-negative with positive sum")
    n = loads.size
    total = loads.sum()
    if total == 0.0:
        # Degenerate: spread items evenly.
        return (np.arange(n) * p // max(n, 1)).astype(int)
    if _tick("weighted") == "vector":
        return weighted_owners_vector(loads, p, capacities, total)
    prefix = np.cumsum(loads)
    cum_target = np.cumsum(capacities) / capacities.sum() * total
    owners = np.empty(n, dtype=int)
    seg = 0
    prev = 0.0
    for i in range(n):
        # Advance past every target the load so far has already met
        # *before* assigning, so met (incl. zero-capacity) targets never
        # absorb the next item.
        while seg < p - 1 and prev >= cum_target[seg]:
            seg += 1
        owners[i] = seg
        prev = prefix[i]
    return owners
