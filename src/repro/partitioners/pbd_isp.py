"""pBD-ISP: p-way binary dissection with inverse SFC ordering.

Recursive geometric bisection of the unit lattice: the processor group is
halved, the lattice box is cut by an axis-aligned plane placing load in
proportion to the two halves, and recursion continues until every
processor owns one rectangular block.  Compact rectangular subdomains give
the lowest communication volume and data migration of the suite — at the
price of the worst load balance (Table 4: 35 % max imbalance), because cut
planes are constrained to whole lattice slices.

The cut decision (:func:`choose_bisection_cut`) is shared between the
scalar recursion here and the worklist kernel in
:mod:`repro.kernels.pbd`, so the two backends dissect identically.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, obs
from repro.partitioners.base import Partitioner
from repro.partitioners.units import CompositeUnits

__all__ = ["PBDISPPartitioner", "choose_bisection_cut", "pbd_partition_cube"]


def choose_bisection_cut(
    cube: np.ndarray, nprocs: int
) -> tuple[int, int, int] | None:
    """Best axis-aligned cut for splitting ``cube`` across ``nprocs``.

    Returns ``(axis, cut, p1)`` — cut the cube before slice ``cut`` of
    ``axis`` and give the low side ``p1`` processors — or ``None`` when no
    axis can be cut.  When the cube holds at least one cell per processor,
    cut positions are clamped so each side keeps enough whole slices for
    its processor share (no processor can be starved of cells by a
    skewed load profile).
    """
    p1 = nprocs // 2
    frac = p1 / nprocs
    ncells = cube.size
    total = float(cube.sum())
    best: tuple[float, int, int] | None = None  # (error, axis, cut)
    for axis in range(3):
        length = cube.shape[axis]
        if length < 2:
            continue
        slab = ncells // length  # cells per whole slice of this axis
        cmin, cmax = 1, length - 1
        if ncells >= nprocs:
            cmin = max(cmin, -(-p1 // slab))
            cmax = min(cmax, length - (-(-(nprocs - p1) // slab)))
            if cmin > cmax:
                continue
        other = tuple(a for a in range(3) if a != axis)
        cums = np.cumsum(cube.sum(axis=other))
        if total <= 0:
            cut = min(max(int(round(length * frac)), cmin), cmax)
            err = 0.0
        else:
            target = frac * total
            idx = int(np.searchsorted(cums, target))
            candidates = [c for c in (idx, idx + 1) if cmin <= c <= cmax]
            if not candidates:
                candidates = [min(max(idx, cmin), cmax)]
            cut = min(candidates, key=lambda c: abs(float(cums[c - 1]) - target))
            err = abs(float(cums[cut - 1]) - target)
        if best is None or err < best[0]:
            best = (err, axis, cut)
    if best is None:
        # Either a 1x1x1 cube, or the per-side slice windows closed on
        # every axis: halve the longest cuttable axis and split the
        # processor group in proportion to the cells on each side.
        length = max(cube.shape)
        if length < 2:
            return None
        axis = cube.shape.index(length)  # pragma: no cover - defensive
        cut = length // 2  # pragma: no cover
        lo_cells = cut * (ncells // length)  # pragma: no cover
        p1 = int(round(nprocs * lo_cells / ncells))  # pragma: no cover
        p1 = min(  # pragma: no cover
            max(p1, max(1, nprocs - (ncells - lo_cells))),
            min(nprocs - 1, lo_cells),
        )
        return axis, cut, p1  # pragma: no cover
    return best[1], best[2], p1


def _bisect_scalar(
    cube: np.ndarray, owners: np.ndarray, proc_lo: int, proc_hi: int
) -> None:
    """Reference recursion over subcube views."""
    nprocs = proc_hi - proc_lo
    if nprocs <= 1:
        owners[...] = proc_lo
        return
    plan = choose_bisection_cut(cube, nprocs)
    if plan is None:
        # No axis can be cut: give everything to the first subgroup.
        owners[...] = proc_lo
        return
    axis, cut, p1 = plan
    sl_lo = [slice(None)] * 3
    sl_hi = [slice(None)] * 3
    sl_lo[axis] = slice(0, cut)
    sl_hi[axis] = slice(cut, cube.shape[axis])
    _bisect_scalar(cube[tuple(sl_lo)], owners[tuple(sl_lo)], proc_lo, proc_lo + p1)
    _bisect_scalar(cube[tuple(sl_hi)], owners[tuple(sl_hi)], proc_lo + p1, proc_hi)


def pbd_partition_cube(cube: np.ndarray, num_procs: int) -> np.ndarray:
    """Owner cube of the p-way binary dissection (backend-dispatched)."""
    backend = kernels.active_backend()
    obs.counter("kernels.calls", kernel="pbd", backend=backend).inc()
    if backend == "vector":
        from repro.kernels.pbd import pbd_partition_cube_vector

        return pbd_partition_cube_vector(cube, num_procs)
    owners = np.zeros(cube.shape, dtype=int)
    _bisect_scalar(cube, owners, proc_lo=0, proc_hi=num_procs)
    return owners


class PBDISPPartitioner(Partitioner):
    """Recursive coordinate bisection over the unit lattice."""

    name = "pBD-ISP"
    messages_per_neighbor = 1.0

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        # Work on the lattice-ordered load cube, then map back to curve order.
        lat_loads = np.empty(len(units))
        lat_loads[units.lattice_index] = units.loads
        cube = lat_loads.reshape(units.grid_shape)
        owners_cube = pbd_partition_cube(cube, num_procs)
        lat_owner = owners_cube.reshape(-1)
        return lat_owner[units.lattice_index]
