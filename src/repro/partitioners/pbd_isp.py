"""pBD-ISP: p-way binary dissection with inverse SFC ordering.

Recursive geometric bisection of the unit lattice: the processor group is
halved, the lattice box is cut by an axis-aligned plane placing load in
proportion to the two halves, and recursion continues until every
processor owns one rectangular block.  Compact rectangular subdomains give
the lowest communication volume and data migration of the suite — at the
price of the worst load balance (Table 4: 35 % max imbalance), because cut
planes are constrained to whole lattice slices.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner
from repro.partitioners.units import CompositeUnits

__all__ = ["PBDISPPartitioner"]


class PBDISPPartitioner(Partitioner):
    """Recursive coordinate bisection over the unit lattice."""

    name = "pBD-ISP"
    messages_per_neighbor = 1.0

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        # Work on the lattice-ordered load cube, then map back to curve order.
        lat_loads = np.empty(len(units))
        lat_loads[units.lattice_index] = units.loads
        cube = lat_loads.reshape(units.grid_shape)
        owners_cube = np.zeros(units.grid_shape, dtype=int)
        self._bisect(cube, owners_cube, proc_lo=0, proc_hi=num_procs)
        lat_owner = owners_cube.reshape(-1)
        return lat_owner[units.lattice_index]

    def _bisect(
        self,
        cube: np.ndarray,
        owners: np.ndarray,
        proc_lo: int,
        proc_hi: int,
    ) -> None:
        nprocs = proc_hi - proc_lo
        if nprocs <= 1:
            owners[...] = proc_lo
            return
        p1 = nprocs // 2
        frac = p1 / nprocs
        # Evaluate a cut on every axis and keep the one whose achievable
        # plane lands closest to the target load fraction.
        total = float(cube.sum())
        best: tuple[float, int, int] | None = None  # (error, axis, cut)
        for axis in range(3):
            if cube.shape[axis] < 2:
                continue
            other = tuple(a for a in range(3) if a != axis)
            cums = np.cumsum(cube.sum(axis=other))
            if total <= 0:
                cut = max(1, int(round(cube.shape[axis] * frac)))
                err = 0.0
            else:
                target = frac * total
                idx = int(np.searchsorted(cums, target))
                candidates = [c for c in (idx, idx + 1)
                              if 1 <= c <= cube.shape[axis] - 1]
                if not candidates:
                    candidates = [min(max(idx, 1), cube.shape[axis] - 1)]
                cut = min(candidates, key=lambda c: abs(float(cums[c - 1]) - target))
                err = abs(float(cums[cut - 1]) - target)
            if best is None or err < best[0]:
                best = (err, axis, cut)
        if best is None:
            # No axis can be cut: give everything to the first subgroup.
            owners[...] = proc_lo
            return
        _, axis, cut = best
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = slice(0, cut)
        sl_hi[axis] = slice(cut, cube.shape[axis])
        self._bisect(cube[tuple(sl_lo)], owners[tuple(sl_lo)], proc_lo, proc_lo + p1)
        self._bisect(cube[tuple(sl_hi)], owners[tuple(sl_hi)], proc_lo + p1, proc_hi)
