"""G-MISP and G-MISP+SP: variable-grain geometric multilevel inverse SFC.

The multilevel idea: start from coarse segments of the curve-linearized
composite grid and recursively split only the segments whose load exceeds
a fraction of the per-processor target.  The resulting *variable-grain*
sequence is fine exactly where the load is concentrated — cheap where the
domain is unrefined — and is then split contiguously:

- **G-MISP** closes segments greedily (fast, good balance);
- **G-MISP+SP** adds *sequence partitioning*: the exact minimal-bottleneck
  split over the variable-grain sequence, which buys the best load balance
  of the static schemes (Table 4: 11.3 % max imbalance).

The segmentation loop exists twice — the scalar recursion below and the
worklist kernel in :mod:`repro.kernels.gmisp` — selected by the kernel
backend and proven bit-identical by the differential suite.
"""

from __future__ import annotations

import numpy as np

from repro import kernels, obs
from repro.kernels.gmisp import variable_grain_bounds_vector
from repro.partitioners.base import Partitioner
from repro.partitioners.sequence import (
    greedy_sequence_partition,
    optimal_sequence_partition,
)
from repro.partitioners.units import CompositeUnits

__all__ = ["GMISPPartitioner", "GMISPSPPartitioner", "variable_grain_segments"]


def _scalar_bounds(
    prefix: np.ndarray, n: int, coarse: int, threshold: float
) -> np.ndarray:
    """Reference recursion: sorted segment start bounds (no ``n`` sentinel)."""
    seg_bounds: list[int] = []

    def emit(lo: int, hi: int) -> None:
        load = prefix[hi] - prefix[lo]
        if load > threshold and hi - lo > 1:
            mid = (lo + hi) // 2
            emit(lo, mid)
            emit(mid, hi)
        else:
            seg_bounds.append(lo)

    for start in range(0, n, coarse):
        emit(start, min(start + coarse, n))
    return np.asarray(seg_bounds, dtype=int)


def _force_min_segments(
    bounds: np.ndarray, prefix: np.ndarray, n: int, num_procs: int
) -> np.ndarray:
    """Split segments until there are at least ``min(num_procs, n)``.

    A coarse lightly-loaded curve can come out of the variable-grain pass
    with fewer segments than processors, which would strand processors
    empty no matter how the segments are dealt.  Repeatedly halve the
    heaviest splittable segment (first index on ties) until every
    processor can receive one.  Shared verbatim by both kernel backends.
    """
    want = min(num_procs, n)
    cuts = list(bounds) + [n]
    while len(cuts) - 1 < want:
        best = -1
        best_load = -1.0
        for k in range(len(cuts) - 1):
            if cuts[k + 1] - cuts[k] > 1:
                load = float(prefix[cuts[k + 1]] - prefix[cuts[k]])
                if load > best_load:
                    best = k
                    best_load = load
        cuts.insert(best + 1, (cuts[best] + cuts[best + 1]) // 2)
    return np.asarray(cuts[:-1], dtype=int)


def variable_grain_segments(
    loads: np.ndarray, num_procs: int, coarse: int, split_factor: float
) -> np.ndarray:
    """Segment the curve into variable-grain blocks.

    Returns the per-unit segment id (non-decreasing along the curve).
    Starting from blocks of ``coarse`` units, any block with load above
    ``split_factor * total / num_procs`` is recursively halved down to
    single units; heavily underspent curves are then force-split so at
    least ``min(num_procs, n)`` segments exist.
    """
    loads = np.asarray(loads, dtype=float)
    n = loads.size
    total = loads.sum()
    threshold = split_factor * total / num_procs if total > 0 else np.inf
    prefix = np.concatenate([[0.0], np.cumsum(loads)])
    backend = kernels.active_backend()
    obs.counter("kernels.calls", kernel="gmisp_segments", backend=backend).inc()
    if backend == "vector":
        bounds = variable_grain_bounds_vector(prefix, n, coarse, threshold)
    else:
        bounds = _scalar_bounds(prefix, n, coarse, threshold)
    bounds = _force_min_segments(bounds, prefix, n, num_procs)
    seg_of_unit = np.zeros(n, dtype=int)
    seg_of_unit[bounds[1:]] = 1
    return np.cumsum(seg_of_unit)


class GMISPPartitioner(Partitioner):
    """Variable-grain multilevel ISP with greedy segment assignment."""

    name = "G-MISP"
    messages_per_neighbor = 4.0

    def __init__(self, coarse: int = 64, split_factor: float = 0.25) -> None:
        """``coarse``: initial block size in units; ``split_factor``: a block
        splits while its load exceeds this fraction of the per-processor
        average."""
        if coarse < 1:
            raise ValueError(f"coarse must be >= 1, got {coarse}")
        if split_factor <= 0:
            raise ValueError(f"split_factor must be positive, got {split_factor}")
        self.coarse = coarse
        self.split_factor = split_factor

    def _segment_loads(
        self, units: CompositeUnits, num_procs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        seg = variable_grain_segments(
            units.loads, num_procs, self.coarse, self.split_factor
        )
        seg_loads = np.bincount(seg, weights=units.loads)
        return seg, seg_loads

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        seg, seg_loads = self._segment_loads(units, num_procs)
        owners_of_seg = greedy_sequence_partition(seg_loads, num_procs)
        return owners_of_seg[seg]


class GMISPSPPartitioner(GMISPPartitioner):
    """G-MISP with exact sequence partitioning of the segment loads."""

    name = "G-MISP+SP"
    messages_per_neighbor = 4.0

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        seg, seg_loads = self._segment_loads(units, num_procs)
        owners_of_seg = optimal_sequence_partition(seg_loads, num_procs)
        return owners_of_seg[seg]
