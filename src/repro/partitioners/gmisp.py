"""G-MISP and G-MISP+SP: variable-grain geometric multilevel inverse SFC.

The multilevel idea: start from coarse segments of the curve-linearized
composite grid and recursively split only the segments whose load exceeds
a fraction of the per-processor target.  The resulting *variable-grain*
sequence is fine exactly where the load is concentrated — cheap where the
domain is unrefined — and is then split contiguously:

- **G-MISP** closes segments greedily (fast, good balance);
- **G-MISP+SP** adds *sequence partitioning*: the exact minimal-bottleneck
  split over the variable-grain sequence, which buys the best load balance
  of the static schemes (Table 4: 11.3 % max imbalance).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner
from repro.partitioners.sequence import (
    greedy_sequence_partition,
    optimal_sequence_partition,
)
from repro.partitioners.units import CompositeUnits

__all__ = ["GMISPPartitioner", "GMISPSPPartitioner"]


def _variable_grain_segments(
    loads: np.ndarray, num_procs: int, coarse: int, split_factor: float
) -> np.ndarray:
    """Segment the curve into variable-grain blocks.

    Returns the per-unit segment id (non-decreasing along the curve).
    Starting from blocks of ``coarse`` units, any block with load above
    ``split_factor * total / num_procs`` is recursively halved down to
    single units.
    """
    n = loads.size
    total = loads.sum()
    threshold = split_factor * total / num_procs if total > 0 else np.inf
    prefix = np.concatenate([[0.0], np.cumsum(loads)])

    seg_bounds: list[int] = []

    def emit(lo: int, hi: int) -> None:
        load = prefix[hi] - prefix[lo]
        if load > threshold and hi - lo > 1:
            mid = (lo + hi) // 2
            emit(lo, mid)
            emit(mid, hi)
        else:
            seg_bounds.append(lo)

    for start in range(0, n, coarse):
        emit(start, min(start + coarse, n))

    seg_bounds.append(n)
    bounds = np.asarray(seg_bounds, dtype=int)
    seg_of_unit = np.zeros(n, dtype=int)
    seg_of_unit[bounds[1:-1]] = 1
    return np.cumsum(seg_of_unit)


class GMISPPartitioner(Partitioner):
    """Variable-grain multilevel ISP with greedy segment assignment."""

    name = "G-MISP"
    messages_per_neighbor = 4.0

    def __init__(self, coarse: int = 64, split_factor: float = 0.25) -> None:
        """``coarse``: initial block size in units; ``split_factor``: a block
        splits while its load exceeds this fraction of the per-processor
        average."""
        if coarse < 1:
            raise ValueError(f"coarse must be >= 1, got {coarse}")
        if split_factor <= 0:
            raise ValueError(f"split_factor must be positive, got {split_factor}")
        self.coarse = coarse
        self.split_factor = split_factor

    def _segment_loads(
        self, units: CompositeUnits, num_procs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        seg = _variable_grain_segments(
            units.loads, num_procs, self.coarse, self.split_factor
        )
        seg_loads = np.bincount(seg, weights=units.loads)
        return seg, seg_loads

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        seg, seg_loads = self._segment_loads(units, num_procs)
        owners_of_seg = greedy_sequence_partition(seg_loads, num_procs)
        return owners_of_seg[seg]


class GMISPSPPartitioner(GMISPPartitioner):
    """G-MISP with exact sequence partitioning of the segment loads."""

    name = "G-MISP+SP"
    messages_per_neighbor = 4.0

    def _assign(
        self,
        units: CompositeUnits,
        num_procs: int,
        capacities: np.ndarray | None,
    ) -> np.ndarray:
        seg, seg_loads = self._segment_loads(units, num_procs)
        owners_of_seg = optimal_sequence_partition(seg_loads, num_procs)
        return owners_of_seg[seg]
