"""The SAMR partitioner suite of Section 4.4.

Patch- and domain-based partitioners over composite grids:

- :class:`SFCPartitioner` — patch-based space-filling-curve partitioner,
- :class:`ISPPartitioner` — pure inverse space-filling-curve (domain based),
- :class:`GMISPPartitioner` — variable-grain geometric multilevel ISP,
- :class:`GMISPSPPartitioner` — G-MISP with exact sequence partitioning,
- :class:`PBDISPPartitioner` — p-way binary dissection + ISP,
- :class:`SPISPPartitioner` — pure sequence partitioning at cell grain,
- :class:`HeterogeneousPartitioner` — capacity-weighted (Figure 4),
- :class:`EqualPartitioner` — the default equal-distribution baseline.

All partitioners share one interface (:class:`Partitioner`) over
:class:`CompositeUnits`, and every partition is scored with the paper's
five-component PAC quality metric (:class:`PACMetrics`).
"""

from repro.partitioners.units import CompositeUnits, build_units
from repro.partitioners.base import (
    Partition,
    Partitioner,
    PartitionError,
    deterministic_partition_time,
)
from repro.partitioners.metrics import PACMetrics, evaluate_partition
from repro.partitioners.sequence import (
    greedy_sequence_partition,
    optimal_sequence_partition,
    weighted_sequence_partition,
    segment_loads,
)
from repro.partitioners.sfc import SFCPartitioner
from repro.partitioners.isp import ISPPartitioner
from repro.partitioners.gmisp import GMISPPartitioner, GMISPSPPartitioner
from repro.partitioners.pbd_isp import PBDISPPartitioner
from repro.partitioners.sp_isp import SPISPPartitioner
from repro.partitioners.hetero import HeterogeneousPartitioner, EqualPartitioner

#: Registry of the paper's partitioner names → classes.
PARTITIONER_REGISTRY = {
    "SFC": SFCPartitioner,
    "ISP": ISPPartitioner,
    "G-MISP": GMISPPartitioner,
    "G-MISP+SP": GMISPSPPartitioner,
    "pBD-ISP": PBDISPPartitioner,
    "SP-ISP": SPISPPartitioner,
}

__all__ = [
    "CompositeUnits",
    "build_units",
    "Partition",
    "Partitioner",
    "PartitionError",
    "deterministic_partition_time",
    "PACMetrics",
    "evaluate_partition",
    "greedy_sequence_partition",
    "optimal_sequence_partition",
    "weighted_sequence_partition",
    "segment_loads",
    "SFCPartitioner",
    "ISPPartitioner",
    "GMISPPartitioner",
    "GMISPSPPartitioner",
    "PBDISPPartitioner",
    "SPISPPartitioner",
    "HeterogeneousPartitioner",
    "EqualPartitioner",
    "PARTITIONER_REGISTRY",
]
