"""Composite-grid units: the common currency of domain-based partitioners.

The composite grid view collapses the SAMR hierarchy onto the base grid
(:func:`repro.amr.workload.composite_load_map`); partitioners then operate
on *units* — uniform base-grid blocks of a chosen granularity, each
carrying its composite load — linearized along a space-filling curve.
Keeping units on a regular block lattice makes adjacency (and hence the
communication metric) a constant-time lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.workload import WorkloadMap, composite_load_map
from repro.sfc import CURVES, curve_order, curve_rank_of_cells

__all__ = ["CompositeUnits", "build_units"]


@dataclass(slots=True)
class CompositeUnits:
    """Blocks of the base grid, ordered along a space-filling curve.

    Arrays are aligned: entry ``i`` describes the ``i``-th unit *in curve
    order*.  ``grid_shape`` is the unit lattice (nx, ny, nz); ``ijk`` the
    lattice coordinates of each unit; ``unit_id`` maps lattice C-order
    index → curve position (inverse of ``lattice_index``).
    """

    domain: Box
    granularity: int
    curve: str
    grid_shape: tuple[int, int, int]
    ijk: np.ndarray            # (n, 3) lattice coordinates, curve order
    loads: np.ndarray          # (n,) composite load per unit, curve order
    lattice_index: np.ndarray  # (n,) flat C-order lattice index, curve order
    curve_position: np.ndarray  # (nx*ny*nz,) lattice index -> curve order

    def __len__(self) -> int:
        return len(self.loads)

    @property
    def total_load(self) -> float:
        """Sum of unit loads."""
        return float(self.loads.sum())

    def unit_box(self, i: int) -> Box:
        """Base-grid box of the ``i``-th unit (curve order)."""
        g = self.granularity
        lo = tuple(
            int(self.domain.lo[a] + self.ijk[i, a] * g) for a in range(3)
        )
        hi = tuple(
            min(lo[a] + g, self.domain.hi[a]) for a in range(3)
        )
        return Box(lo, hi)

    def unit_shapes(self) -> np.ndarray:
        """(n, 3) extent of each unit in base cells (edge units clipped)."""
        g = self.granularity
        lo = self.ijk * g + np.asarray(self.domain.lo)
        hi = np.minimum(lo + g, np.asarray(self.domain.hi))
        return hi - lo

    def neighbors_in_curve_order(self) -> list[tuple[int, int, int]]:
        """Face-adjacent unit pairs as (i, j, axis) with i, j curve positions.

        Each lattice face is reported once (from the lower neighbor).
        """
        nx, ny, nz = self.grid_shape
        out: list[tuple[int, int, int]] = []
        lat = self.curve_position.reshape(self.grid_shape)
        for axis in range(3):
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            sl_lo[axis] = slice(0, self.grid_shape[axis] - 1)
            sl_hi[axis] = slice(1, self.grid_shape[axis])
            a = lat[tuple(sl_lo)].ravel()
            b = lat[tuple(sl_hi)].ravel()
            out.extend(zip(a.tolist(), b.tolist(), [axis] * len(a)))
        return out

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized adjacency: (i, j, axis) arrays of curve positions."""
        pairs = self.neighbors_in_curve_order()
        if not pairs:
            return (np.zeros(0, int), np.zeros(0, int), np.zeros(0, int))
        arr = np.asarray(pairs, dtype=int)
        return arr[:, 0], arr[:, 1], arr[:, 2]


def build_units(
    hierarchy_or_map: GridHierarchy | WorkloadMap,
    *,
    granularity: int = 4,
    curve: str = "hilbert",
) -> CompositeUnits:
    """Build composite units from a hierarchy (or a precomputed load map).

    ``granularity`` is the unit block edge in base cells; the paper calls
    this the "partitioning granularity" configured per octant policy.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")

    if isinstance(hierarchy_or_map, GridHierarchy):
        wmap = composite_load_map(hierarchy_or_map)
    else:
        wmap = hierarchy_or_map
    domain = wmap.domain
    shape = domain.shape
    g = granularity
    grid_shape = tuple(-(-s // g) for s in shape)

    # Block-sum the load map onto the unit lattice (pad to a multiple of g).
    padded_shape = tuple(n * g for n in grid_shape)
    if padded_shape != shape:
        padded = np.zeros(padded_shape)
        padded[: shape[0], : shape[1], : shape[2]] = wmap.values
    else:
        padded = wmap.values
    block_loads = padded.reshape(
        grid_shape[0], g, grid_shape[1], g, grid_shape[2], g
    ).sum(axis=(1, 3, 5))

    # Curve order over lattice coordinates (memoized by shape + curve).
    nx, ny, nz = grid_shape
    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    flat_ijk = np.column_stack([ii.ravel(), jj.ravel(), kk.ravel()])
    order = curve_order(grid_shape, curve)
    curve_position = curve_rank_of_cells(grid_shape, curve)

    return CompositeUnits(
        domain=domain,
        granularity=g,
        curve=curve,
        grid_shape=grid_shape,  # type: ignore[arg-type]
        ijk=flat_ijk[order],
        loads=block_loads.ravel()[order],
        lattice_index=order,
        curve_position=curve_position,
    )
