"""Composite-grid units: the common currency of domain-based partitioners.

The composite grid view collapses the SAMR hierarchy onto the base grid
(:func:`repro.amr.workload.composite_load_map`); partitioners then operate
on *units* — uniform base-grid blocks of a chosen granularity, each
carrying its composite load — linearized along a space-filling curve.
Keeping units on a regular block lattice makes adjacency (and hence the
communication metric) a constant-time lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.workload import WorkloadMap, composite_load_map
from repro.sfc import CURVES, curve_order, curve_rank_of_cells

__all__ = [
    "CompositeUnits",
    "build_units",
    "clear_adjacency_memo",
    "rebuild_units",
    "units_from_map",
]

#: memoized (grid_shape, curve) → (i, j, axis) adjacency arrays.  The
#: lattice adjacency and curve positions are pure functions of the unit
#: lattice shape and curve choice, yet the cost-model and PAC-metric
#: paths rebuilt them (through Python tuple lists) at every regrid
#: interval.  Arrays are read-only; the memo is bounded FIFO.
_ADJ_MEMO: dict[
    tuple[tuple[int, int, int], str],
    tuple[np.ndarray, np.ndarray, np.ndarray],
] = {}
_ADJ_MEMO_MAX = 64


def clear_adjacency_memo() -> None:
    """Drop all memoized adjacency arrays (mainly for tests)."""
    _ADJ_MEMO.clear()


@dataclass(slots=True)
class CompositeUnits:
    """Blocks of the base grid, ordered along a space-filling curve.

    Arrays are aligned: entry ``i`` describes the ``i``-th unit *in curve
    order*.  ``grid_shape`` is the unit lattice (nx, ny, nz); ``ijk`` the
    lattice coordinates of each unit; ``unit_id`` maps lattice C-order
    index → curve position (inverse of ``lattice_index``).
    """

    domain: Box
    granularity: int
    curve: str
    grid_shape: tuple[int, int, int]
    ijk: np.ndarray            # (n, 3) lattice coordinates, curve order
    loads: np.ndarray          # (n,) composite load per unit, curve order
    lattice_index: np.ndarray  # (n,) flat C-order lattice index, curve order
    curve_position: np.ndarray  # (nx*ny*nz,) lattice index -> curve order

    def __len__(self) -> int:
        return len(self.loads)

    @property
    def total_load(self) -> float:
        """Sum of unit loads."""
        return float(self.loads.sum())

    def unit_box(self, i: int) -> Box:
        """Base-grid box of the ``i``-th unit (curve order)."""
        g = self.granularity
        lo = tuple(
            int(self.domain.lo[a] + self.ijk[i, a] * g) for a in range(3)
        )
        hi = tuple(
            min(lo[a] + g, self.domain.hi[a]) for a in range(3)
        )
        return Box(lo, hi)

    def unit_shapes(self) -> np.ndarray:
        """(n, 3) extent of each unit in base cells (edge units clipped)."""
        g = self.granularity
        lo = self.ijk * g + np.asarray(self.domain.lo)
        hi = np.minimum(lo + g, np.asarray(self.domain.hi))
        return hi - lo

    def neighbors_in_curve_order(self) -> list[tuple[int, int, int]]:
        """Face-adjacent unit pairs as (i, j, axis) with i, j curve positions.

        Each lattice face is reported once (from the lower neighbor).
        """
        i, j, axis = self.adjacency_arrays()
        return list(zip(i.tolist(), j.tolist(), axis.tolist()))

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized adjacency: (i, j, axis) arrays of curve positions.

        Pure function of ``(grid_shape, curve)``, memoized process-wide —
        the returned arrays are read-only (copy before mutating).
        """
        memo_key = (self.grid_shape, self.curve)
        cached = _ADJ_MEMO.get(memo_key)
        if cached is not None:
            obs.counter("units.adjacency_memo", outcome="hit").inc()
            return cached
        obs.counter("units.adjacency_memo", outcome="miss").inc()
        lat = self.curve_position.reshape(self.grid_shape)
        ii: list[np.ndarray] = []
        jj: list[np.ndarray] = []
        aa: list[np.ndarray] = []
        for axis in range(3):
            sl_lo = [slice(None)] * 3
            sl_hi = [slice(None)] * 3
            sl_lo[axis] = slice(0, self.grid_shape[axis] - 1)
            sl_hi[axis] = slice(1, self.grid_shape[axis])
            a = lat[tuple(sl_lo)].ravel()
            ii.append(a)
            jj.append(lat[tuple(sl_hi)].ravel())
            aa.append(np.full(a.size, axis, dtype=int))
        i = np.concatenate(ii).astype(int, copy=False)
        j = np.concatenate(jj).astype(int, copy=False)
        axis_arr = np.concatenate(aa)
        for arr in (i, j, axis_arr):
            arr.setflags(write=False)
        while len(_ADJ_MEMO) >= _ADJ_MEMO_MAX:
            _ADJ_MEMO.pop(next(iter(_ADJ_MEMO)))
        _ADJ_MEMO[memo_key] = (i, j, axis_arr)
        return i, j, axis_arr


def build_units(
    hierarchy_or_map: GridHierarchy | WorkloadMap,
    *,
    granularity: int = 4,
    curve: str = "hilbert",
) -> CompositeUnits:
    """Build composite units from a hierarchy (or a precomputed load map).

    ``granularity`` is the unit block edge in base cells; the paper calls
    this the "partitioning granularity" configured per octant policy.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1, got {granularity}")
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")

    if isinstance(hierarchy_or_map, GridHierarchy):
        wmap = composite_load_map(hierarchy_or_map)
    else:
        wmap = hierarchy_or_map
    return units_from_map(wmap, granularity=granularity, curve=curve)


def _block_loads(wmap: WorkloadMap, g: int) -> np.ndarray:
    """Block-sum the load map onto the unit lattice (pad to a multiple of g)."""
    shape = wmap.domain.shape
    grid_shape = tuple(-(-s // g) for s in shape)
    padded_shape = tuple(n * g for n in grid_shape)
    if padded_shape != shape:
        padded = np.zeros(padded_shape)
        padded[: shape[0], : shape[1], : shape[2]] = wmap.values
    else:
        padded = wmap.values
    return padded.reshape(
        grid_shape[0], g, grid_shape[1], g, grid_shape[2], g
    ).sum(axis=(1, 3, 5))


def units_from_map(
    wmap: WorkloadMap, *, granularity: int, curve: str
) -> CompositeUnits:
    """Build :class:`CompositeUnits` from a precomputed workload map."""
    g = granularity
    block_loads = _block_loads(wmap, g)
    grid_shape = block_loads.shape

    # Curve order over lattice coordinates (memoized by shape + curve).
    nx, ny, nz = grid_shape
    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    flat_ijk = np.column_stack([ii.ravel(), jj.ravel(), kk.ravel()])
    order = curve_order(grid_shape, curve)
    curve_position = curve_rank_of_cells(grid_shape, curve)

    return CompositeUnits(
        domain=wmap.domain,
        granularity=g,
        curve=curve,
        grid_shape=grid_shape,  # type: ignore[arg-type]
        ijk=flat_ijk[order],
        loads=block_loads.ravel()[order],
        lattice_index=order,
        curve_position=curve_position,
    )


def rebuild_units(cached: CompositeUnits, wmap: WorkloadMap) -> CompositeUnits:
    """Rebuild units against a new load map, reusing cached geometry.

    The lattice coordinates, curve ordering, and curve positions of
    ``cached`` are pure functions of (domain, granularity, curve) and are
    shared with the returned object; only the block-summed loads are
    recomputed — through the same :func:`_block_loads` routine the full
    build uses, so the result is bit-identical to ``units_from_map``.
    """
    if wmap.domain != cached.domain:
        raise ValueError("rebuild_units requires an unchanged domain")
    block_loads = _block_loads(wmap, cached.granularity)
    return CompositeUnits(
        domain=cached.domain,
        granularity=cached.granularity,
        curve=cached.curve,
        grid_shape=cached.grid_shape,
        ijk=cached.ijk,
        loads=block_loads.ravel()[cached.lattice_index],
        lattice_index=cached.lattice_index,
        curve_position=cached.curve_position,
    )
