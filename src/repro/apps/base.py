"""Common interface for synthetic adaptive applications."""

from __future__ import annotations

import abc

import numpy as np

from repro.amr.box import Box
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.trace import AdaptationTrace, Snapshot

__all__ = ["SyntheticApplication", "generate_trace"]


class SyntheticApplication(abc.ABC):
    """A driver that emits per-step error and load fields on a base grid.

    Subclasses model one class of physics (moving shock, gravitational
    collapse, ...) well enough to reproduce the *refinement behavior* a
    real solver would exhibit — which is the only thing the runtime
    management layer observes.
    """

    #: base-grid domain of the application
    domain: Box

    @abc.abstractmethod
    def error_field(self, step: int) -> np.ndarray:
        """Normalized [0, 1] refinement-error field at coarse step ``step``."""

    def load_field(self, step: int) -> np.ndarray | None:
        """Optional per-base-cell cost multiplier (heterogeneous physics).

        Default ``None`` means uniform unit cost per cell.
        """
        return None

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short application identifier used in traces and reports."""


def generate_trace(
    app: SyntheticApplication,
    policy: RegridPolicy,
    num_coarse_steps: int,
    *,
    progress: bool = False,
) -> AdaptationTrace:
    """Run ``app`` through the regridder and capture a full adaptation trace.

    One snapshot is stored per regrid step (every ``policy.regrid_interval``
    coarse steps, starting at step 0), reproducing the paper's trace
    methodology ("snap-shots of the SAMR grid hierarchy at each regrid
    step").
    """
    if num_coarse_steps < 1:
        raise ValueError(f"num_coarse_steps must be >= 1, got {num_coarse_steps}")
    regridder = Regridder(app.domain, policy)
    trace = AdaptationTrace(
        meta={
            "app": app.name,
            "domain": app.domain.to_dict(),
            "ratio": policy.ratio,
            "refined_levels": policy.max_refined_levels,
            "regrid_interval": policy.regrid_interval,
            "num_coarse_steps": num_coarse_steps,
        }
    )
    for step in range(0, num_coarse_steps, policy.regrid_interval):
        err = app.error_field(step)
        load = app.load_field(step)
        hierarchy = regridder.regrid(err, load)
        trace.append(Snapshot(step=step, hierarchy=hierarchy))
        if progress and (len(trace) % 25 == 0):  # pragma: no cover - cosmetic
            print(f"[{app.name}] step {step}/{num_coarse_steps} "
                  f"({len(trace)} snapshots)")
    return trace
