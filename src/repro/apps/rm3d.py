"""RM3D: synthetic Richtmyer–Meshkov 3-D compressible turbulence driver.

The paper's case study traces RM3D, "a 3-D compressible turbulence
application solving the Richtmyer–Meshkov instability", on a 128x32x32
base grid with 3 levels of factor-2 space-time refinement, regridding
every 4 steps for 800 coarse steps (Section 4.5).

We reproduce the *refinement behavior* of that run as a scripted sequence
of physical phases, each generating the error field its real counterpart
would produce:

=========  ==================================================  ==========
snapshots  physics                                              character
=========  ==================================================  ==========
0–2        initial perturbation: bulky clumps seeded through    scattered,
           the domain, settling fast                            fast, bulky
3–22       clumps merged into one quiescent interface band      localized,
                                                                slow, bulky
23–55      incident shock: a thin planar front sweeping the     localized,
           domain at constant speed, hitting the interface      fast, thin
56–120     growing mixing zone: many small thin bubble/spike    scattered,
           structures, slowly expanding                         slow, thin
121–148    mixing-zone coarsening: structures merge into        scattered,
           fewer bulky blobs                                    slow, bulky
149–168    re-shock: reflected front races back through the     scattered,
           mixing zone, re-energizing it                        fast, thin
169–188    compressed layer: a single thin quasi-static band    localized,
                                                                slow, thin
189–end    collapse to a churning compact turbulent core        localized,
                                                                fast, bulky
=========  ==================================================  ==========

Those eight characters are exactly the eight octants of the paper's
application-state classification, so the scripted run visits every octant;
the phase boundaries are placed so that the sampled snapshots of the
paper's Table 3 (0, 5, 25, 106, 137, 162, 174, 201) land in the matching
phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.apps import fields
from repro.apps.base import SyntheticApplication
from repro.util.rng import ensure_rng

__all__ = ["RM3DConfig", "RM3D"]


@dataclass(frozen=True, slots=True)
class RM3DConfig:
    """Parameters of the RM3D synthetic driver (paper defaults)."""

    shape: tuple[int, int, int] = (128, 32, 32)
    regrid_interval: int = 4
    interface_x: float = 40.0
    shock_entry_snapshot: float = 23.0
    shock_speed: float = 3.4          # base cells per snapshot
    reshock_snapshot: float = 149.0
    reshock_speed: float = 4.5
    num_seed_clumps: int = 9
    num_mixing_structures: int = 26
    seed: int = 20020415              # IPDPS 2002 era

    def __post_init__(self) -> None:
        if any(s < 8 for s in self.shape):
            raise ValueError(f"shape extents must be >= 8, got {self.shape}")
        if self.regrid_interval < 1:
            raise ValueError("regrid_interval must be >= 1")
        if not (0 < self.interface_x < self.shape[0]):
            raise ValueError("interface_x must lie inside the domain")
        if self.shock_speed <= 0 or self.reshock_speed <= 0:
            raise ValueError("shock speeds must be positive")


class RM3D(SyntheticApplication):
    """Scripted Richtmyer–Meshkov refinement driver."""

    def __init__(self, config: RM3DConfig | None = None) -> None:
        self.config = config or RM3DConfig()
        self.domain = Box.from_shape(self.config.shape)
        rng = ensure_rng(self.config.seed)
        cfg = self.config
        sx, sy, sz = cfg.shape

        # Initial perturbation clumps: bulky, spread through the domain.
        self._seed_pos = np.column_stack(
            [
                rng.uniform(0.15 * sx, 0.85 * sx, cfg.num_seed_clumps),
                rng.uniform(0.1 * sy, 0.9 * sy, cfg.num_seed_clumps),
                rng.uniform(0.1 * sz, 0.9 * sz, cfg.num_seed_clumps),
            ]
        )
        self._seed_sigma = rng.uniform(5.5, 7.5, cfg.num_seed_clumps)

        # Mixing-zone structures: fixed identities, animated by phase.
        self._mix_u = rng.uniform(0.0, 1.0, cfg.num_mixing_structures)  # x spread
        self._mix_y = rng.uniform(0.08 * sy, 0.92 * sy, cfg.num_mixing_structures)
        self._mix_z = rng.uniform(0.08 * sz, 0.92 * sz, cfg.num_mixing_structures)
        self._mix_phase = rng.uniform(0.0, 2.0 * np.pi, cfg.num_mixing_structures)
        self._mix_drift = rng.uniform(-0.25, 0.25, (cfg.num_mixing_structures, 3))

        # Late-core churn phases.
        self._core_phase = rng.uniform(0.0, 2.0 * np.pi, 3)

    @property
    def name(self) -> str:
        return "rm3d"

    # -- phase script ------------------------------------------------------------

    def snapshot_index(self, step: int) -> float:
        """Coarse step → snapshot index (regrids every ``regrid_interval``)."""
        return step / self.config.regrid_interval

    def error_field(self, step: int) -> np.ndarray:
        """Error field for coarse step ``step`` (see module docstring)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        tau = self.snapshot_index(step)
        cfg = self.config
        parts: list[np.ndarray] = [np.zeros(cfg.shape)]

        if tau < 3.0:
            parts.append(self._initial_clumps(tau))
        elif tau < cfg.shock_entry_snapshot:
            parts.append(self._quiet_interface(tau))
        if cfg.shock_entry_snapshot <= tau:
            shock = self._incident_shock(tau)
            if shock is not None:
                parts.append(shock)
            # Interface persists (weakly, shallow refinement only) until the
            # shock reaches it — the moving front is what drives adaptation.
            if self._shock_x(tau) < cfg.interface_x:
                parts.append(0.55 * self._quiet_interface(tau))
        if self._shock_hit_snapshot() <= tau < 121.0:
            parts.append(self._mixing_zone(tau, thin=True))
        elif 121.0 <= tau < cfg.reshock_snapshot:
            parts.append(self._mixing_zone(tau, thin=False))
        if cfg.reshock_snapshot <= tau < 169.0:
            reshock = self._reshock(tau)
            if reshock is not None:
                parts.append(reshock)
            parts.append(self._mixing_zone(tau, thin=True, reexcited=True))
        if 169.0 <= tau < 189.0:
            parts.append(self._compressed_layer(tau))
        if tau >= 189.0:
            parts.append(self._turbulent_core(tau))

        return fields.combine(*parts)

    def load_field(self, step: int) -> np.ndarray:
        """Heterogeneous physics cost: front regions cost ~2x quiescent flow."""
        err = self.error_field(step)
        return 1.0 + err  # cost multiplier in [1, 2]

    # -- phase implementations ------------------------------------------------------

    def _initial_clumps(self, tau: float) -> np.ndarray:
        """Scattered bulky clumps settling quickly (octant IV character)."""
        cfg = self.config
        decay = max(0.0, 1.0 - tau / 3.5)
        out = np.zeros(cfg.shape)
        for i in range(cfg.num_seed_clumps):
            # Clumps drift toward the interface plane as they settle.
            frac = tau / 3.0
            cx = (1 - frac) * self._seed_pos[i, 0] + frac * cfg.interface_x
            out = np.maximum(
                out,
                fields.gaussian_blob(
                    cfg.shape,
                    (cx, self._seed_pos[i, 1], self._seed_pos[i, 2]),
                    self._seed_sigma[i] * (1.0 - 0.15 * tau),
                    peak=0.9 * decay + 0.55,
                ),
            )
        return out

    def _quiet_interface(self, tau: float) -> np.ndarray:
        """A single bulky quasi-static band at the interface (octant VII)."""
        cfg = self.config
        ripple = 0.02 * np.sin(0.15 * tau)
        return fields.slab(
            cfg.shape,
            cfg.interface_x - 6.0 + ripple,
            cfg.interface_x + 6.0 + ripple,
            peak=0.62,
            edge=1.5,
        )

    def _shock_x(self, tau: float) -> float:
        cfg = self.config
        return 4.0 + cfg.shock_speed * (tau - cfg.shock_entry_snapshot)

    def _shock_hit_snapshot(self) -> float:
        """Snapshot at which the incident shock reaches the interface."""
        cfg = self.config
        return cfg.shock_entry_snapshot + (cfg.interface_x - 4.0) / cfg.shock_speed

    def _incident_shock(self, tau: float) -> np.ndarray | None:
        """Thin planar shock front sweeping +x (octant I character)."""
        cfg = self.config
        xs = self._shock_x(tau)
        if not (-3.0 < xs < cfg.shape[0] + 3.0):
            return None
        return fields.planar_sheet(cfg.shape, xs, width=1.4, peak=0.60)

    def _mixing_zone(
        self, tau: float, *, thin: bool, reexcited: bool = False
    ) -> np.ndarray:
        """Bubble/spike structures behind the interface.

        ``thin=True`` renders small high-surface structures (communication
        dominated, octant VI); ``thin=False`` renders merged bulky blobs
        (computation dominated, octant VIII).
        """
        cfg = self.config
        hit = self._shock_hit_snapshot()
        age = max(tau - hit, 0.0)
        # Zone half-thickness grows with age, saturating.
        half = min(6.0 + 0.35 * age, 26.0)
        center = cfg.interface_x + 0.08 * age

        if thin:
            sigma_x, sigma_yz, peak = 1.6, 2.2, 0.92
            speed = 0.05
        else:
            sigma_x, sigma_yz, peak = 6.5, 7.5, 0.88
            speed = 0.04
        if reexcited:
            speed = 0.5
            peak = 0.95

        n = cfg.num_mixing_structures if thin else max(cfg.num_mixing_structures // 3, 4)
        out = np.zeros(cfg.shape)
        for i in range(n):
            px = center + (2.0 * self._mix_u[i] - 1.0) * half
            wobble = np.sin(speed * tau + self._mix_phase[i])
            cx = px + 1.5 * wobble + self._mix_drift[i, 0] * age * 0.15
            cy = self._mix_y[i] + 2.0 * wobble * self._mix_drift[i, 1]
            cz = self._mix_z[i] + 2.0 * wobble * self._mix_drift[i, 2]
            out = np.maximum(
                out,
                fields.gaussian_blob(
                    cfg.shape, (cx, cy, cz), (sigma_x, sigma_yz, sigma_yz), peak=peak
                ),
            )
        return out

    def _reshock(self, tau: float) -> np.ndarray | None:
        """Reflected shock racing back in -x (octant II driver)."""
        cfg = self.config
        xs = cfg.shape[0] - 4.0 - cfg.reshock_speed * (tau - cfg.reshock_snapshot)
        if not (-3.0 < xs < cfg.shape[0] + 3.0):
            return None
        return fields.planar_sheet(cfg.shape, xs, width=1.4, peak=0.60)

    def _compressed_layer(self, tau: float) -> np.ndarray:
        """Single thin quasi-static band after re-shock (octant V)."""
        cfg = self.config
        drift = 0.03 * (tau - 169.0)
        x0 = 30.0 + drift
        return fields.planar_sheet(cfg.shape, x0, width=1.6, peak=0.60)

    def _turbulent_core(self, tau: float) -> np.ndarray:
        """Compact bulky core churning rapidly (octant III)."""
        cfg = self.config
        t = tau - 189.0
        cx = 32.0 + 3.5 * np.sin(1.1 * t + self._core_phase[0])
        cy = cfg.shape[1] / 2.0 + 2.5 * np.sin(1.3 * t + self._core_phase[1])
        cz = cfg.shape[2] / 2.0 + 2.5 * np.cos(0.9 * t + self._core_phase[2])
        sigma = 6.5 + 1.5 * np.sin(1.7 * t)
        return fields.gaussian_blob(cfg.shape, (cx, cy, cz), sigma, peak=0.9)
