"""Vectorized error-field primitives on the base grid.

Every synthetic application composes its per-step error field from these
building blocks.  All functions return float arrays of the given shape with
values in [0, 1]; callers combine them with :func:`combine` (elementwise
max, so overlapping features refine to the deepest requested level).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["grid_coords", "gaussian_blob", "planar_sheet", "slab", "combine"]


def grid_coords(shape: Sequence[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cell-center coordinate arrays (open meshgrid, broadcastable)."""
    sx, sy, sz = shape
    return np.ogrid[0.5 : sx : 1.0, 0.5 : sy : 1.0, 0.5 : sz : 1.0]


def gaussian_blob(
    shape: Sequence[int],
    center: Sequence[float],
    sigma: float | Sequence[float],
    peak: float = 1.0,
) -> np.ndarray:
    """Anisotropic Gaussian bump centered at ``center``."""
    if np.isscalar(sigma):
        sigma = (float(sigma),) * 3
    sig = tuple(float(s) for s in sigma)  # type: ignore[union-attr]
    if any(s <= 0 for s in sig):
        raise ValueError(f"sigma components must be positive, got {sigma!r}")
    x, y, z = grid_coords(shape)
    r2 = (
        ((x - center[0]) / sig[0]) ** 2
        + ((y - center[1]) / sig[1]) ** 2
        + ((z - center[2]) / sig[2]) ** 2
    )
    return peak * np.exp(-0.5 * r2)


def planar_sheet(
    shape: Sequence[int],
    position: float,
    width: float,
    axis: int = 0,
    peak: float = 1.0,
) -> np.ndarray:
    """Thin planar feature (a shock front) normal to ``axis`` at ``position``.

    Gaussian profile across the sheet; returns zeros when the sheet lies
    entirely outside the domain.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    coords = grid_coords(shape)
    d = coords[axis] - position
    profile = peak * np.exp(-0.5 * (d / width) ** 2)
    return np.broadcast_to(profile, shape).copy()


def slab(
    shape: Sequence[int],
    lo: float,
    hi: float,
    axis: int = 0,
    peak: float = 1.0,
    edge: float = 1.0,
) -> np.ndarray:
    """Soft-edged slab ``lo <= coord <= hi`` along ``axis``."""
    if hi <= lo:
        raise ValueError(f"slab needs hi > lo, got [{lo}, {hi}]")
    coords = grid_coords(shape)
    c = coords[axis]
    ramp_in = 1.0 / (1.0 + np.exp(-(c - lo) / max(edge, 1e-9)))
    ramp_out = 1.0 / (1.0 + np.exp((c - hi) / max(edge, 1e-9)))
    return np.broadcast_to(peak * ramp_in * ramp_out, shape).copy()


def combine(*fields: np.ndarray) -> np.ndarray:
    """Elementwise maximum of error fields, clipped to [0, 1]."""
    if not fields:
        raise ValueError("combine requires at least one field")
    out = fields[0]
    for f in fields[1:]:
        out = np.maximum(out, f)
    return np.clip(out, 0.0, 1.0)
