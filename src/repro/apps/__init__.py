"""Synthetic adaptive applications.

The paper's evaluation consumes *adaptation traces* of real solvers (RM3D,
a Richtmyer–Meshkov 3-D compressible turbulence code).  We do not have the
Fortran solvers; instead each driver here synthesizes the error fields such
a solver would produce — moving shocks, growing mixing zones, collapsing
clumps — and the shared :func:`generate_trace` harness turns them into
SAMR adaptation traces through the regridder.  The partitioners and the
execution simulator only ever see the trace, exactly as in the paper.
"""

from repro.apps.base import SyntheticApplication, generate_trace
from repro.apps.rm3d import RM3D, RM3DConfig
from repro.apps.galaxy import GalaxyFormation, GalaxyConfig
from repro.apps.supernova import Supernova, SupernovaConfig
from repro.apps.loadgen import SyntheticLoadGenerator, LoadPattern

__all__ = [
    "SyntheticApplication",
    "generate_trace",
    "RM3D",
    "RM3DConfig",
    "GalaxyFormation",
    "GalaxyConfig",
    "Supernova",
    "SupernovaConfig",
    "SyntheticLoadGenerator",
    "LoadPattern",
]
