"""Galaxy-formation driver: hierarchical gravitational collapse.

Section 2 motivates Pragma with galaxy formation: "objects of progressively
larger mass merge and collapse to form new systems".  The driver seeds many
small clumps that fall toward their common barycenter and merge pairwise,
so adaptation starts *scattered* (many separate refined regions) and ends
*localized* (one massive object), with dynamics decaying as mergers finish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.apps import fields
from repro.apps.base import SyntheticApplication
from repro.util.rng import ensure_rng

__all__ = ["GalaxyConfig", "GalaxyFormation"]


@dataclass(frozen=True, slots=True)
class GalaxyConfig:
    """Parameters of the hierarchical-collapse driver."""

    shape: tuple[int, int, int] = (64, 64, 64)
    num_clumps: int = 16
    collapse_steps: int = 400     # coarse steps until full merger
    seed: int = 7

    def __post_init__(self) -> None:
        if any(s < 8 for s in self.shape):
            raise ValueError(f"shape extents must be >= 8, got {self.shape}")
        if self.num_clumps < 2:
            raise ValueError("need at least 2 clumps to merge")
        if self.collapse_steps < 1:
            raise ValueError("collapse_steps must be >= 1")


class GalaxyFormation(SyntheticApplication):
    """Scattered-to-localized hierarchical merger driver."""

    def __init__(self, config: GalaxyConfig | None = None) -> None:
        self.config = config or GalaxyConfig()
        self.domain = Box.from_shape(self.config.shape)
        rng = ensure_rng(self.config.seed)
        cfg = self.config
        ext = np.asarray(cfg.shape, dtype=float)
        self._pos0 = rng.uniform(0.15, 0.85, (cfg.num_clumps, 3)) * ext
        self._mass = rng.uniform(0.5, 1.5, cfg.num_clumps)
        self._center = (self._pos0 * self._mass[:, None]).sum(0) / self._mass.sum()

    @property
    def name(self) -> str:
        return "galaxy"

    def _progress(self, step: int) -> float:
        """Collapse progress in [0, 1]: quadratic free-fall-like approach."""
        t = min(step / self.config.collapse_steps, 1.0)
        return t * t * (3.0 - 2.0 * t)  # smoothstep

    def error_field(self, step: int) -> np.ndarray:
        """Clumps interpolate toward the barycenter and fatten as they merge."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        cfg = self.config
        p = self._progress(step)
        out = np.zeros(cfg.shape)
        for i in range(cfg.num_clumps):
            pos = (1.0 - p) * self._pos0[i] + p * self._center
            sigma = 2.0 + 4.0 * p * self._mass[i]
            peak = 0.6 + 0.35 * p
            out = np.maximum(
                out, fields.gaussian_blob(cfg.shape, pos, sigma, peak=peak)
            )
        return np.clip(out, 0.0, 1.0)

    def load_field(self, step: int) -> np.ndarray:
        """Collapsed regions run self-gravity solves: ~3x cost at the peak."""
        return 1.0 + 2.0 * self.error_field(step)
