"""Synthetic background-load generator.

Section 4.6: "The experimental setup consisted of a synthetic load
generator (for simulating heterogeneous loads on the cluster nodes) and an
external resource monitoring system."  This module is that load generator:
it produces per-node background CPU utilization time series that the
cluster simulator superimposes on application work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import ensure_rng, spawn_rng

__all__ = ["LoadPattern", "SyntheticLoadGenerator"]


class LoadPattern(enum.Enum):
    """Background load shapes.

    - ``UNIFORM``: every node idles (homogeneous baseline).
    - ``STEPPED``: static heterogeneity — node *k* carries a fixed load
      proportional to its index, the classic "half the cluster is busy"
      scenario of Table 5.
    - ``RANDOM_WALK``: mean-reverting (Ornstein–Uhlenbeck-like) load per
      node around a node-specific level.
    - ``BURSTY``: mostly idle with exponential-length load bursts, modeling
      interactive users.
    """

    UNIFORM = "uniform"
    STEPPED = "stepped"
    RANDOM_WALK = "random_walk"
    BURSTY = "bursty"


@dataclass(slots=True)
class SyntheticLoadGenerator:
    """Generates background CPU-utilization fractions in [0, max_load].

    The generator is deterministic given (seed, num_nodes, pattern): the
    full series is synthesized lazily but reproducibly, so monitors that
    sample at different rates observe consistent values.
    """

    num_nodes: int
    pattern: LoadPattern = LoadPattern.STEPPED
    max_load: float = 0.75
    volatility: float = 0.05
    seed: int = 42
    _series: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _horizon: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if not (0.0 <= self.max_load < 1.0):
            raise ValueError(f"max_load must be in [0, 1), got {self.max_load}")
        if self.volatility < 0:
            raise ValueError("volatility must be >= 0")

    def load_at(self, node: int, t: float) -> float:
        """Background CPU fraction consumed on ``node`` at time ``t``.

        Time is continuous; the series is generated at unit resolution and
        sampled with zero-order hold.
        """
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        step = int(t)
        self._ensure_horizon(step + 1)
        return float(self._series[node][step])

    def available_fraction(self, node: int, t: float) -> float:
        """CPU fraction left for the application: ``1 - load``."""
        return 1.0 - self.load_at(node, t)

    def mean_available(self, node: int, t0: float, t1: float) -> float:
        """Average available fraction over [t0, t1] (inclusive unit samples)."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
        steps = range(int(t0), int(t1) + 1)
        return float(
            np.mean([self.available_fraction(node, float(s)) for s in steps])
        )

    # -- series synthesis ----------------------------------------------------------

    def _ensure_horizon(self, horizon: int) -> None:
        if horizon <= self._horizon and self._series:
            return
        horizon = max(horizon, 2 * self._horizon, 256)
        rngs = spawn_rng(ensure_rng(self.seed), self.num_nodes)
        for node in range(self.num_nodes):
            self._series[node] = self._synthesize(node, horizon, rngs[node])
        self._horizon = horizon

    def _synthesize(
        self, node: int, horizon: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.pattern is LoadPattern.UNIFORM:
            return np.zeros(horizon)

        if self.pattern is LoadPattern.STEPPED:
            if self.num_nodes == 1:
                level = 0.0
            else:
                level = self.max_load * node / (self.num_nodes - 1)
            jitter = self.volatility * rng.standard_normal(horizon)
            return np.clip(level + jitter, 0.0, 0.98)

        if self.pattern is LoadPattern.RANDOM_WALK:
            mean = rng.uniform(0.0, self.max_load)
            theta = 0.05
            x = np.empty(horizon)
            x[0] = mean
            noise = self.volatility * rng.standard_normal(horizon)
            for i in range(1, horizon):
                x[i] = x[i - 1] + theta * (mean - x[i - 1]) + noise[i]
            return np.clip(x, 0.0, 0.98)

        if self.pattern is LoadPattern.BURSTY:
            x = np.zeros(horizon)
            t = 0
            while t < horizon:
                idle = int(rng.exponential(40.0)) + 1
                t += idle
                if t >= horizon:
                    break
                burst = int(rng.exponential(20.0)) + 1
                level = rng.uniform(0.3, self.max_load + 0.2)
                x[t : t + burst] = min(level, 0.98)
                t += burst
            return x

        raise ValueError(f"unknown pattern {self.pattern!r}")  # pragma: no cover
