"""Supernova driver: an asymmetric expanding blast wave.

Section 2's second motivating problem: "multidimensional hydrodynamics in
supernovae from massive stars involve highly asymmetrical and aspherical
explosions and debris fields".  The driver models a thin blast shell
expanding from the progenitor with direction-dependent speed, followed by
clumpy debris in its wake: localized and fast early, increasingly
communication-dominated as the shell (a thin 2-D surface) grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.apps import fields
from repro.apps.base import SyntheticApplication
from repro.util.rng import ensure_rng

__all__ = ["SupernovaConfig", "Supernova"]


@dataclass(frozen=True, slots=True)
class SupernovaConfig:
    """Parameters of the blast-wave driver."""

    shape: tuple[int, int, int] = (64, 64, 64)
    shell_speed: float = 0.12       # base cells per coarse step
    shell_width: float = 1.8
    asymmetry: float = 0.35         # fractional speed variation over direction
    num_debris: int = 12
    seed: int = 1987                # SN 1987A

    def __post_init__(self) -> None:
        if any(s < 8 for s in self.shape):
            raise ValueError(f"shape extents must be >= 8, got {self.shape}")
        if self.shell_speed <= 0:
            raise ValueError("shell_speed must be positive")
        if not (0.0 <= self.asymmetry < 1.0):
            raise ValueError("asymmetry must be in [0, 1)")


class Supernova(SyntheticApplication):
    """Expanding aspherical blast shell with clumpy debris."""

    def __init__(self, config: SupernovaConfig | None = None) -> None:
        self.config = config or SupernovaConfig()
        self.domain = Box.from_shape(self.config.shape)
        rng = ensure_rng(self.config.seed)
        cfg = self.config
        self._center = np.asarray(cfg.shape, dtype=float) / 2.0
        # Direction-dependent speed: low-order spherical-harmonic-ish lobes.
        self._lobe = rng.uniform(-1.0, 1.0, 3)
        dirs = rng.normal(size=(cfg.num_debris, 3))
        self._debris_dir = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        self._debris_lag = rng.uniform(0.55, 0.9, cfg.num_debris)
        self._debris_sigma = rng.uniform(1.5, 3.0, cfg.num_debris)

    @property
    def name(self) -> str:
        return "supernova"

    def _radius(self, step: int) -> float:
        return self.config.shell_speed * step

    def error_field(self, step: int) -> np.ndarray:
        """Thin aspherical shell at the blast radius plus trailing debris."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        cfg = self.config
        r0 = self._radius(step)
        x, y, z = fields.grid_coords(cfg.shape)
        dx = x - self._center[0]
        dy = y - self._center[1]
        dz = z - self._center[2]
        r = np.sqrt(dx * dx + dy * dy + dz * dz) + 1e-9
        # Direction-dependent blast radius.
        cosx, cosy, cosz = dx / r, dy / r, dz / r
        shape_factor = 1.0 + cfg.asymmetry * (
            self._lobe[0] * cosx + self._lobe[1] * cosy + self._lobe[2] * cosz
        )
        local_r0 = np.maximum(r0 * shape_factor, 0.5)
        shell = 0.95 * np.exp(-0.5 * ((r - local_r0) / cfg.shell_width) ** 2)

        out = np.asarray(np.broadcast_to(shell, cfg.shape)).copy()
        # Debris clumps trail the shell along fixed directions.
        for i in range(cfg.num_debris):
            pos = self._center + self._debris_dir[i] * r0 * self._debris_lag[i]
            if (pos < 0).any() or (pos >= np.asarray(cfg.shape)).any():
                continue
            out = np.maximum(
                out,
                fields.gaussian_blob(cfg.shape, pos, self._debris_sigma[i], peak=0.7),
            )
        return np.clip(out, 0.0, 1.0)

    def load_field(self, step: int) -> np.ndarray:
        """Shock-heated material costs up to 2x (stiffer equation of state)."""
        return 1.0 + self.error_field(step)
