"""EWMA z-score anomaly detection over timeline series.

The paper's runtime management reacts to drift in measured behaviour; the
reproduction surfaces that drift to humans the same way.  An
:class:`EwmaDetector` keeps exponentially-weighted estimates of a
series' mean and variance; each new value is scored against the
*standing* estimates (before absorbing the value), and a z-score beyond
the threshold raises an :class:`Alert`.  :func:`detect_alerts` sweeps the
standard :class:`~repro.obs.timeline.TimelineRecorder` series and returns
the alerts run reports publish under ``obs.alerts``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Alert", "EwmaDetector", "detect_series", "detect_alerts"]

#: timeline series scanned by default, most diagnostic first
DEFAULT_SERIES = (
    "step_cost_s",
    "imbalance_pct",
    "recovery_s",
    "forecast_error_pct",
)


@dataclass(frozen=True, slots=True)
class Alert:
    """One anomalous observation in a monitored series."""

    series: str
    #: index of the observation within its series
    index: int
    value: float
    #: standardized deviation from the EWMA mean at arrival time
    zscore: float
    #: EWMA mean the value was scored against
    mean: float
    #: EWMA standard deviation the value was scored against
    std: float

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "series": self.series,
            "index": self.index,
            "value": self.value,
            "zscore": self.zscore,
            "mean": self.mean,
            "std": self.std,
        }


class EwmaDetector:
    """Streaming EWMA mean/variance with z-score flagging.

    ``alpha`` is the EWMA smoothing weight of the newest value;
    ``z_threshold`` the flagging bar; ``warmup`` the number of leading
    observations absorbed without scoring (the estimates need history
    before a z-score means anything).  ``min_std`` floors the standard
    deviation so a perfectly flat warmup cannot turn numeric dust into
    infinite z-scores.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        z_threshold: float = 3.0,
        warmup: int = 5,
        min_std: float = 1e-9,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be > 0, got {z_threshold}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.min_std = min_std
        self._mean = 0.0
        self._var = 0.0
        self._n = 0

    @property
    def mean(self) -> float:
        """Current EWMA mean estimate."""
        return self._mean

    @property
    def std(self) -> float:
        """Current EWMA standard deviation estimate (floored)."""
        return max(math.sqrt(self._var), self.min_std)

    def update(self, value: float) -> float | None:
        """Score ``value`` against the standing estimates, then absorb it.

        Returns the z-score when it breaches the threshold (an anomaly),
        otherwise ``None``.  Warmup observations are absorbed silently.
        The EWMA state absorbs *relative* scale: anomalous values still
        move the estimates, so a sustained level shift stops alerting
        once the estimates catch up — alerts mark transitions, not
        steady states.
        """
        v = float(value)
        z = None
        if self._n >= self.warmup:
            score = (v - self._mean) / self.std
            if abs(score) >= self.z_threshold:
                z = score
        delta = v - self._mean
        self._mean += self.alpha * delta
        # West-style EWMA variance update.
        self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta**2)
        self._n += 1
        return z


def detect_series(
    name: str,
    values: list[float],
    *,
    alpha: float = 0.3,
    z_threshold: float = 3.0,
    warmup: int = 5,
) -> list[Alert]:
    """Scan one series; returns the alerts in order of occurrence."""
    det = EwmaDetector(alpha=alpha, z_threshold=z_threshold, warmup=warmup)
    alerts = []
    for i, v in enumerate(values):
        mean, std = det.mean, det.std
        z = det.update(v)
        if z is not None:
            alerts.append(
                Alert(series=name, index=i, value=float(v), zscore=z,
                      mean=mean, std=std)
            )
    return alerts


def detect_alerts(
    timeline,
    *,
    series: tuple[str, ...] = DEFAULT_SERIES,
    alpha: float = 0.3,
    z_threshold: float = 3.0,
    warmup: int = 5,
) -> list[Alert]:
    """Scan a timeline's standard series; returns all alerts.

    ``timeline`` is a :class:`~repro.obs.timeline.TimelineRecorder`;
    series with too few points to leave warmup produce no alerts.
    """
    alerts: list[Alert] = []
    for name in series:
        alerts.extend(
            detect_series(
                name,
                timeline.series(name),
                alpha=alpha,
                z_threshold=z_threshold,
                warmup=warmup,
            )
        )
    return alerts
