"""JSON / JSONL exporters for metrics snapshots and span traces.

Everything here emits plain-Python structures so the output is stable,
diffable and consumable by the ``BENCH_obs.json`` perf-snapshot hook and
the ``python -m repro report`` CLI verb.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer

__all__ = ["observability_snapshot", "export_json", "export_jsonl"]


def observability_snapshot(
    registry: "MetricsRegistry",
    tracer: "Tracer | None" = None,
    *,
    spans: bool = False,
) -> dict:
    """Metrics (and optionally spans) as one JSON-ready document.

    ``spans=False`` keeps only the per-path aggregates — individual span
    records can be large for long runs.
    """
    doc: dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        doc["trace"] = {
            "totals_by_path": tracer.totals_by_path(),
            "counts_by_path": tracer.counts_by_path(),
        }
        if spans:
            doc["trace"]["spans"] = tracer.to_dicts()
    return doc


def export_json(
    doc: dict, target: str | Path | IO[str], *, indent: int = 2
) -> None:
    """Write ``doc`` as JSON to a path or an open text stream."""
    if hasattr(target, "write"):
        json.dump(doc, target, indent=indent, sort_keys=True)
        target.write("\n")
        return
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=indent, sort_keys=True)
        fh.write("\n")


def export_jsonl(record: dict, target: str | Path) -> None:
    """Append one compact JSON line (time-series of run snapshots)."""
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")
