"""Process-local metrics: counters, gauges and histograms with labels.

Pragma's premise is that runtime management must be driven by measurement.
This module gives the reproduction a measurement substrate of its own: a
:class:`MetricsRegistry` hands out named instruments, optionally
distinguished by label sets (``registry.counter("mc.fanout",
topic="octant-transition")``), and snapshots the whole collection as plain
dictionaries for the JSON exporters.

Instrumented call sites must be free when observability is off, so the
module also defines :class:`NullRegistry`: every instrument it returns is
a shared no-op singleton, making ``obs.counter(...).inc()`` a pair of
cheap method calls with no allocation and no bookkeeping.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKET_BOUNDS",
    "exponential_bucket_bounds",
]


def exponential_bucket_bounds(
    start: float = 1e-6, factor: float = 2.0, count: int = 48
) -> tuple[float, ...]:
    """Fixed exponential bucket upper bounds: ``start * factor**k``.

    The defaults span 1 µs to ~1.4e8 (seconds or percent alike) in
    power-of-two steps — coarse, but allocation-free at observe time and
    tight enough for p50/p95/p99 tail reporting.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1; got "
            f"{start}, {factor}, {count}"
        )
    return tuple(start * factor**k for k in range(count))


#: the bucket layout every histogram shares (values above the last bound
#: land in one overflow bucket)
DEFAULT_BUCKET_BOUNDS = exponential_bucket_bounds()

#: a label set frozen into a dictionary key
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, accumulated seconds).

    Updates are lock-guarded: counters are shared between serving worker
    threads (the server's ``serve.*`` stats), where a lost
    read-modify-write would silently drop an event.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current accumulated total."""
        return self._value


class Gauge:
    """Point-in-time value that can move both ways (mailbox depth)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current gauge reading."""
        return self._value


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus fixed exponential bucket counts
    (:data:`DEFAULT_BUCKET_BOUNDS`), so tails are reportable without
    storing samples: ``quantile(q)`` answers from the buckets, and
    ``summary()`` carries p50/p95/p99 alongside the moments.  Bucketed
    quantiles are upper-bound estimates — exact to within one bucket
    (a factor-of-two band), clamped into ``[min, max]``.

    With ``window=N`` the histogram additionally keeps a ring of the
    last ``N`` observations, and ``quantile``/``summary`` answer from
    that ring (exact quantiles over *recent* traffic, what a live
    dashboard wants) instead of the process-lifetime buckets.  The
    cumulative ``count``/``total``/``buckets`` are still maintained —
    they stay monotonic for the Prometheus exposition — and the default
    ``window=None`` cumulative behaviour is unchanged.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "bounds", "buckets", "window", "_recent", "_lock")

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS,
        window: int | None = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bounds = bounds
        # one count per bound plus one overflow bucket
        self.buckets = [0] * (len(bounds) + 1)
        self.window = window
        self._recent: deque[float] | None = (
            deque(maxlen=window) if window is not None else None
        )
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self.buckets[bisect_left(self.bounds, v)] += 1
            if self._recent is not None:
                self._recent.append(v)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples seen so far (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def recent(self) -> list[float]:
        """The sliding window's samples, oldest first (empty when
        cumulative)."""
        return list(self._recent) if self._recent is not None else []

    def _recent_quantile(self, samples: list[float], q: float) -> float:
        ordered = sorted(samples)
        # nearest-rank: the smallest sample covering the q-fraction
        rank = max(math.ceil(q * len(ordered)), 1) - 1
        return ordered[rank]

    def quantile(self, q: float) -> float:
        """Quantile estimate (0.0 when empty).

        Cumulative mode returns the upper bound of the bucket holding
        the ``q``-th sample, clamped into ``[min, max]``; window mode
        returns the exact nearest-rank quantile of the recent samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._recent is not None:
            samples = list(self._recent)
            return self._recent_quantile(samples, q) if samples else 0.0
        if not self.count:
            return 0.0
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            cum += n
            if cum >= target and n:
                bound = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                return min(max(bound, self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean/p50/p95/p99 as a plain dict (empty-safe).

        In window mode the statistics describe the recent ring (plus
        ``lifetime_count``/``lifetime_sum`` for the cumulative totals);
        cumulative mode is unchanged.
        """
        if self._recent is not None:
            samples = list(self._recent)
            if not samples:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                        "lifetime_count": self.count,
                        "lifetime_sum": self.total}
            return {
                "count": len(samples),
                "sum": math.fsum(samples),
                "min": min(samples),
                "max": max(samples),
                "mean": math.fsum(samples) / len(samples),
                "p50": self._recent_quantile(samples, 0.50),
                "p95": self._recent_quantile(samples, 0.95),
                "p99": self._recent_quantile(samples, 0.99),
                "lifetime_count": self.count,
                "lifetime_sum": self.total,
            }
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named, labelled instruments with snapshot/reset.

    Instruments are created on first use and cached by
    ``(name, sorted labels)``; repeated lookups return the same object, so
    call sites may either hold a handle or re-look-up each time.
    Thread-safe for instrument creation (updates on the instruments
    themselves are plain float arithmetic, adequate for the in-process
    simulators here).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    def _get(self, table: dict, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        inst = table.get(key)
        if inst is None:
            with self._lock:
                inst = table.setdefault(key, cls(name, key[1]))
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(
        self, name: str, window: int | None = None, **labels: object
    ) -> Histogram:
        """The histogram registered under ``name`` + ``labels``.

        ``window`` (keyword-only in spirit — it cannot be a label name)
        selects the sliding-window mode *at creation*; repeated lookups
        return the existing instrument regardless of the value passed.
        """
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    key, Histogram(name, key[1], window=window)
                )
        return inst

    # -- introspection ---------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Read a counter without creating it (0.0 when absent)."""
        inst = self._counters.get((name, _label_key(labels)))
        return inst.value if inst is not None else 0.0

    def counter_items(self, name: str) -> list[tuple[dict[str, str], float]]:
        """Every ``(labels, value)`` registered under ``name``, sorted."""
        return [
            (dict(labels), c.value)
            for (n, labels), c in sorted(self._counters.items())
            if n == name
        ]

    def sum_counters(self, name: str) -> float:
        """Total over every label set registered under ``name``."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def snapshot(self) -> dict:
        """All instruments as nested plain dictionaries (JSON-ready)."""

        def rows(table, value_of):
            out: dict[str, list] = {}
            for (name, labels), inst in sorted(table.items()):
                out.setdefault(name, []).append(
                    {"labels": dict(labels), "value": value_of(inst)}
                )
            return out

        return {
            "counters": rows(self._counters, lambda c: c.value),
            "gauges": rows(self._gauges, lambda g: g.value),
            "histograms": rows(self._histograms, lambda h: h.summary()),
        }

    def reset(self) -> None:
        """Drop every instrument (fresh collection window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = ""
    labels: _LabelKey = ()
    count = 0
    total = 0.0
    min = math.inf
    max = -math.inf
    window = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def recent(self) -> list[float]:
        return []

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The zero-cost default: every instrument is one shared no-op.

    Keeps tier-1 timings honest — with the null registry installed an
    instrumented call site costs one method call returning a singleton
    plus one no-op method call, with no locking, lookup or allocation.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — deliberately skips parent init
        pass

    def counter(self, name: str, **labels: object) -> Counter:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, window: int | None = None, **labels: object
    ) -> Histogram:
        """The shared no-op instrument."""
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def counter_value(self, name: str, **labels: object) -> float:
        """Always 0.0 — nothing is recorded."""
        return 0.0

    def counter_items(self, name: str) -> list[tuple[dict[str, str], float]]:
        """Always empty — nothing is recorded."""
        return []

    def sum_counters(self, name: str) -> float:
        """Always 0.0 — nothing is recorded."""
        return 0.0

    def snapshot(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        """Nothing to reset."""
