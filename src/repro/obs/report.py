"""Run reports: one JSON/text document summarizing an observed pipeline run.

:func:`collect_run_report` drives the quickstart scenario (reduced RM3D,
adaptive vs static partitioning, plus a short event-driven online run so
the CATALINA message center sees real traffic) inside an observability
collection window, then folds the registry and tracer into a
:class:`RunReport`: per-phase simulated seconds (compute / comm / regrid /
partition), partitioner-switch counts, message-center counters, monitoring
counters, and a wall-clock span profile.  ``python -m repro report``
renders it; ``--json`` exports the same document for trend tracking
(every future perf PR has a baseline to beat).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.obs.anomaly import detect_alerts

__all__ = ["RunReport", "collect_run_report", "quickstart_scenario"]

#: simulated-seconds phases recorded by the execution simulator
PHASES = ("compute", "comm", "regrid", "partition", "checkpoint", "recovery")


@dataclass(slots=True)
class RunReport:
    """Structured outcome of one observed pipeline run."""

    scenario: dict
    phases: dict
    wall: dict
    partitioning: dict
    message_center: dict
    monitoring: dict
    runtimes: dict
    metrics: dict
    #: :meth:`TimelineRecorder.summary` of the collection window
    timeline: dict
    #: EWMA z-score anomalies over the timeline series (``obs.alerts``)
    alerts: list

    def to_dict(self) -> dict:
        """The full report as a JSON-ready document."""
        return {
            "scenario": self.scenario,
            "phases": self.phases,
            "wall": self.wall,
            "partitioning": self.partitioning,
            "message_center": self.message_center,
            "monitoring": self.monitoring,
            "runtimes": self.runtimes,
            "metrics": self.metrics,
            "timeline": self.timeline,
            "obs": {"alerts": self.alerts},
        }

    def render(self) -> str:
        """Human-readable text rendering (the CLI's default output)."""
        lines = ["== Pragma pipeline run report =="]
        sc = self.scenario
        lines.append(
            f"scenario: RM3D {sc['shape']} | {sc['num_coarse_steps']} coarse "
            f"steps | {sc['num_procs']} procs | online steps "
            f"{sc['online_steps']}"
        )
        lines.append("-- simulated seconds by phase --")
        total = sum(self.phases.values()) or 1.0
        for phase in PHASES:
            v = self.phases.get(phase, 0.0)
            lines.append(f"  {phase:<10} {v:12.3f} s  ({100.0 * v / total:5.1f}%)")
        lines.append("-- wall-clock span profile (top 8) --")
        top = sorted(
            self.wall["totals_by_path"].items(), key=lambda kv: -kv[1]
        )[:8]
        for path, secs in top:
            n = self.wall["counts_by_path"].get(path, 0)
            lines.append(f"  {path:<44} {secs:9.4f} s  x{n}")
        p = self.partitioning
        lines.append("-- meta-partitioner --")
        lines.append(
            f"  switches {p['switches']:.0f} | policy hits "
            f"{p['policy_hits']:.0f} | misses {p['policy_misses']:.0f} | "
            f"hysteresis holds {p['hysteresis_holds']:.0f}"
        )
        lines.append(f"  octant classifications: {p['classifications']}")
        lines.append(f"  partitioner usage (adaptive): {p['usage']}")
        m = self.message_center
        lines.append("-- message center --")
        lines.append(
            f"  sends {m['sends']:.0f} | publishes {m['publishes']:.0f} | "
            f"mailbox high-water {m['mailbox_high_water']:.0f}"
        )
        lines.append(f"  fan-out by topic: {m['fanout_by_topic']}")
        mo = self.monitoring
        lines.append("-- resource monitor --")
        lines.append(
            f"  samples {mo['samples']:.0f} | sweeps {mo['sweeps']:.0f} | "
            f"forecaster updates {mo['forecast_updates']:.0f} | "
            f"selection switches {mo['forecast_selection_switches']:.0f}"
        )
        r = self.runtimes
        lines.append("-- simulated runtimes --")
        lines.append(f"  adaptive  {r['adaptive']:10.1f} s")
        for name, secs in r["static"].items():
            lines.append(f"  {name:<9} {secs:10.1f} s")
        lines.append(
            f"  improvement over worst static: "
            f"{r['improvement_over_worst_pct']:.1f}%"
        )
        tl = self.timeline
        lines.append("-- timeline --")
        lines.append(
            f"  samples {tl.get('num_samples', 0)} | events "
            f"{tl.get('num_events', 0)} | by kind "
            f"{tl.get('events_by_kind', {})}"
        )
        for name in ("step_cost_s", "imbalance_pct"):
            st = tl.get("series", {}).get(name)
            if st:
                lines.append(
                    f"  {name:<20} mean {st['mean']:10.3f} | p50 "
                    f"{st['p50']:10.3f} | p95 {st['p95']:10.3f} | p99 "
                    f"{st['p99']:10.3f}"
                )
        lines.append(f"-- anomaly alerts ({len(self.alerts)}) --")
        for a in self.alerts[:8]:
            lines.append(
                f"  {a['series']:<20} idx {a['index']:>4} value "
                f"{a['value']:10.3f}  z={a['zscore']:+.1f}"
            )
        return "\n".join(lines)


def quickstart_scenario():
    """The reduced RM3D scenario of ``examples/quickstart.py``.

    Returns ``(app, policy, runtime)`` sized for a laptop: 64x16x16 base
    grid, 16 processors.
    """
    from repro.amr.regrid import RegridPolicy
    from repro.apps import RM3D, RM3DConfig
    from repro.core.pragma import PragmaRuntime
    from repro.gridsys import sp2_blue_horizon

    config = RM3DConfig(
        shape=(64, 16, 16),
        interface_x=20.0,
        shock_entry_snapshot=6.0,
        reshock_snapshot=30.0,
        num_seed_clumps=5,
        num_mixing_structures=10,
    )
    policy = RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                          regrid_interval=4)
    runtime = PragmaRuntime(cluster=sp2_blue_horizon(16), num_procs=16)
    return RM3D(config), policy, runtime


def collect_run_report(
    *,
    app=None,
    policy=None,
    runtime=None,
    num_coarse_steps: int = 160,
    compare_with: tuple[str, ...] = ("G-MISP+SP", "SFC"),
    online_steps: int = 48,
    include_spans: bool = False,
    deterministic: bool = True,
) -> RunReport:
    """Run the scenario under a collection window and build the report.

    Defaults to the quickstart scenario; pass ``app``/``policy``/
    ``runtime`` together to observe a custom one.  ``online_steps`` drives
    a short :class:`~repro.core.online.OnlineAdaptiveRuntime` run so the
    message-center counters reflect real agent traffic (0 skips it).
    ``deterministic`` replaces measured partitioner wall-clock with the
    deterministic cost model, making the simulated-seconds sections
    reproducible across machines — what the benchdiff gate needs; pass
    ``False`` to fold real partitioner timings back in.
    """
    from contextlib import nullcontext

    from repro.core.online import OnlineAdaptiveRuntime
    from repro.partitioners import deterministic_partition_time

    if app is None or policy is None or runtime is None:
        if (app, policy, runtime) != (None, None, None):
            raise ValueError(
                "pass app, policy and runtime together, or none of them"
            )
        app, policy, runtime = quickstart_scenario()

    timing = deterministic_partition_time() if deterministic else nullcontext()
    with obs.collect() as window, timing:
        capacities = runtime.capacities()
        trace = runtime.characterize(app, policy, num_coarse_steps)
        adaptive_report = runtime.run_adaptive(
            trace, compare_with=compare_with
        )
        if online_steps > 0:
            online = OnlineAdaptiveRuntime(
                runtime.cluster, num_procs=runtime.num_procs
            )
            online.run(app, policy, online_steps)

    reg = window.registry
    tracer = window.tracer
    snap = reg.snapshot()

    def by_label(name: str, label: str) -> dict[str, float]:
        rows = snap["counters"].get(name, [])
        return {row["labels"][label]: row["value"] for row in rows}

    mailbox_rows = snap["gauges"].get("mc.mailbox_hwm", [])
    wall = {
        "totals_by_path": tracer.totals_by_path(),
        "counts_by_path": tracer.counts_by_path(),
    }
    if include_spans:
        wall["spans"] = tracer.to_dicts()

    report = RunReport(
        scenario={
            "name": "quickstart-rm3d",
            "shape": list(app.config.shape),
            "num_coarse_steps": num_coarse_steps,
            "num_procs": runtime.num_procs,
            "online_steps": online_steps,
            "compare_with": list(compare_with),
            "num_snapshots": len(trace),
            "relative_capacity_spread": float(
                capacities.max() - capacities.min()
            ),
        },
        phases={
            phase: reg.counter_value("execsim.sim_seconds", phase=phase)
            for phase in PHASES
        },
        wall=wall,
        partitioning={
            "switches": reg.counter_value("meta.switches"),
            "classifications": by_label("meta.classifications", "octant"),
            "policy_hits": reg.counter_value(
                "meta.policy_lookups", result="hit"
            ),
            "policy_misses": reg.counter_value(
                "meta.policy_lookups", result="miss"
            ),
            "hysteresis_holds": reg.counter_value("meta.hysteresis_holds"),
            "usage": adaptive_report.adaptive.partitioner_usage(),
            "intervals": reg.sum_counters("execsim.intervals"),
            "coarse_steps": reg.counter_value("execsim.coarse_steps"),
        },
        message_center={
            "sends": reg.counter_value("mc.sends"),
            "publishes": reg.counter_value("mc.publishes"),
            "fanout_by_topic": by_label("mc.fanout", "topic"),
            "mailbox_high_water": max(
                (row["value"] for row in mailbox_rows), default=0.0
            ),
        },
        monitoring={
            "samples": reg.counter_value("monitor.samples"),
            "sweeps": reg.counter_value("monitor.sweeps"),
            "forecast_updates": reg.counter_value("forecast.updates"),
            "forecast_selection_switches": reg.sum_counters(
                "forecast.selection_switches"
            ),
        },
        runtimes={
            "adaptive": adaptive_report.adaptive.total_runtime,
            "static": {
                name: res.total_runtime
                for name, res in adaptive_report.static.items()
            },
            "improvement_over_worst_pct":
                adaptive_report.improvement_over_worst_pct,
            "mean_imbalance_pct": adaptive_report.adaptive.mean_imbalance_pct,
        },
        metrics=snap,
        timeline=window.timeline.summary(),
        alerts=[
            a.as_dict() for a in detect_alerts(window.timeline)
        ],
    )
    return report
