"""Lightweight span tracer: nested wall-clock timings plus causal flows.

``with tracer.span("partition", partitioner="SFC"):`` times a region with
``time.perf_counter`` and records it as a :class:`SpanRecord` carrying its
slash-joined path ("execsim.run/interval/partition"), depth, offset from
the tracer's epoch, duration and attributes.  Spans nest via a per-thread
stack (``threading.local``), so concurrent threads — the process-pool
collector, agent soaks driven from worker threads — cannot corrupt each
other's paths.  Each span also gets a process-unique ``sid`` and its
parent's ``parent`` sid, so exporters can rebuild the tree explicitly
(the Chrome trace-event exporter in :mod:`repro.obs.chrome` does).

Causality across the CATALINA message network is captured with *flow
events*: a sender calls :meth:`Tracer.new_flow` to mint a flow id, stamps
it on the message, and records :meth:`Tracer.flow_start` inside its send
span; the handler records :meth:`Tracer.flow_end` inside its handling
span.  The pair exports as Chrome ``s``/``f`` flow events, drawing an
arrow from the send slice to the handler slice in Perfetto.

A span that exits via an exception records ``error: true`` and the
exception type in its attributes — the exception itself propagates
unchanged, and the per-thread stack still unwinds.

As with the metrics registry, a :class:`NullTracer` keeps the disabled
path free: its ``span`` returns one shared context manager whose
``__enter__``/``__exit__`` do nothing, ``new_flow`` answers ``0`` and the
flow recorders are no-ops.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "FlowRecord", "Tracer", "NullTracer"]


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    name: str
    path: str
    depth: int
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)
    #: process-unique span id (1-based; 0 = none)
    sid: int = 0
    #: sid of the enclosing span (0 = root)
    parent: int = 0
    #: small per-thread track index (0 = the first thread seen)
    tid: int = 0

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "sid": self.sid,
            "parent": self.parent,
            "tid": self.tid,
        }


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One endpoint of a causal flow (a message hop).

    ``phase`` is ``"s"`` at the producer and ``"f"`` at the consumer —
    the Chrome trace-event flow phases.  ``sid`` is the span the endpoint
    was recorded inside (its slice in the trace view).
    """

    id: int
    phase: str
    t: float
    tid: int
    sid: int

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "id": self.id,
            "phase": self.phase,
            "t_s": self.t,
            "tid": self.tid,
            "sid": self.sid,
        }


class _Span:
    """Context manager timing one region and appending its record."""

    __slots__ = ("_tracer", "name", "attrs", "_path", "_depth", "_t0",
                 "_sid", "_parent", "_tid")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> _Span:
        tracer = self._tracer
        stack = tracer._thread_stack()
        if stack:
            parent_path, parent_sid = stack[-1]
            self._path = f"{parent_path}/{self.name}"
            self._parent = parent_sid
        else:
            self._path = self.name
            self._parent = 0
        self._depth = len(stack)
        self._sid = next(tracer._sids)
        self._tid = tracer._thread_tid()
        stack.append((self._path, self._sid))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._tracer._thread_stack().pop()
        attrs = self.attrs
        if exc_type is not None:
            # Record the failure without swallowing it: the exception
            # propagates (we return None) and the stack above unwound.
            attrs = dict(attrs)
            attrs["error"] = True
            attrs["error_type"] = exc_type.__name__
        self._tracer.records.append(
            SpanRecord(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start=self._t0 - self._tracer.epoch,
                duration=end - self._t0,
                attrs=attrs,
                sid=self._sid,
                parent=self._parent,
                tid=self._tid,
            )
        )


class _FlowSpan:
    """A span that records a flow-end on entry (message-handler spans)."""

    __slots__ = ("_span", "_flow_id")

    def __init__(self, span: _Span, flow_id: int | None) -> None:
        self._span = span
        self._flow_id = flow_id

    def __enter__(self) -> _Span:
        span = self._span.__enter__()
        if self._flow_id:
            span._tracer.flow_end(self._flow_id)
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        return self._span.__exit__(exc_type, exc, tb)


class Tracer:
    """Collects nested wall-clock spans and causal flows."""

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.records: list[SpanRecord] = []
        self.flows: list[FlowRecord] = []
        self._sids = itertools.count(1)
        self._flow_ids = itertools.count(1)
        self._local = threading.local()
        self._tids: dict[int, int] = {}
        self._tid_lock = threading.Lock()

    # -- per-thread state ------------------------------------------------------

    def _thread_stack(self) -> list[tuple[str, int]]:
        """This thread's span stack (created on first use)."""
        try:
            return self._local.stack
        except AttributeError:
            stack: list[tuple[str, int]] = []
            self._local.stack = stack
            return stack

    def _thread_tid(self) -> int:
        """Small stable track index for the calling thread."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._tid_lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, **attrs: object) -> _Span:
        """A context manager timing ``name`` under the current span."""
        return _Span(self, name, attrs)

    def handler_span(
        self, name: str, flow_id: int | None, **attrs: object
    ) -> _FlowSpan:
        """A span that consumes ``flow_id`` (records the flow-end) on entry.

        Message handlers use this so the flow arrow lands inside their
        handling slice; ``flow_id`` of ``None``/``0`` records no flow.
        """
        return _FlowSpan(_Span(self, name, attrs), flow_id)

    # -- flows ----------------------------------------------------------------

    def new_flow(self) -> int:
        """Mint a process-unique flow id (stamped onto a message)."""
        return next(self._flow_ids)

    def _record_flow(self, flow_id: int, phase: str) -> None:
        stack = self._thread_stack()
        sid = stack[-1][1] if stack else 0
        self.flows.append(
            FlowRecord(
                id=flow_id,
                phase=phase,
                t=time.perf_counter() - self.epoch,
                tid=self._thread_tid(),
                sid=sid,
            )
        )

    def flow_start(self, flow_id: int) -> None:
        """Record the producing endpoint of ``flow_id`` (inside a span)."""
        if flow_id:
            self._record_flow(flow_id, "s")

    def flow_end(self, flow_id: int) -> None:
        """Record the consuming endpoint of ``flow_id`` (inside a span)."""
        if flow_id:
            self._record_flow(flow_id, "f")

    # -- imports (merging worker traces) ---------------------------------------

    def import_spans(
        self,
        span_dicts: list[dict],
        *,
        prefix: str = "",
        offset: float = 0.0,
    ) -> None:
        """Merge spans exported by another tracer (a sweep worker).

        ``span_dicts`` is the other tracer's :meth:`to_dicts` output;
        paths are re-rooted under ``prefix`` and starts shifted by
        ``offset`` (seconds relative to *this* tracer's epoch).  Imported
        spans land on a fresh track (tid) per call so each worker renders
        as its own lane, and get fresh sids so they never collide with
        local spans.
        """
        if not span_dicts:
            return
        with self._tid_lock:
            tid = len(self._tids)
            self._tids[-(tid + 1)] = tid  # reserve a synthetic track
        prefix_depth = prefix.count("/") + 1 if prefix else 0
        sid_map: dict[int, int] = {}
        for d in span_dicts:
            sid_map[d.get("sid", 0)] = next(self._sids)
        for d in span_dicts:
            path = f"{prefix}/{d['path']}" if prefix else d["path"]
            self.records.append(
                SpanRecord(
                    name=d["name"],
                    path=path,
                    depth=d["depth"] + prefix_depth,
                    start=d["start_s"] + offset,
                    duration=d["duration_s"],
                    attrs=dict(d.get("attrs", {})),
                    sid=sid_map.get(d.get("sid", 0), 0),
                    parent=sid_map.get(d.get("parent", 0), 0),
                    tid=tid,
                )
            )

    # -- views ----------------------------------------------------------------

    def totals_by_path(self) -> dict[str, float]:
        """Summed duration per span path (the profile view)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.path] = out.get(r.path, 0.0) + r.duration
        return out

    def counts_by_path(self) -> dict[str, int]:
        """Number of spans recorded per path."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.path] = out.get(r.path, 0) + 1
        return out

    def to_dicts(self) -> list[dict]:
        """Every span as a plain dict, in completion order."""
        return [r.as_dict() for r in self.records]

    def reset(self) -> None:
        """Drop recorded spans/flows and restart the epoch."""
        self.records.clear()
        self.flows.clear()
        self._local = threading.local()
        self.epoch = time.perf_counter()


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The zero-cost default tracer: spans and flows are shared no-ops."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — deliberately skips parent init
        self.epoch = 0.0
        self.records = ()  # type: ignore[assignment]
        self.flows = ()  # type: ignore[assignment]

    def span(self, name: str, **attrs: object) -> _Span:
        """The shared no-op context manager."""
        return _NULL_SPAN  # type: ignore[return-value]

    def handler_span(
        self, name: str, flow_id: int | None, **attrs: object
    ) -> _FlowSpan:
        """The shared no-op context manager."""
        return _NULL_SPAN  # type: ignore[return-value]

    def new_flow(self) -> int:
        """Always 0 — no flow is recorded."""
        return 0

    def flow_start(self, flow_id: int) -> None:
        """Nothing to record."""

    def flow_end(self, flow_id: int) -> None:
        """Nothing to record."""

    def import_spans(
        self,
        span_dicts: list[dict],
        *,
        prefix: str = "",
        offset: float = 0.0,
    ) -> None:
        """Nothing to merge into."""

    def totals_by_path(self) -> dict[str, float]:
        """Always empty."""
        return {}

    def counts_by_path(self) -> dict[str, int]:
        """Always empty."""
        return {}

    def to_dicts(self) -> list[dict]:
        """Always empty."""
        return []

    def reset(self) -> None:
        """Nothing to reset."""
