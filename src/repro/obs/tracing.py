"""Lightweight span tracer: nested wall-clock timings of the pipeline.

``with tracer.span("partition", partitioner="SFC"):`` times a region with
``time.perf_counter`` and records it as a :class:`SpanRecord` carrying its
slash-joined path ("execsim.run/interval/partition"), depth, offset from
the tracer's epoch, duration and attributes.  Spans nest via a plain
stack, so the records reconstruct the call tree without any parent-id
bookkeeping at runtime.

As with the metrics registry, a :class:`NullTracer` keeps the disabled
path free: its ``span`` returns one shared context manager whose
``__enter__``/``__exit__`` do nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Tracer", "NullTracer"]


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    name: str
    path: str
    depth: int
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
        }


class _Span:
    """Context manager timing one region and appending its record."""

    __slots__ = ("_tracer", "name", "attrs", "_path", "_depth", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> _Span:
        stack = self._tracer._stack
        self._path = f"{stack[-1]}/{self.name}" if stack else self.name
        self._depth = len(stack)
        stack.append(self._path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self._tracer._stack.pop()
        self._tracer.records.append(
            SpanRecord(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start=self._t0 - self._tracer.epoch,
                duration=end - self._t0,
                attrs=self.attrs,
            )
        )


class Tracer:
    """Collects nested wall-clock spans in completion order."""

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.records: list[SpanRecord] = []
        self._stack: list[str] = []

    def span(self, name: str, **attrs: object) -> _Span:
        """A context manager timing ``name`` under the current span."""
        return _Span(self, name, attrs)

    def totals_by_path(self) -> dict[str, float]:
        """Summed duration per span path (the profile view)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.path] = out.get(r.path, 0.0) + r.duration
        return out

    def counts_by_path(self) -> dict[str, int]:
        """Number of spans recorded per path."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.path] = out.get(r.path, 0) + 1
        return out

    def to_dicts(self) -> list[dict]:
        """Every span as a plain dict, in completion order."""
        return [r.as_dict() for r in self.records]

    def reset(self) -> None:
        """Drop recorded spans and restart the epoch."""
        self.records.clear()
        self._stack.clear()
        self.epoch = time.perf_counter()


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The zero-cost default tracer: spans are one shared no-op."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — deliberately skips parent init
        self.epoch = 0.0
        self.records = ()  # type: ignore[assignment]
        self._stack = ()  # type: ignore[assignment]

    def span(self, name: str, **attrs: object) -> _Span:
        """The shared no-op context manager."""
        return _NULL_SPAN  # type: ignore[return-value]

    def totals_by_path(self) -> dict[str, float]:
        """Always empty."""
        return {}

    def counts_by_path(self) -> dict[str, int]:
        """Always empty."""
        return {}

    def to_dicts(self) -> list[dict]:
        """Always empty."""
        return []

    def reset(self) -> None:
        """Nothing to reset."""
