"""Timeline recorder: one structured sample per regrid interval.

Pragma's control loop reacts to *trajectories* — the monitor/forecaster
feeds the policy base every regrid step — so the reproduction's
observability must keep per-step series, not just end-of-run aggregates.
The :class:`TimelineRecorder` collects one :class:`StepSample` per regrid
interval from the execution simulator (phase seconds, imbalance, octant,
chosen partitioner, forecast error, live processors, recovery counts) and
a stream of irregular :meth:`events <TimelineRecorder.event>` from the
meta-partitioner (switches), the resilience layer (checkpoints,
recoveries) and the resource monitor (forecast error sweeps).

The recorder snapshots to JSONL (one ``{"type": "sample"|"event"}`` line
each), summarizes itself for run reports — per-series min/mean/max and
exact p50/p95/p99 — and exposes plain per-field :meth:`series
<TimelineRecorder.series>` for the EWMA anomaly detector
(:mod:`repro.obs.anomaly`).

A :class:`NullTimeline` keeps the disabled path free: instrumented call
sites check ``timeline.enabled`` before building samples, so a run with
observability off allocates nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["StepSample", "TimelineRecorder", "NullTimeline"]

#: StepSample fields exposed as numeric series (summary + anomaly scans)
SERIES_FIELDS = (
    "compute_s",
    "comm_s",
    "regrid_s",
    "checkpoint_s",
    "recovery_s",
    "imbalance_pct",
    "forecast_error_pct",
    "step_cost_s",
)


@dataclass(slots=True)
class StepSample:
    """One regrid interval of the simulated run, as the monitor saw it."""

    #: coarse-step index of the interval's snapshot
    step: int
    #: simulated seconds at the interval's start
    t: float
    #: coarse steps executed in the interval
    coarse_steps: int
    #: partitioner the meta-partitioner committed to
    partitioner: str
    #: octant classification ("I".."VIII"), when one was made
    octant: str | None
    compute_s: float
    comm_s: float
    regrid_s: float
    checkpoint_s: float
    recovery_s: float
    #: max load imbalance of the committed partition (percent)
    imbalance_pct: float
    #: relative error of the last-value forecast of per-coarse-step cost
    #: (percent; None for the first interval, which has no forecast)
    forecast_error_pct: float | None
    #: detect → rollback → resume cycles within the interval
    recoveries: int
    #: processors the detector considered live (num_procs when not
    #: running fault-tolerant)
    live_procs: int

    @property
    def step_cost_s(self) -> float:
        """Total simulated seconds charged per coarse step."""
        total = (self.compute_s + self.comm_s + self.regrid_s
                 + self.checkpoint_s + self.recovery_s)
        return total / self.coarse_steps if self.coarse_steps else 0.0

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "step": self.step,
            "t_s": self.t,
            "coarse_steps": self.coarse_steps,
            "partitioner": self.partitioner,
            "octant": self.octant,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "regrid_s": self.regrid_s,
            "checkpoint_s": self.checkpoint_s,
            "recovery_s": self.recovery_s,
            "imbalance_pct": self.imbalance_pct,
            "forecast_error_pct": self.forecast_error_pct,
            "recoveries": self.recoveries,
            "live_procs": self.live_procs,
            "step_cost_s": self.step_cost_s,
        }


def _exact_quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    if not ordered:
        return 0.0
    idx = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[idx]


@dataclass(slots=True)
class TimelineRecorder:
    """Per-interval samples plus irregular events, in arrival order."""

    samples: list[StepSample] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    enabled = True

    def record(self, sample: StepSample) -> None:
        """Append one per-interval sample."""
        self.samples.append(sample)

    def event(self, kind: str, t: float, **attrs: object) -> None:
        """Append one irregular event (checkpoint, recovery, switch...)."""
        self.events.append({"kind": kind, "t": float(t), **attrs})

    def series(self, name: str) -> list[float]:
        """One numeric series across samples (Nones dropped).

        ``name`` is any of the numeric :class:`StepSample` fields
        (``compute_s``, ``imbalance_pct``, ``forecast_error_pct``,
        ``step_cost_s``, ...).
        """
        if name not in SERIES_FIELDS:
            raise KeyError(
                f"unknown timeline series {name!r}; choose from "
                f"{SERIES_FIELDS}"
            )
        out = []
        for s in self.samples:
            v = getattr(s, name)
            if v is not None:
                out.append(float(v))
        return out

    def events_by_kind(self) -> dict[str, int]:
        """Event count per kind (sorted by kind)."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e["kind"]] = out.get(e["kind"], 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> dict:
        """JSON-ready roll-up: counts plus per-series stats with quantiles."""
        series_stats: dict[str, dict] = {}
        for name in SERIES_FIELDS:
            values = self.series(name)
            if not values:
                continue
            ordered = sorted(values)
            series_stats[name] = {
                "count": len(values),
                "min": ordered[0],
                "max": ordered[-1],
                "mean": sum(values) / len(values),
                "p50": _exact_quantile(ordered, 0.50),
                "p95": _exact_quantile(ordered, 0.95),
                "p99": _exact_quantile(ordered, 0.99),
            }
        return {
            "num_samples": len(self.samples),
            "num_events": len(self.events),
            "coarse_steps": sum(s.coarse_steps for s in self.samples),
            "partitioner_usage": self._usage(),
            "events_by_kind": self.events_by_kind(),
            "series": series_stats,
        }

    def _usage(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.samples:
            out[s.partitioner] = out.get(s.partitioner, 0) + 1
        return dict(sorted(out.items()))

    def to_dicts(self) -> list[dict]:
        """Samples then events as typed plain dicts (the JSONL rows)."""
        rows = [{"type": "sample", **s.as_dict()} for s in self.samples]
        rows.extend({"type": "event", **e} for e in self.events)
        return rows

    def to_jsonl(self, target: str | Path) -> Path:
        """Write the timeline as JSON Lines; returns the path."""
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for row in self.to_dicts():
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
        return path

    def reset(self) -> None:
        """Drop all samples and events."""
        self.samples.clear()
        self.events.clear()


class NullTimeline(TimelineRecorder):
    """The zero-cost default: records nothing.

    Call sites gate sample construction on ``timeline.enabled``, so with
    the null timeline installed the hot loop pays one attribute read.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 — deliberately skips parent init
        pass

    @property
    def samples(self):  # type: ignore[override]
        """Always empty."""
        return ()

    @property
    def events(self):  # type: ignore[override]
        """Always empty."""
        return ()

    def record(self, sample: StepSample) -> None:
        """Nothing to record."""

    def event(self, kind: str, t: float, **attrs: object) -> None:
        """Nothing to record."""

    def reset(self) -> None:
        """Nothing to reset."""
