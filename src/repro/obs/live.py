"""Online telemetry for long-running processes: the live plane.

Everything else in :mod:`repro.obs` is post-hoc — run reports, Chrome
traces and bench snapshots answer "what happened?" after a run ends.
This module answers "what is the process doing *right now?*" for the
serving runtime (:mod:`repro.serve`), the way grid performance-analysis
frameworks make continuous online monitoring a first-class subsystem:

- :func:`render_prometheus` — the standard text exposition format over a
  :class:`~repro.obs.metrics.MetricsRegistry` (counters as ``_total``,
  gauges, histograms as ``_bucket``/``_sum``/``_count`` with escaped
  labels), served by the ``metrics`` wire verb;
- :class:`SnapshotExporter` — a periodic JSONL exporter appending one
  metrics snapshot per interval (atomic single-write appends, a
  monotonic ``serve.uptime_seconds`` gauge refreshed each tick);
- :class:`SloTracker` — sliding-window service-level objectives per
  priority lane (request latency and shed rate against configurable
  targets) with classic multi-window burn-rate alerting, surfaced as
  :class:`~repro.obs.anomaly.Alert` records so the existing alert path
  (``obs.alerts``) carries them;
- :class:`FlightRecorder` — a lock-cheap bounded ring of the last N
  serve events (admit/shed/dedup/dispatch/retry/commit/cancel), dumped
  to JSONL on shutdown, on crash, or on demand — enough for a
  postmortem without full tracing overhead;
- :class:`HealthStatus` — the liveness/readiness document behind the
  ``health`` wire verb;
- :func:`render_dashboard` — the terminal frame ``python -m repro top``
  refreshes from a running server's ``stats-stream``.

The null default costs nothing: a server constructed without
``LiveObsOptions(enabled=True)`` gets the shared no-op
:data:`NULL_FLIGHT` recorder, no SLO tracker and no exporter thread.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.anomaly import Alert
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_prometheus",
    "prometheus_name",
    "escape_label_value",
    "SnapshotExporter",
    "SloTracker",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "HealthStatus",
    "render_dashboard",
]


# -- Prometheus text exposition ------------------------------------------------

#: the exposition content type (version 0.0.4 is the text format)
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK_FIRST = set("abcdefghijklmnopqrstuvwxyz"
                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_OK = _NAME_OK_FIRST | set("0123456789")


def prometheus_name(name: str) -> str:
    """``name`` sanitized to the metric-name charset ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    The registry's dotted names (``serve.dedup_hits``) become underscore
    names (``serve_dedup_hits``); any other illegal character is also
    mapped to ``_`` and a leading digit gets a ``_`` prefix.
    """
    out = "".join(c if c in _NAME_OK else "_" for c in name)
    if not out or out[0] not in _NAME_OK_FIRST:
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """``value`` with backslash, double-quote and newline escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: tuple[tuple[str, str], ...],
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{prometheus_name(k)}="{escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    """A float formatted the way Prometheus expects (no trailing noise)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (format 0.0.4).

    Counters are suffixed ``_total`` per convention; histograms emit
    cumulative ``_bucket`` series (``le`` upper bounds plus ``+Inf``),
    ``_sum`` and ``_count``.  Output is sorted by metric name then label
    set, so identical registries render byte-identically.
    """
    lines: list[str] = []

    counters: dict[str, list] = {}
    for (name, labels), inst in sorted(registry._counters.items()):
        counters.setdefault(name, []).append((labels, inst.value))
    for name, rows in counters.items():
        pname = prometheus_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        for labels, value in rows:
            lines.append(f"{pname}{_label_str(labels)} {_fmt(value)}")

    gauges: dict[str, list] = {}
    for (name, labels), inst in sorted(registry._gauges.items()):
        gauges.setdefault(name, []).append((labels, inst.value))
    for name, rows in gauges.items():
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} gauge")
        for labels, value in rows:
            lines.append(f"{pname}{_label_str(labels)} {_fmt(value)}")

    hists: dict[str, list] = {}
    for (name, labels), inst in sorted(registry._histograms.items()):
        hists.setdefault(name, []).append((labels, inst))
    for name, rows in hists.items():
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} histogram")
        for labels, h in rows:
            cum = 0
            for bound, n in zip(h.bounds, h.buckets):
                cum += n
                lines.append(
                    f"{pname}_bucket"
                    f"{_label_str(labels, (('le', _fmt(bound)),))} {cum}"
                )
            cum += h.buckets[-1]
            lines.append(
                f"{pname}_bucket"
                f"{_label_str(labels, (('le', '+Inf'),))} {cum}"
            )
            lines.append(f"{pname}_sum{_label_str(labels)} {_fmt(h.total)}")
            lines.append(f"{pname}_count{_label_str(labels)} {h.count}")

    return "\n".join(lines) + "\n" if lines else ""


# -- periodic JSONL snapshot exporter ------------------------------------------


class SnapshotExporter:
    """Appends one JSONL metrics snapshot per interval to a file.

    Each record carries a wall timestamp, a monotonic ``uptime_seconds``
    (also refreshed into the registry's ``serve.uptime_seconds`` gauge so
    the exposition endpoint reports it too), the full registry snapshot
    and whatever the optional ``extra`` callable contributes (the server
    passes its ``stats()``).  Appends are a single buffered ``write`` of
    one ``\\n``-terminated line on a file opened in append mode — atomic
    for the line-sized records involved — so a crash can truncate at
    most the final line.  A final snapshot is flushed on :meth:`stop`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        *,
        interval_s: float = 5.0,
        extra: Callable[[], dict[str, Any]] | None = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.path = Path(path)
        self.interval_s = interval_s
        self.extra = extra
        self.clock = clock
        #: the record timestamp source.  Defaults to wall time for
        #: human-readable snapshots; injecting one callable as both
        #: ``clock`` and ``wall_clock`` makes a single (possibly
        #: simulated) clock govern every field the exporter writes.
        self.wall_clock = wall_clock if wall_clock is not None else time.time
        self._epoch = clock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.snapshots_written = 0

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since the exporter was constructed."""
        return self.clock() - self._epoch

    def snapshot_once(self) -> dict[str, Any]:
        """Build, append and return one snapshot record."""
        uptime = self.uptime_seconds
        self.registry.gauge("serve.uptime_seconds").set(uptime)
        record: dict[str, Any] = {
            "t": self.wall_clock(),
            "uptime_seconds": uptime,
            "metrics": self.registry.snapshot(),
        }
        if self.extra is not None:
            try:
                record.update(self.extra())
            except Exception:  # noqa: BLE001 - exporter must not die mid-run
                pass
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line)
        self.snapshots_written += 1
        return record

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.snapshot_once()

    def start(self) -> None:
        """Start the exporter thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-snapshot-exporter", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and flush one final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.snapshot_once()


# -- sliding-window SLO tracking -----------------------------------------------


class _LaneWindow:
    """Sliding event-count windows of one lane's outcomes."""

    __slots__ = ("latency_short", "latency_long", "shed_short", "shed_long",
                 "requests", "violations", "sheds")

    def __init__(self, short: int, long: int) -> None:
        self.latency_short: deque[bool] = deque(maxlen=short)
        self.latency_long: deque[bool] = deque(maxlen=long)
        self.shed_short: deque[bool] = deque(maxlen=short)
        self.shed_long: deque[bool] = deque(maxlen=long)
        self.requests = 0
        self.violations = 0
        self.sheds = 0


def _rate(window: deque) -> float:
    return (sum(window) / len(window)) if window else 0.0


class SloTracker:
    """Per-priority-lane SLOs with multi-window burn-rate alerting.

    Two objectives per lane, both expressed as error budgets:

    - **latency** — at most ``latency_budget`` of requests may exceed
      ``latency_target_s`` (e.g. 5% over 60 s ≈ "p95 under 60 s");
    - **shedding** — at most ``shed_budget`` of admission decisions may
      shed for load (``queue-full`` / ``shutting-down``; unknown-scenario
      refusals are client errors, not load, and are not recorded).

    Burn rate is the observed error rate divided by the budget; following
    the multi-window pattern, a lane alerts only when *both* the short
    window (fast signal) and the long window (sustained signal) burn
    beyond ``burn_threshold`` — a brief spike that the long window has
    already absorbed stays quiet.  Windows are event-counted rings
    (deterministic under test, no clock dependence).

    :meth:`alerts` maps firing burns onto the existing
    :class:`~repro.obs.anomaly.Alert` record: ``series`` is
    ``slo.<lane>.latency`` / ``slo.<lane>.shed``, ``value`` the short
    burn, ``mean`` the long burn, ``std`` the error budget and
    ``zscore`` the short burn in units of the threshold.
    """

    def __init__(
        self,
        *,
        latency_target_s: float = 60.0,
        latency_budget: float = 0.05,
        shed_budget: float = 0.05,
        short_window: int = 32,
        long_window: int = 256,
        burn_threshold: float = 2.0,
        lanes: tuple[str, ...] = ("high", "normal", "low"),
    ) -> None:
        if latency_target_s <= 0:
            raise ValueError(
                f"latency_target_s must be > 0, got {latency_target_s}"
            )
        for nm, budget in (("latency_budget", latency_budget),
                           ("shed_budget", shed_budget)):
            if not 0.0 < budget < 1.0:
                raise ValueError(f"{nm} must be in (0, 1), got {budget}")
        if short_window < 1 or long_window < short_window:
            raise ValueError(
                f"need 1 <= short_window <= long_window; got "
                f"{short_window}, {long_window}"
            )
        if burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {burn_threshold}"
            )
        self.latency_target_s = latency_target_s
        self.latency_budget = latency_budget
        self.shed_budget = shed_budget
        self.short_window = short_window
        self.long_window = long_window
        self.burn_threshold = burn_threshold
        self._lock = threading.Lock()
        self._lanes: dict[str, _LaneWindow] = {
            lane: _LaneWindow(short_window, long_window) for lane in lanes
        }

    def _lane(self, lane: str) -> _LaneWindow:
        win = self._lanes.get(lane)
        if win is None:
            with self._lock:
                win = self._lanes.setdefault(
                    lane, _LaneWindow(self.short_window, self.long_window)
                )
        return win

    def record_latency(self, lane: str, seconds: float) -> None:
        """Record one served request's end-to-end latency."""
        win = self._lane(lane)
        bad = seconds > self.latency_target_s
        with self._lock:
            win.latency_short.append(bad)
            win.latency_long.append(bad)
            win.requests += 1
            if bad:
                win.violations += 1

    def record_admission(self, lane: str, *, shed: bool) -> None:
        """Record one admission decision (``shed`` = refused for load)."""
        win = self._lane(lane)
        with self._lock:
            win.shed_short.append(shed)
            win.shed_long.append(shed)
            if shed:
                win.sheds += 1

    def _burns(self, win: _LaneWindow) -> dict[str, float]:
        return {
            "latency_burn_short": _rate(win.latency_short) / self.latency_budget,
            "latency_burn_long": _rate(win.latency_long) / self.latency_budget,
            "shed_burn_short": _rate(win.shed_short) / self.shed_budget,
            "shed_burn_long": _rate(win.shed_long) / self.shed_budget,
        }

    def summary(self) -> dict[str, Any]:
        """Per-lane objective state as one JSON-ready document."""
        with self._lock:
            lanes: dict[str, Any] = {}
            for lane, win in sorted(self._lanes.items()):
                burns = self._burns(win)
                lanes[lane] = {
                    "requests": win.requests,
                    "violations": win.violations,
                    "sheds": win.sheds,
                    **burns,
                    "latency_alerting": (
                        burns["latency_burn_short"] >= self.burn_threshold
                        and burns["latency_burn_long"] >= self.burn_threshold
                    ),
                    "shed_alerting": (
                        burns["shed_burn_short"] >= self.burn_threshold
                        and burns["shed_burn_long"] >= self.burn_threshold
                    ),
                }
        return {
            "objectives": {
                "latency_target_s": self.latency_target_s,
                "latency_budget": self.latency_budget,
                "shed_budget": self.shed_budget,
                "short_window": self.short_window,
                "long_window": self.long_window,
                "burn_threshold": self.burn_threshold,
            },
            "lanes": lanes,
        }

    def alerts(self) -> list[Alert]:
        """The currently firing burn-rate alerts as anomaly records."""
        out: list[Alert] = []
        with self._lock:
            for lane, win in sorted(self._lanes.items()):
                burns = self._burns(win)
                for kind, budget in (("latency", self.latency_budget),
                                     ("shed", self.shed_budget)):
                    short = burns[f"{kind}_burn_short"]
                    long_ = burns[f"{kind}_burn_long"]
                    if (short >= self.burn_threshold
                            and long_ >= self.burn_threshold):
                        out.append(Alert(
                            series=f"slo.{lane}.{kind}",
                            index=win.requests,
                            value=short,
                            zscore=short / self.burn_threshold,
                            mean=long_,
                            std=budget,
                        ))
        return out


# -- flight recorder -----------------------------------------------------------


class FlightRecorder:
    """A bounded ring of the last ``capacity`` serve events.

    Appends ride a ``deque(maxlen=...)`` — the append itself is the ring
    eviction, with no lock on the hot path (CPython deque appends are
    atomic).  ``recorded`` is a plain counter and may undercount by a
    few under heavy thread contention; the ring content never does.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 256,
        *,
        wall_clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: timestamp source for the dump header (event ``t`` values are
        #: supplied by the caller); injectable so a simulated run's dump
        #: carries virtual time throughout
        self.wall_clock = wall_clock if wall_clock is not None else time.time
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, kind: str, t: float, **attrs: Any) -> None:
        """Append one event record (oldest is evicted at capacity)."""
        self._ring.append({"kind": kind, "t": t, **attrs})
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent ``n`` events (all of them when ``None``)."""
        events = list(self._ring)
        if n is not None and n >= 0:
            events = events[len(events) - min(n, len(events)):]
        return events

    def dump(self, path: str | Path) -> int:
        """Write the ring to ``path`` as JSONL; returns the line count.

        The dump is written whole (one buffered write of every line), so
        a reader never sees a half-written postmortem.
        """
        events = self.tail()
        header = {
            "kind": "flight-recorder",
            "t": self.wall_clock(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dumped": len(events),
        }
        payload = "".join(
            json.dumps(rec, sort_keys=True, default=str) + "\n"
            for rec in (header, *events)
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(payload)
        return len(events)


class NullFlightRecorder:
    """The zero-cost disabled recorder: records nothing, dumps nothing."""

    enabled = False
    capacity = 0
    recorded = 0

    def record(self, kind: str, t: float, **attrs: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        return []

    def dump(self, path: str | Path) -> int:
        return 0


#: the shared no-op recorder a server without live obs holds
NULL_FLIGHT = NullFlightRecorder()


# -- health --------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HealthStatus:
    """Liveness + readiness for the ``health`` wire verb.

    ``live`` means the process answers at all (a served response implies
    it); ``ready`` means the server can usefully accept work: admission
    open, worker pool started, and the queue below capacity.  ``checks``
    carries the individual signals (queue depth vs capacity, worker-pool
    state, seconds since the last terminal commit) so an operator can
    see *which* gate failed.
    """

    live: bool
    ready: bool
    checks: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the wire shape)."""
        return {"live": self.live, "ready": self.ready,
                "checks": dict(self.checks)}


# -- terminal dashboard (python -m repro top) ----------------------------------


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    snapshot: dict[str, Any],
    previous: dict[str, Any] | None = None,
    *,
    width: int = 72,
) -> str:
    """One ``repro top`` frame from a ``stats-stream`` tick document.

    ``snapshot`` is a :meth:`ScenarioServer.live_snapshot` document;
    ``previous`` (the prior tick) enables the throughput delta.  Pure
    string rendering — no terminal control, so it is testable and the
    CLI owns screen clearing.
    """
    stats = snapshot.get("stats", {})
    counters = stats.get("counters", {})
    health = snapshot.get("health", {})
    checks = health.get("checks", {})
    lines: list[str] = []

    uptime = snapshot.get("uptime_seconds", 0.0)
    state = "READY" if health.get("ready") else (
        "LIVE" if health.get("live") else "DOWN")
    lines.append(
        f"repro top — {state}  up {uptime:8.1f}s  "
        f"workers {checks.get('workers_alive', '?')}/{checks.get('workers', '?')}"
    )
    lines.append("=" * width)

    depth = stats.get("queue_depth", 0)
    cap = stats.get("queue_capacity", 1) or 1
    lines.append(
        f"queue {depth:>4}/{cap:<4} [{_bar(depth / cap)}]  "
        f"inflight {stats.get('inflight', 0)}"
    )
    by_prio = stats.get("queue_by_priority", {})
    if by_prio:
        lanes = "  ".join(f"{p}:{n}" for p, n in by_prio.items())
        lines.append(f"lanes  {lanes}")

    submitted = counters.get("submitted", 0)
    completed = counters.get("completed", 0)
    dedup = counters.get("dedup_hits", 0)
    cache = counters.get("cache_hits", 0)
    shed = counters.get("shed", 0)
    denom = max(submitted, 1)
    lines.append(
        f"reqs   submitted {submitted}  completed {completed}  "
        f"shed {shed}  failed {counters.get('failed', 0)}  "
        f"timeout {counters.get('timeout', 0)}"
    )
    lines.append(
        f"reuse  dedup {dedup} ({100.0 * dedup / denom:.0f}%)  "
        f"cache {cache} ({100.0 * cache / denom:.0f}%)"
    )
    if previous is not None:
        prev_done = previous.get("stats", {}).get("counters", {}) \
            .get("completed", 0)
        dt = max(
            snapshot.get("uptime_seconds", 0.0)
            - previous.get("uptime_seconds", 0.0),
            1e-9,
        )
        lines.append(f"rate   {max(completed - prev_done, 0) / dt:.2f} jobs/s")

    latency = snapshot.get("latency", {})
    if latency:
        lines.append("-" * width)
        lines.append(f"{'lane':<8}{'n':>6}{'p50':>10}{'p95':>10}{'p99':>10}")
        for lane, summary in sorted(latency.items()):
            lines.append(
                f"{lane:<8}{summary.get('count', 0):>6}"
                f"{summary.get('p50', 0.0):>10.3f}"
                f"{summary.get('p95', 0.0):>10.3f}"
                f"{summary.get('p99', 0.0):>10.3f}"
            )

    slo = snapshot.get("slo")
    if slo:
        lines.append("-" * width)
        lines.append("slo    lane        latency burn (s/l)   shed burn (s/l)")
        for lane, doc in sorted(slo.get("lanes", {}).items()):
            mark = "!" if (doc.get("latency_alerting")
                           or doc.get("shed_alerting")) else " "
            lines.append(
                f"  {mark}    {lane:<10}  "
                f"{doc.get('latency_burn_short', 0.0):>6.2f}/"
                f"{doc.get('latency_burn_long', 0.0):<6.2f}      "
                f"{doc.get('shed_burn_short', 0.0):>6.2f}/"
                f"{doc.get('shed_burn_long', 0.0):<6.2f}"
            )

    flight = snapshot.get("flight_tail", [])
    if flight:
        lines.append("-" * width)
        lines.append(f"flight recorder (last {len(flight)}):")
        for rec in flight:
            job = rec.get("job", "?")
            scenario = rec.get("scenario", "")
            extras = " ".join(
                f"{k}={v}" for k, v in sorted(rec.items())
                if k not in ("kind", "t", "job", "scenario")
            )
            lines.append(
                f"  {rec.get('t', 0.0):>12.3f}  {rec.get('kind', '?'):<16}"
                f"{job:<10}{scenario:<18}{extras}"
            )

    return "\n".join(lines)
