"""Chrome trace-event (Perfetto) export of a tracer's spans and flows.

:func:`chrome_trace_events` turns a :class:`~repro.obs.tracing.Tracer`
into the JSON object format the Chrome trace-event specification defines
and Perfetto (https://ui.perfetto.dev) loads directly: every span becomes
one complete ``"X"`` event (microsecond ``ts``/``dur``, per-thread
``tid`` so nesting stays well-formed), and every recorded flow becomes an
``"s"``/``"f"`` pair bound to the emitting span's slice — Perfetto draws
the arrow from a MessageCenter send to the ADM/CA handler that consumed
the message.

:func:`collect_trace` is the function behind ``python -m repro trace``:
it drives a reduced quickstart scenario (trace replay + the event-driven
online run, so the agent network sees real traffic) under a collection
window and returns the Chrome document.
"""

from __future__ import annotations

__all__ = ["chrome_trace_events", "collect_trace"]


def _jsonable(value: object) -> object:
    """Attribute values as JSON scalars (repr for anything exotic)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def chrome_trace_events(tracer, *, process_name: str = "repro") -> dict:
    """The tracer's spans + flows as a Chrome trace-event JSON object.

    Events are sorted by timestamp (monotonic ``ts``); flow endpoints
    sort after the ``X`` event opening at the same microsecond so they
    always land inside their enclosing slice.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for r in tracer.records:
        events.append(
            {
                "name": r.name,
                "cat": "span",
                "ph": "X",
                "ts": round(r.start * 1e6, 3),
                # Zero-duration slices are dropped by some viewers; floor
                # at one nanosecond.
                "dur": max(round(r.duration * 1e6, 3), 0.001),
                "pid": 0,
                "tid": r.tid,
                "args": {
                    "path": r.path,
                    "sid": r.sid,
                    "parent": r.parent,
                    **{k: _jsonable(v) for k, v in r.attrs.items()},
                },
            }
        )
    for f in tracer.flows:
        ev = {
            "name": "message",
            "cat": "flow",
            "ph": f.phase,
            "id": f.id,
            "ts": round(f.t * 1e6, 3),
            "pid": 0,
            "tid": f.tid,
        }
        if f.phase == "f":
            # Bind the arrowhead to the enclosing (handler) slice.
            ev["bp"] = "e"
        events.append(ev)
    # Metadata first, then strictly by ts; X before flow endpoints at the
    # same instant so the flow is enclosed.
    order = {"M": 0, "X": 1, "s": 2, "f": 2}
    events.sort(key=lambda e: (e.get("ts", -1.0), order.get(e["ph"], 3)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "python -m repro trace"},
    }


def _run_agent_network() -> None:
    """A small CATALINA control-network run on a failing cluster.

    One node fails mid-run, so the CAs publish failure events, the ADM
    consolidates them and directs migrations, and the CAs acknowledge —
    every hop through the message center carries a causal flow, which is
    exactly what the trace export is meant to show.
    """
    from repro.agents import ManagementComputingSystem, ManagementEditor
    from repro.gridsys import FailureSchedule, sp2_blue_horizon

    cluster = sp2_blue_horizon(4)
    cluster.failures.events.extend(
        FailureSchedule.poisson(
            num_nodes=cluster.num_nodes, horizon=400.0,
            mtbf=150.0, mttr=60.0, seed=7,
        ).events
    )
    spec = ManagementEditor("trace-demo")
    for i in range(3):
        spec.add_component(f"c{i}", 2e8)
    spec = spec.require("performance", 1.0).build()
    mcs = ManagementComputingSystem(cluster)
    env = mcs.build_environment(spec)
    env.run(600.0)


def collect_trace(
    *,
    num_coarse_steps: int = 48,
    online_steps: int = 24,
    timeline_jsonl: str | None = None,
) -> dict:
    """Run the reduced quickstart under tracing; returns the Chrome doc.

    Replays the quickstart trace adaptively, drives the event-driven
    online runtime for ``online_steps``, and runs a small CATALINA agent
    network on a failing cluster so the message center records real
    send → handle flows (ADM/CA handler spans linked to their senders).
    When ``timeline_jsonl`` is given, the collection window's timeline is
    also snapshotted there.
    """
    from repro import obs
    from repro.core.online import OnlineAdaptiveRuntime
    from repro.obs.report import quickstart_scenario
    from repro.partitioners import deterministic_partition_time

    app, policy, runtime = quickstart_scenario()
    with obs.collect() as window, deterministic_partition_time():
        trace = runtime.characterize(app, policy, num_coarse_steps)
        runtime.run_adaptive(trace, compare_with=("SFC",))
        if online_steps > 0:
            online = OnlineAdaptiveRuntime(
                runtime.cluster, num_procs=runtime.num_procs
            )
            online.run(app, policy, online_steps)
        with obs.span("agent_network"):
            _run_agent_network()
    if timeline_jsonl is not None:
        window.timeline.to_jsonl(timeline_jsonl)
    return chrome_trace_events(window.tracer)
