"""Observability for the Pragma reproduction pipeline.

The paper argues runtime management must be measurement-driven; this
package turns the same lens on the reproduction itself.  It holds one
process-local :class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.tracing.Tracer` and one
:class:`~repro.obs.timeline.TimelineRecorder`, all defaulting to
zero-cost null implementations so instrumented hot paths (the execution
simulator, the meta-partitioner, the CATALINA message center, the
resource monitor) pay nothing unless a collection window is open.

Usage::

    from repro import obs

    with obs.collect() as window:        # enable for a scoped window
        report = runtime.run_adaptive(trace)
    window.registry.counter_value("execsim.intervals")
    window.tracer.totals_by_path()
    window.timeline.summary()

or imperatively with :func:`enable` / :func:`disable`.  Instrumented call
sites go through the module-level helpers (:func:`counter`, :func:`gauge`,
:func:`histogram`, :func:`span`, :func:`handler_span`,
:func:`get_timeline`), which dispatch to whatever registry, tracer and
timeline are currently installed.
"""

from __future__ import annotations

from repro.obs.anomaly import Alert, EwmaDetector, detect_alerts, detect_series
from repro.obs.benchdiff import (
    BenchDiff,
    LeafDiff,
    ToleranceRule,
    diff_documents,
    diff_files,
    flatten_document,
)
from repro.obs.chrome import chrome_trace_events, collect_trace
from repro.obs.export import export_json, export_jsonl, observability_snapshot
from repro.obs.live import (
    NULL_FLIGHT,
    FlightRecorder,
    HealthStatus,
    NullFlightRecorder,
    SloTracker,
    SnapshotExporter,
    render_dashboard,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.timeline import NullTimeline, StepSample, TimelineRecorder
from repro.obs.tracing import FlowRecord, NullTracer, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "FlowRecord",
    "StepSample",
    "TimelineRecorder",
    "NullTimeline",
    "Alert",
    "EwmaDetector",
    "detect_series",
    "detect_alerts",
    "BenchDiff",
    "LeafDiff",
    "ToleranceRule",
    "flatten_document",
    "diff_documents",
    "diff_files",
    "chrome_trace_events",
    "collect_trace",
    "render_prometheus",
    "render_dashboard",
    "SnapshotExporter",
    "SloTracker",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "HealthStatus",
    "get_registry",
    "get_tracer",
    "get_timeline",
    "set_registry",
    "set_tracer",
    "set_timeline",
    "enabled",
    "enable",
    "disable",
    "collect",
    "counter",
    "gauge",
    "histogram",
    "span",
    "handler_span",
    "export_json",
    "export_jsonl",
    "observability_snapshot",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()
_NULL_TIMELINE = NullTimeline()

_registry: MetricsRegistry = _NULL_REGISTRY
_tracer: Tracer = _NULL_TRACER
_timeline: TimelineRecorder = _NULL_TIMELINE


def get_registry() -> MetricsRegistry:
    """The currently installed metrics registry (null when disabled)."""
    return _registry


def get_tracer() -> Tracer:
    """The currently installed tracer (null when disabled)."""
    return _tracer


def get_timeline() -> TimelineRecorder:
    """The currently installed timeline recorder (null when disabled)."""
    return _timeline


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide sink; returns it."""
    global _registry
    _registry = registry
    return registry


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def set_timeline(timeline: TimelineRecorder) -> TimelineRecorder:
    """Install ``timeline`` as the process-wide recorder; returns it."""
    global _timeline
    _timeline = timeline
    return timeline


def enabled() -> bool:
    """True when a real (non-null) registry is installed."""
    return _registry.enabled


def enable() -> tuple[MetricsRegistry, Tracer]:
    """Install a fresh real registry, tracer and timeline.

    Returns the registry/tracer pair (the historical signature); fetch
    the timeline with :func:`get_timeline` when you need it.
    """
    set_timeline(TimelineRecorder())
    return set_registry(MetricsRegistry()), set_tracer(Tracer())


def disable() -> None:
    """Restore the zero-cost null registry, tracer and timeline."""
    global _registry, _tracer, _timeline
    _registry = _NULL_REGISTRY
    _tracer = _NULL_TRACER
    _timeline = _NULL_TIMELINE


class _CollectionWindow:
    """Scoped enable/disable; exposes the registry/tracer/timeline it owned."""

    __slots__ = ("registry", "tracer", "timeline", "_prev")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.timeline = TimelineRecorder()

    def __enter__(self) -> _CollectionWindow:
        self._prev = (_registry, _tracer, _timeline)
        set_registry(self.registry)
        set_tracer(self.tracer)
        set_timeline(self.timeline)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        prev_registry, prev_tracer, prev_timeline = self._prev
        set_registry(prev_registry)
        set_tracer(prev_tracer)
        set_timeline(prev_timeline)


def collect() -> _CollectionWindow:
    """Context manager opening a fresh collection window.

    On exit the previously installed registry/tracer/timeline (usually
    the null defaults) are restored; the window keeps its ``registry``,
    ``tracer`` and ``timeline`` for inspection and export.
    """
    return _CollectionWindow()


# -- instrumentation helpers (what call sites import) -------------------------


def counter(name: str, **labels: object) -> Counter:
    """Counter from the installed registry (no-op when disabled)."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    """Gauge from the installed registry (no-op when disabled)."""
    return _registry.gauge(name, **labels)


def histogram(
    name: str, window: int | None = None, **labels: object
) -> Histogram:
    """Histogram from the installed registry (no-op when disabled).

    ``window`` selects the sliding-window mode when the instrument is
    first created (see :class:`~repro.obs.metrics.Histogram`).
    """
    return _registry.histogram(name, window, **labels)


def span(name: str, **attrs: object):
    """Span context manager from the installed tracer (no-op when disabled)."""
    return _tracer.span(name, **attrs)


def handler_span(name: str, message, **attrs: object):
    """Span for handling ``message``, consuming its causal flow context.

    ``message`` is anything with an optional ``trace_ctx`` attribute (a
    flow id stamped by the message center at send time); when present,
    the tracer records the flow's receiving endpoint inside the handler
    slice, so trace viewers draw the send → handle arrow.  No-op when
    tracing is disabled.
    """
    return _tracer.handler_span(
        name, getattr(message, "trace_ctx", None), **attrs
    )
