"""Observability for the Pragma reproduction pipeline.

The paper argues runtime management must be measurement-driven; this
package turns the same lens on the reproduction itself.  It holds one
process-local :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracing.Tracer`, both defaulting to zero-cost null
implementations so instrumented hot paths (the execution simulator, the
meta-partitioner, the CATALINA message center, the resource monitor) pay
nothing unless a collection window is open.

Usage::

    from repro import obs

    with obs.collect() as window:        # enable for a scoped window
        report = runtime.run_adaptive(trace)
    window.registry.counter_value("execsim.intervals")
    window.tracer.totals_by_path()

or imperatively with :func:`enable` / :func:`disable`.  Instrumented call
sites go through the module-level helpers (:func:`counter`, :func:`gauge`,
:func:`histogram`, :func:`span`), which dispatch to whatever registry and
tracer are currently installed.
"""

from __future__ import annotations

from repro.obs.export import export_json, export_jsonl, observability_snapshot
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NullTracer, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "enabled",
    "enable",
    "disable",
    "collect",
    "counter",
    "gauge",
    "histogram",
    "span",
    "export_json",
    "export_jsonl",
    "observability_snapshot",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

_registry: MetricsRegistry = _NULL_REGISTRY
_tracer: Tracer = _NULL_TRACER


def get_registry() -> MetricsRegistry:
    """The currently installed metrics registry (null when disabled)."""
    return _registry


def get_tracer() -> Tracer:
    """The currently installed tracer (null when disabled)."""
    return _tracer


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide sink; returns it."""
    global _registry
    _registry = registry
    return registry


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def enabled() -> bool:
    """True when a real (non-null) registry is installed."""
    return _registry.enabled


def enable() -> tuple[MetricsRegistry, Tracer]:
    """Install a fresh real registry + tracer; returns both."""
    return set_registry(MetricsRegistry()), set_tracer(Tracer())


def disable() -> None:
    """Restore the zero-cost null registry and tracer."""
    global _registry, _tracer
    _registry = _NULL_REGISTRY
    _tracer = _NULL_TRACER


class _CollectionWindow:
    """Scoped enable/disable; exposes the registry and tracer it owned."""

    __slots__ = ("registry", "tracer", "_prev")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    def __enter__(self) -> _CollectionWindow:
        self._prev = (_registry, _tracer)
        set_registry(self.registry)
        set_tracer(self.tracer)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        prev_registry, prev_tracer = self._prev
        set_registry(prev_registry)
        set_tracer(prev_tracer)


def collect() -> _CollectionWindow:
    """Context manager opening a fresh collection window.

    On exit the previously installed registry/tracer (usually the null
    defaults) are restored; the window keeps its ``registry`` and
    ``tracer`` for inspection and export.
    """
    return _CollectionWindow()


# -- instrumentation helpers (what call sites import) -------------------------


def counter(name: str, **labels: object) -> Counter:
    """Counter from the installed registry (no-op when disabled)."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    """Gauge from the installed registry (no-op when disabled)."""
    return _registry.gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    """Histogram from the installed registry (no-op when disabled)."""
    return _registry.histogram(name, **labels)


def span(name: str, **attrs: object):
    """Span context manager from the installed tracer (no-op when disabled)."""
    return _tracer.span(name, **attrs)
