"""Bench regression gate: compare two ``BENCH_*.json`` documents.

``python -m repro benchdiff BASELINE.json CURRENT.json`` flattens both
documents to dotted-path leaves, matches numeric leaves within a
per-metric tolerance, and exits non-zero when any leaf regressed — the
CI gate that finally makes the committed bench baselines bite.

Tolerances are resolved per leaf by first-match over glob rules
(:class:`ToleranceRule`): wall-clock-like metrics are ignored by default
(they measure the machine, not the code), everything else must agree
within a relative tolerance.  A leaf present in the baseline but missing
from the current document fails (a metric silently disappeared); leaves
new in the current document are reported but pass (benches accumulate
metrics over time).  Both drifts — regressions *and* improbable
improvements — fail the gate: either way the committed baseline no
longer describes the code, and should be regenerated deliberately.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

__all__ = [
    "ToleranceRule",
    "DEFAULT_IGNORES",
    "LeafDiff",
    "BenchDiff",
    "flatten_document",
    "diff_documents",
    "diff_files",
]

#: dotted-path globs ignored by default: wall-clock and cache timings
#: measure the host, not the code under test
DEFAULT_IGNORES = (
    "*wall*",
    "*overhead_pct*",
    "*speedup*",
    "*warm_fraction*",
    "*duration_s*",
    "span_totals_by_path*",
    "*.start_s",
)


@dataclass(frozen=True, slots=True)
class ToleranceRule:
    """One per-metric tolerance: glob over the dotted leaf path.

    ``rel`` of ``None`` means the matching leaves are ignored entirely.
    """

    pattern: str
    rel: float | None
    abs: float = 1e-9


@dataclass(frozen=True, slots=True)
class LeafDiff:
    """Comparison outcome for one dotted-path leaf."""

    path: str
    #: "ok", "ignored", "regression", "missing", or "added"
    status: str
    base: object = None
    current: object = None
    #: relative change (current - base) / |base| for numeric leaves
    rel_change: float | None = None

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "status": self.status,
            "base": self.base,
            "current": self.current,
            "rel_change": self.rel_change,
        }


@dataclass(slots=True)
class BenchDiff:
    """Outcome of one baseline/current comparison."""

    leaves: list[LeafDiff] = field(default_factory=list)

    @property
    def failures(self) -> list[LeafDiff]:
        """Leaves that fail the gate (regressions + missing metrics)."""
        return [d for d in self.leaves
                if d.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        """True when no leaf regressed or disappeared."""
        return not self.failures

    def counts(self) -> dict[str, int]:
        """Leaf count per status."""
        out: dict[str, int] = {}
        for d in self.leaves:
            out[d.status] = out.get(d.status, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The comparison as a JSON-ready document."""
        return {
            "bench": "benchdiff",
            "ok": self.ok,
            "counts": self.counts(),
            "failures": [d.as_dict() for d in self.failures],
            "added": [d.path for d in self.leaves if d.status == "added"],
        }

    def render(self) -> str:
        """Human-readable text rendering (the CLI's default output)."""
        c = self.counts()
        lines = ["== bench regression gate =="]
        lines.append(
            "compared {ok} ok | {ignored} ignored | {added} added | "
            "{regression} regressed | {missing} missing".format(
                ok=c.get("ok", 0), ignored=c.get("ignored", 0),
                added=c.get("added", 0), regression=c.get("regression", 0),
                missing=c.get("missing", 0),
            )
        )
        for d in self.failures:
            if d.status == "missing":
                lines.append(f"  MISSING    {d.path}  (baseline {d.base!r})")
            else:
                pct = (
                    f"{100.0 * d.rel_change:+.2f}%"
                    if d.rel_change is not None
                    else "non-numeric"
                )
                lines.append(
                    f"  REGRESSION {d.path}  {d.base!r} -> {d.current!r} "
                    f"({pct})"
                )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def flatten_document(doc: object, prefix: str = "") -> dict[str, object]:
    """Flatten nested dicts/lists to dotted-path leaves.

    List elements get numeric path segments (``tasks.0.name``), so two
    documents of the same shape flatten to comparable key sets.
    """
    out: dict[str, object] = {}
    if isinstance(doc, dict):
        for k, v in doc.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_document(v, key))
    elif isinstance(doc, (list, tuple)):
        for i, v in enumerate(doc):
            key = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_document(v, key))
    else:
        out[prefix] = doc
    return out


def _build_rules(
    tolerances: dict[str, float] | None,
    ignores: tuple[str, ...],
    default_rel: float,
    default_abs: float,
) -> list[ToleranceRule]:
    rules = [ToleranceRule(p, None) for p in ignores]
    for pattern, rel in (tolerances or {}).items():
        rules.append(ToleranceRule(pattern, rel, default_abs))
    rules.append(ToleranceRule("*", default_rel, default_abs))
    return rules


def _match_rule(rules: list[ToleranceRule], path: str) -> ToleranceRule:
    for rule in rules:
        if fnmatchcase(path, rule.pattern):
            return rule
    return rules[-1]


def _numbers(a: object, b: object) -> bool:
    return (
        isinstance(a, (int, float)) and not isinstance(a, bool)
        and isinstance(b, (int, float)) and not isinstance(b, bool)
    )


def diff_documents(
    baseline: dict,
    current: dict,
    *,
    rel_tol: float = 0.01,
    abs_tol: float = 1e-6,
    tolerances: dict[str, float] | None = None,
    ignores: tuple[str, ...] = DEFAULT_IGNORES,
) -> BenchDiff:
    """Compare two bench documents; returns the leaf-by-leaf verdicts.

    ``tolerances`` maps dotted-path globs to relative tolerances
    overriding ``rel_tol``; ``ignores`` are globs skipped entirely
    (matched before tolerances).  Non-numeric leaves must be equal.
    """
    base_flat = flatten_document(baseline)
    cur_flat = flatten_document(current)
    rules = _build_rules(tolerances, ignores, rel_tol, abs_tol)
    diff = BenchDiff()

    for path in sorted(base_flat):
        base_v = base_flat[path]
        rule = _match_rule(rules, path)
        if rule.rel is None:
            diff.leaves.append(
                LeafDiff(path=path, status="ignored", base=base_v,
                         current=cur_flat.get(path))
            )
            continue
        if path not in cur_flat:
            diff.leaves.append(
                LeafDiff(path=path, status="missing", base=base_v)
            )
            continue
        cur_v = cur_flat[path]
        if _numbers(base_v, cur_v):
            close = math.isclose(
                float(cur_v), float(base_v),
                rel_tol=rule.rel, abs_tol=rule.abs,
            )
            rel_change = (
                (float(cur_v) - float(base_v)) / abs(float(base_v))
                if base_v else None
            )
            diff.leaves.append(
                LeafDiff(
                    path=path,
                    status="ok" if close else "regression",
                    base=base_v,
                    current=cur_v,
                    rel_change=rel_change,
                )
            )
        else:
            diff.leaves.append(
                LeafDiff(
                    path=path,
                    status="ok" if base_v == cur_v else "regression",
                    base=base_v,
                    current=cur_v,
                )
            )
    for path in sorted(set(cur_flat) - set(base_flat)):
        diff.leaves.append(
            LeafDiff(path=path, status="added", current=cur_flat[path])
        )
    return diff


def diff_files(
    baseline: str | Path,
    current: str | Path,
    **kwargs: object,
) -> BenchDiff:
    """:func:`diff_documents` over two JSON files."""
    with Path(baseline).open(encoding="utf-8") as fh:
        base_doc = json.load(fh)
    with Path(current).open(encoding="utf-8") as fh:
        cur_doc = json.load(fh)
    return diff_documents(base_doc, cur_doc, **kwargs)
