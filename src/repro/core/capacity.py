"""The capacity calculator of Figure 4.

Section 4.6: "The relative capacity C_k for the k-th grid-element is
defined as the weighted sum of normalized values of the individual
available CPU P_k, memory M_k, and link bandwidth B_k capacities returned
by NWS.  Weights are application dependent and reflect its computational,
memory, and communication requirements."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitoring.monitor import ResourceMonitor
from repro.util.stats import normalize, weighted_sum

__all__ = ["CapacityWeights", "CapacityCalculator"]


@dataclass(frozen=True, slots=True)
class CapacityWeights:
    """Application-dependent attribute weights (must sum to 1).

    The default reflects an SAMR kernel: strongly compute-bound, with
    communication mattering more than memory footprint.
    """

    cpu: float = 0.6
    memory: float = 0.15
    bandwidth: float = 0.25

    def __post_init__(self) -> None:
        for name in ("cpu", "memory", "bandwidth"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name} must be >= 0")
        total = self.cpu + self.memory + self.bandwidth
        if not np.isclose(total, 1.0):
            raise ValueError(f"weights must sum to 1, got {total}")

    def as_dict(self) -> dict[str, float]:
        """Attribute name → weight."""
        return {"cpu": self.cpu, "memory": self.memory, "bandwidth": self.bandwidth}


class CapacityCalculator:
    """Relative node capacities from monitored (or forecast) attributes."""

    def __init__(
        self,
        monitor: ResourceMonitor,
        weights: CapacityWeights | None = None,
        *,
        use_forecast: bool = False,
        window: int = 16,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.monitor = monitor
        self.weights = weights or CapacityWeights()
        self.use_forecast = use_forecast
        self.window = window

    def relative_capacities(self) -> np.ndarray:
        """C_k per node, normalized to sum to 1.

        CPU availability is additionally scaled by the node's nominal
        speed — a 50 %-loaded fast node can still beat an idle slow one.
        With ``use_forecast=True`` the NWS-style one-step-ahead forecasts
        substitute for the raw last measurements (proactive management).
        """
        if self.use_forecast:
            cpu = self.monitor.forecast_vector("cpu")
            mem = self.monitor.forecast_vector("memory")
            bw = self.monitor.forecast_vector("bandwidth")
        else:
            # Average the trailing measurement window: a single NWS sample
            # carries probe noise larger than the capacity differences the
            # weighting must resolve.
            n = self.monitor.cluster.num_nodes
            cpu, mem, bw = (
                np.array(
                    [
                        self.monitor.stream(node, attr)
                        .values(window=self.window)
                        .mean()
                        for node in range(n)
                    ]
                )
                for attr in ("cpu", "memory", "bandwidth")
            )
        cpu_power = np.clip(cpu, 0.0, 1.0) * self.monitor.cluster.speeds()
        parts = {
            "cpu": normalize(cpu_power),
            "memory": normalize(np.maximum(mem, 0.0)),
            "bandwidth": normalize(np.maximum(bw, 0.0)),
        }
        cap = weighted_sum(parts, self.weights.as_dict())
        total = cap.sum()
        if total <= 0:
            # Every node looks dead; fall back to equal shares.
            return np.full(len(cap), 1.0 / len(cap))
        return cap / total
