"""System-sensitive adaptive partitioning (Section 4.6, Figure 4).

The data flow of Figure 4:

    monitoring tool → (CPU, memory, link capacities) → capacity calculator
    → relative capacities → heterogeneous partitioner → partitions →
    application

"Relative capacities of the processors are calculated only once before
the start of the simulation in this experiment" — that is
``refresh_interval=None``; passing an interval enables the periodic
refresh the paper leaves as future work (our ablation bench measures the
difference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.trace import AdaptationTrace
from repro.config import SimulatorOptions
from repro.core.capacity import CapacityCalculator
from repro.execsim.costmodel import CostModel
from repro.execsim.selector import StaticSelector
from repro.execsim.simulator import ExecutionSimulator, RunResult
from repro.gridsys.cluster import Cluster
from repro.partitioners.hetero import EqualPartitioner, HeterogeneousPartitioner

__all__ = ["SystemSensitivePipeline"]


@dataclass(slots=True)
class SystemSensitivePipeline:
    """Monitor → capacity calculator → heterogeneous partitioner."""

    cluster: Cluster
    calculator: CapacityCalculator
    granularity: int = 2
    warmup_samples: int = 32
    cost_model: CostModel | None = None

    def capacities(self) -> np.ndarray:
        """One-shot relative capacities (the paper's methodology)."""
        return self.calculator.relative_capacities()

    def warm_up(self, t0: float = 0.0, period: float = 1.0) -> None:
        """Collect monitoring samples before computing capacities."""
        self.calculator.monitor.sample_range(
            t0, t0 + self.warmup_samples * period, period
        )

    def run_system_sensitive(
        self, trace: AdaptationTrace, num_procs: int | None = None
    ) -> RunResult:
        """Simulate the run with capacity-proportional partitioning."""
        sim = ExecutionSimulator(
            self.cluster,
            num_procs=num_procs,
            cost_model=self.cost_model,
            options=SimulatorOptions(
                capacities=self.capacities()[
                    : num_procs or self.cluster.num_nodes
                ]
            ),
        )
        return sim.run(
            trace, StaticSelector(HeterogeneousPartitioner(), self.granularity)
        )

    def run_default(
        self, trace: AdaptationTrace, num_procs: int | None = None
    ) -> RunResult:
        """Simulate the run with the equal-distribution baseline."""
        sim = ExecutionSimulator(
            self.cluster, num_procs=num_procs, cost_model=self.cost_model
        )
        return sim.run(trace, StaticSelector(EqualPartitioner(), self.granularity))

    def improvement_pct(
        self, trace: AdaptationTrace, num_procs: int | None = None
    ) -> float:
        """Percentage runtime improvement of system-sensitive over default.

        This is one row of Table 5.
        """
        base = self.run_default(trace, num_procs).total_runtime
        adaptive = self.run_system_sensitive(trace, num_procs).total_runtime
        if base <= 0:
            raise RuntimeError("baseline runtime must be positive")
        return 100.0 * (base - adaptive) / base
