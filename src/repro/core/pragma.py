"""The Pragma runtime facade.

Wires the paper's four components around one application run:

- system characterization: :class:`~repro.monitoring.ResourceMonitor`,
- application characterization: the octant classifier inside
  :class:`~repro.core.meta_partitioner.MetaPartitioner`,
- policy base: :class:`~repro.policy.kb.PolicyKnowledgeBase`,
- active control network: a CATALINA management environment monitoring the
  simulated solver components.

`PragmaRuntime.run_adaptive` is the one-call entry point used by the
quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.amr.regrid import RegridPolicy
from repro.amr.trace import AdaptationTrace
from repro.apps.base import SyntheticApplication, generate_trace
from repro.core.capacity import CapacityCalculator, CapacityWeights
from repro.core.meta_partitioner import MetaPartitioner
from repro.execsim.costmodel import CostModel
from repro.execsim.selector import StaticSelector
from repro.execsim.simulator import ExecutionSimulator, RunResult
from repro.gridsys.cluster import Cluster
from repro.monitoring.monitor import ResourceMonitor
from repro.partitioners import PARTITIONER_REGISTRY
from repro.policy.kb import PolicyKnowledgeBase
from repro.policy.octant import OctantThresholds

__all__ = ["AdaptiveRunReport", "PragmaRuntime"]


@dataclass(frozen=True, slots=True)
class AdaptiveRunReport:
    """Outcome of an adaptive run plus its static comparisons."""

    adaptive: RunResult
    static: dict[str, RunResult]
    octant_timeline: tuple[tuple[int, str, str], ...]

    @property
    def best_static_runtime(self) -> float:
        """Fastest static partitioner's runtime."""
        return min(r.total_runtime for r in self.static.values())

    @property
    def worst_static_runtime(self) -> float:
        """Slowest static partitioner's runtime."""
        return max(r.total_runtime for r in self.static.values())

    @property
    def improvement_over_worst_pct(self) -> float:
        """Adaptive improvement over the slowest static scheme (Table 4's
        headline: 27.2 % on 64 processors).

        A degenerate trace (e.g. one snapshot covering zero coarse steps)
        can make every static runtime 0.0; report 0.0 improvement instead
        of dividing by zero.
        """
        worst = self.worst_static_runtime
        if worst == 0.0:
            return 0.0
        return 100.0 * (worst - self.adaptive.total_runtime) / worst


@dataclass(slots=True)
class PragmaRuntime:
    """Adaptive runtime management for one application on one machine."""

    cluster: Cluster
    num_procs: int | None = None
    kb: PolicyKnowledgeBase | None = None
    thresholds: OctantThresholds = field(default_factory=OctantThresholds)
    cost_model: CostModel | None = None
    monitor: ResourceMonitor | None = None
    capacity_weights: CapacityWeights = field(default_factory=CapacityWeights)

    def characterize(
        self,
        app: SyntheticApplication,
        policy: RegridPolicy,
        num_coarse_steps: int,
    ) -> AdaptationTrace:
        """Application characterization: capture the adaptation trace."""
        return generate_trace(app, policy, num_coarse_steps)

    def meta_partitioner(self, hysteresis: int = 0) -> MetaPartitioner:
        """A fresh meta-partitioner bound to this runtime's policy base."""
        kwargs = {"thresholds": self.thresholds, "hysteresis": hysteresis}
        if self.kb is not None:
            kwargs["kb"] = self.kb
        return MetaPartitioner(**kwargs)

    def capacities(self, warmup: int = 32) -> np.ndarray:
        """System characterization: relative node capacities."""
        monitor = self.monitor or ResourceMonitor(self.cluster)
        if self.monitor is None:
            self.monitor = monitor
        stream = monitor.stream(0, "cpu")
        start = stream.last_time + 1.0 if len(stream) else 0.0
        monitor.sample_range(start, start + warmup, 1.0)
        calc = CapacityCalculator(monitor, self.capacity_weights)
        return calc.relative_capacities()

    def run_adaptive(
        self,
        trace: AdaptationTrace,
        *,
        hysteresis: int = 0,
        compare_with: tuple[str, ...] = ("SFC", "G-MISP+SP", "pBD-ISP"),
    ) -> AdaptiveRunReport:
        """Run the meta-partitioner and the requested static baselines."""
        sim = ExecutionSimulator(
            self.cluster, num_procs=self.num_procs, cost_model=self.cost_model
        )
        meta = self.meta_partitioner(hysteresis=hysteresis)
        with obs.span("pragma.run_adaptive", selector="meta"):
            adaptive = sim.run(trace, meta)
        static: dict[str, RunResult] = {}
        for name in compare_with:
            if name not in PARTITIONER_REGISTRY:
                raise ValueError(f"unknown partitioner {name!r}")
            with obs.span("pragma.run_static", partitioner=name):
                static[name] = sim.run(
                    trace, StaticSelector(PARTITIONER_REGISTRY[name]())
                )
        return AdaptiveRunReport(
            adaptive=adaptive,
            static=static,
            octant_timeline=tuple(meta.selections),
        )
