"""Online adaptive management: the closed loop, without a pre-captured trace.

The Table 3/4 methodology characterizes a *recorded* trace.  This module
implements the loop the paper describes as the full Pragma system
(Section 4.7): the application runs; a characterization agent observes
each regrid, publishes octant transitions and load-threshold events to
the Message Center; and the runtime *repartitions only when an event
fires*, otherwise keeping the current decomposition (no migration, no
partitioning cost) and letting imbalance drift until the agents object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.characterization_agent import CharacterizationAgent
from repro.agents.message_center import MessageCenter
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.trace import Snapshot
from repro.apps.base import SyntheticApplication
from repro.core.meta_partitioner import MetaPartitioner
from repro.execsim.costmodel import CostModel
from repro.execsim.simulator import ExecutionSimulator, RunResult, StepRecord
from repro.gridsys.cluster import Cluster
from repro.partitioners.base import Partition
from repro.partitioners.metrics import evaluate_partition
from repro.partitioners.units import build_units
from repro.policy.octant import OctantThresholds
from repro.util.stats import max_load_imbalance_pct

__all__ = ["OnlineRunReport", "OnlineAdaptiveRuntime"]


@dataclass(slots=True)
class OnlineRunReport:
    """Outcome of an online adaptive run."""

    result: RunResult
    repartitions: int
    regrids: int
    events: list

    @property
    def repartition_fraction(self) -> float:
        """Share of regrid steps that actually repartitioned."""
        if self.regrids == 0:
            return 0.0
        return self.repartitions / self.regrids


class OnlineAdaptiveRuntime:
    """Event-driven adaptive partitioning of a live application."""

    def __init__(
        self,
        cluster: Cluster,
        num_procs: int | None = None,
        *,
        cost_model: CostModel | None = None,
        thresholds: OctantThresholds | None = None,
        load_jump_fraction: float = 0.25,
        imbalance_trigger_pct: float = 20.0,
    ) -> None:
        if imbalance_trigger_pct <= 0:
            raise ValueError(
                f"imbalance_trigger_pct must be positive, got "
                f"{imbalance_trigger_pct}"
            )
        self.cluster = cluster
        self.num_procs = num_procs or cluster.num_nodes
        self._sim = ExecutionSimulator(
            cluster, num_procs=self.num_procs, cost_model=cost_model
        )
        self.thresholds = thresholds or OctantThresholds()
        self.load_jump_fraction = load_jump_fraction
        self.imbalance_trigger_pct = imbalance_trigger_pct

    def run(
        self,
        app: SyntheticApplication,
        policy: RegridPolicy,
        num_coarse_steps: int,
        *,
        always_repartition: bool = False,
    ) -> OnlineRunReport:
        """Drive ``app`` for ``num_coarse_steps`` under event-driven control.

        With ``always_repartition=True`` the loop degenerates to the
        trace-replay behavior (repartition at every regrid) — the baseline
        the event-driven mode is compared against.
        """
        if num_coarse_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {num_coarse_steps}"
            )
        mc = MessageCenter()
        agent = CharacterizationAgent(
            mc,
            thresholds=self.thresholds,
            load_jump_fraction=self.load_jump_fraction,
        )
        listener = mc.register("online-runtime")
        mc.subscribe("online-runtime", "octant-transition")
        mc.subscribe("online-runtime", "load-threshold")
        meta = MetaPartitioner(thresholds=self.thresholds)

        regridder = Regridder(app.domain, policy)
        result = RunResult(proc_work=np.zeros(self.num_procs))
        partition: Partition | None = None
        decision = None
        owner_lattice: np.ndarray | None = None
        repartitions = 0
        regrids = 0
        events: list = []
        sim_time = 0.0

        for step in range(0, num_coarse_steps, policy.regrid_interval):
            hierarchy = regridder.regrid(
                app.error_field(step), app.load_field(step)
            )
            snapshot = Snapshot(step=step, hierarchy=hierarchy)
            octant = agent.observe(step, hierarchy)
            triggers = mc.drain(listener.name)
            events.extend(triggers)
            regrids += 1

            must_partition = (
                partition is None or always_repartition or bool(triggers)
            )
            if must_partition:
                decision = meta.decide_for_octant(octant)
                units = build_units(
                    hierarchy, granularity=decision.granularity
                )
                new_partition = decision.partitioner.partition(
                    units, self.num_procs
                )
                repartitions += 1
            else:
                # Keep the current decomposition: re-derive the assignment
                # from the retained owner lattice over the new loads.
                units = build_units(
                    hierarchy, granularity=decision.granularity
                )
                new_partition = self._carry_forward(
                    owner_lattice, units, decision
                )
                # Local load agents object when per-processor load drifts
                # past the threshold — the Section 4.7 repartition trigger.
                drift = max_load_imbalance_pct(new_partition.proc_loads())
                if drift > self.imbalance_trigger_pct:
                    decision = meta.decide_for_octant(octant)
                    new_partition = decision.partitioner.partition(
                        units, self.num_procs
                    )
                    must_partition = True
                    repartitions += 1
                    events.append(("load-imbalance", step, drift))
            metrics = evaluate_partition(new_partition, partition)
            owner_lattice = new_partition.owner_lattice()

            coarse_steps = min(
                policy.regrid_interval, num_coarse_steps - step
            )
            comp_t, comm_t, ghost = self._sim._interval_cost(
                new_partition, hierarchy, coarse_steps, sim_time
            )
            regrid_t = (
                self._sim._regrid_cost(metrics, new_partition, snapshot)
                if must_partition
                else 0.0
            )
            sim_time += comp_t + comm_t + regrid_t
            result.proc_work += new_partition.proc_loads() * coarse_steps
            result.records.append(
                StepRecord(
                    step=step,
                    label=decision.label,
                    octant=octant.value,
                    coarse_steps=coarse_steps,
                    compute_time=comp_t,
                    comm_time=comm_t,
                    regrid_time=regrid_t,
                    imbalance_pct=max_load_imbalance_pct(
                        new_partition.proc_loads()
                    ),
                    metrics=metrics,
                )
            )
            result.useful_work += (
                hierarchy.load_per_coarse_step() * coarse_steps
            )
            result.ghost_work += ghost * coarse_steps
            partition = new_partition

        return OnlineRunReport(
            result=result,
            repartitions=repartitions,
            regrids=regrids,
            events=events,
        )

    def _carry_forward(
        self,
        owner_lattice: np.ndarray | None,
        units,
        decision,
    ) -> Partition:
        """Rebuild a Partition keeping the previous ownership geometry."""
        assert owner_lattice is not None and decision is not None
        if owner_lattice.shape != units.grid_shape:
            # The unit lattice changed (different granularity choice):
            # fall back to a fresh partition.
            return decision.partitioner.partition(units, self.num_procs)
        assignment = owner_lattice.reshape(-1)[units.lattice_index]
        return Partition(
            units=units,
            num_procs=self.num_procs,
            assignment=assignment,
            partitioner_name=decision.partitioner.name,
            partition_time=0.0,
            params={"carried_forward": True,
                    "messages_per_neighbor":
                        decision.partitioner.messages_per_neighbor},
        )
