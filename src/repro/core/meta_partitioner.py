"""The adaptive meta-partitioner (Section 4.3).

"P_t = F(A_t, C_t): the partitioning technique P selected at a given time
t should be a function of the state of the application A and the computer
system C at that time.  ...  the runtime environment is characterized
using the octant approach and current application and system state.  Based
on the octant state, the most appropriate partitioning technique is
selected from a database of available partitioning techniques, configured
with appropriate parameters such as partitioning granularity and
threshold, and then invoked."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import kernels, obs
from repro.amr.trace import Snapshot
from repro.execsim.selector import PartitionerSelector, SelectorDecision
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.base import Partitioner
from repro.policy.defaults import default_policy_base
from repro.policy.kb import PolicyKnowledgeBase
from repro.policy.octant import (
    Octant,
    OctantThresholds,
    classify_hierarchy,
)

__all__ = ["MetaPartitioner"]


@dataclass(slots=True)
class MetaPartitioner(PartitionerSelector):
    """Octant-driven runtime partitioner selection.

    Each regrid step the snapshot is classified into an octant, the policy
    base is queried for that octant's recommendation, and the named
    partitioner is instantiated (and cached) with the policy's
    configuration.  ``hysteresis`` regrids keep the previous choice unless
    the octant persists, preventing thrash at octant boundaries (the
    repartition_hysteresis policy parameter).

    ``kernel_backend`` optionally pins the partitioning kernel backend
    (``"vector"`` / ``"scalar"``, see :mod:`repro.kernels`) for the whole
    run; ``None`` leaves the process-wide ``REPRO_KERNELS`` selection in
    force.
    """

    kb: PolicyKnowledgeBase = field(default_factory=default_policy_base)
    thresholds: OctantThresholds = field(default_factory=OctantThresholds)
    system_state: dict = field(default_factory=dict)
    hysteresis: int = 0
    kernel_backend: str | None = None
    _instances: dict[str, Partitioner] = field(default_factory=dict, repr=False)
    _last: SelectorDecision | None = field(default=None, repr=False)
    _pending_octant: Octant | None = field(default=None, repr=False)
    _pending_count: int = field(default=0, repr=False)
    selections: list[tuple[int, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if (
            self.kernel_backend is not None
            and self.kernel_backend not in kernels.BACKENDS
        ):
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"choose from {kernels.BACKENDS}"
            )

    def decide(
        self, snapshot: Snapshot, previous: Snapshot | None
    ) -> SelectorDecision:
        if self.kernel_backend is not None:
            kernels.set_backend(self.kernel_backend)
        octant, _signals = classify_hierarchy(
            snapshot.hierarchy,
            previous.hierarchy if previous is not None else None,
            self.thresholds,
        )
        obs.counter("meta.classifications", octant=octant.value).inc()
        decision = self._decision_for(octant)
        decision = self._apply_hysteresis(octant, decision)
        if self.selections and decision.label != self.selections[-1][2]:
            obs.counter("meta.switches").inc()
            tl = obs.get_timeline()
            if tl.enabled:
                tl.event(
                    "partitioner-switch",
                    t=float(snapshot.step),
                    step=snapshot.step,
                    octant=decision.octant or octant.value,
                    from_partitioner=self.selections[-1][2],
                    to_partitioner=decision.label,
                )
        self.selections.append(
            (snapshot.step, decision.octant or octant.value, decision.label)
        )
        return decision

    def decide_for_octant(self, octant: Octant) -> SelectorDecision:
        """Policy lookup without classification (used by benches/tests)."""
        return self._decision_for(octant)

    # -- internals ---------------------------------------------------------------

    def _decision_for(self, octant: Octant) -> SelectorDecision:
        state = {"octant": octant, **self.system_state}
        action = self.kb.merged_action(state)
        if "partitioner" not in action:
            obs.counter("meta.policy_lookups", result="miss").inc()
            raise LookupError(
                f"policy base has no partitioner recommendation for "
                f"octant {octant.value}"
            )
        obs.counter("meta.policy_lookups", result="hit").inc()
        name = action["partitioner"]
        if name not in PARTITIONER_REGISTRY:
            raise LookupError(f"policy recommends unknown partitioner {name!r}")
        if name not in self._instances:
            self._instances[name] = PARTITIONER_REGISTRY[name]()
        return SelectorDecision(
            partitioner=self._instances[name],
            granularity=int(action.get("granularity", 4)),
            label=name,
            octant=octant.value,
        )

    def _apply_hysteresis(
        self, octant: Octant, decision: SelectorDecision
    ) -> SelectorDecision:
        if self.hysteresis <= 0 or self._last is None:
            self._last = decision
            self._pending_octant = None
            return decision
        if decision.label == self._last.label:
            self._pending_octant = None
            self._last = decision
            return decision
        # A different recommendation: require it to persist.
        if self._pending_octant is octant:
            self._pending_count += 1
        else:
            self._pending_octant = octant
            self._pending_count = 1
        if self._pending_count > self.hysteresis:
            self._last = decision
            self._pending_octant = None
            return decision
        # Keep the previous partitioner but report the new octant.
        obs.counter("meta.hysteresis_holds").inc()
        prev = self._last
        return SelectorDecision(
            partitioner=prev.partitioner,
            granularity=prev.granularity,
            label=prev.label,
            octant=octant.value,
        )
