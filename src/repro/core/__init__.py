"""Pragma's core: adaptive application management.

- :class:`CapacityCalculator` — Figure 4's capacity calculator: weighted
  normalized CPU / memory / bandwidth per node → relative capacities.
- :class:`MetaPartitioner` — the adaptive meta-partitioner of Section 4:
  octant classification + policy query + partitioner selection at runtime.
- :class:`SystemSensitivePipeline` — the system-sensitive partitioning
  data flow of Section 4.6 (monitor → capacities → heterogeneous
  partitioner).
- :class:`PragmaRuntime` — the facade wiring monitoring, characterization,
  policies, partitioners and the agent layer around an application run.
"""

from repro.core.capacity import CapacityCalculator, CapacityWeights
from repro.core.meta_partitioner import MetaPartitioner
from repro.core.system_sensitive import SystemSensitivePipeline
from repro.core.pragma import PragmaRuntime, AdaptiveRunReport
from repro.core.online import OnlineAdaptiveRuntime, OnlineRunReport
from repro.core.predictive import PredictiveSelector, PredictedCost

__all__ = [
    "CapacityCalculator",
    "CapacityWeights",
    "MetaPartitioner",
    "SystemSensitivePipeline",
    "PragmaRuntime",
    "AdaptiveRunReport",
    "OnlineAdaptiveRuntime",
    "OnlineRunReport",
    "PredictiveSelector",
    "PredictedCost",
]
