"""Predictive partitioner selection using performance functions.

Research challenge 1 of the paper: "Formulation of predictive performance
functions ... and use these functions along with current system/network
state information to anticipate the operations and expected performance of
applications for a given workload and system configuration."

The Table 2 policy often recommends *several* partitioners per octant
(e.g. octant IV: G-MISP+SP, SP-ISP, ISP).  The :class:`PredictiveSelector`
breaks the tie with a performance function: it trial-partitions the
current hierarchy with each recommended candidate, composes the predicted
interval time — per-processor compute over (forecast) effective speeds,
ghost communication, amortized repartitioning cost — and picks the
minimum.  This is proactive management: decisions use the *forecast*
system state, not just the current one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amr.trace import Snapshot
from repro.execsim.costmodel import CostModel
from repro.execsim.selector import PartitionerSelector, SelectorDecision
from repro.execsim.simulator import per_step_comm_times
from repro.gridsys.cluster import Cluster
from repro.monitoring.monitor import ResourceMonitor
from repro.partitioners import PARTITIONER_REGISTRY
from repro.partitioners.base import Partition, Partitioner
from repro.policy.defaults import default_policy_base
from repro.policy.kb import PolicyKnowledgeBase
from repro.policy.octant import OctantThresholds, classify_hierarchy

__all__ = ["PredictedCost", "PredictiveSelector"]


@dataclass(frozen=True, slots=True)
class PredictedCost:
    """Predicted interval cost of one candidate partitioner."""

    partitioner: str
    compute: float
    comm: float
    regrid: float

    @property
    def total(self) -> float:
        """Predicted seconds for the regrid interval."""
        return self.compute + self.comm + self.regrid


@dataclass(slots=True)
class PredictiveSelector(PartitionerSelector):
    """Octant policy + performance-function tie-breaking."""

    cluster: Cluster
    num_procs: int
    kb: PolicyKnowledgeBase = field(default_factory=default_policy_base)
    thresholds: OctantThresholds = field(default_factory=OctantThresholds)
    cost: CostModel = field(default_factory=CostModel)
    monitor: ResourceMonitor | None = None
    regrid_interval: int = 4
    _instances: dict[str, Partitioner] = field(default_factory=dict, repr=False)
    predictions: list[tuple[int, dict[str, float]]] = field(default_factory=list)

    def decide(
        self, snapshot: Snapshot, previous: Snapshot | None
    ) -> SelectorDecision:
        octant, _ = classify_hierarchy(
            snapshot.hierarchy,
            previous.hierarchy if previous is not None else None,
            self.thresholds,
        )
        action = self.kb.merged_action({"octant": octant})
        candidates = tuple(action.get("partitioners", ()))
        if not candidates:
            raise LookupError(
                f"no partitioner candidates for octant {octant.value}"
            )
        granularity = int(action.get("granularity", 2))
        if len(candidates) == 1:
            return SelectorDecision(
                partitioner=self._instance(candidates[0]),
                granularity=granularity,
                label=candidates[0],
                octant=octant.value,
            )

        from repro.partitioners.units import build_units

        units = build_units(snapshot.hierarchy, granularity=granularity)
        speeds = self._effective_speeds()
        costs = {
            name: self.predict_cost(
                self._instance(name).partition(units, self.num_procs),
                speeds,
            )
            for name in candidates
        }
        best = min(costs, key=lambda n: costs[n].total)
        self.predictions.append(
            (snapshot.step, {n: c.total for n, c in costs.items()})
        )
        return SelectorDecision(
            partitioner=self._instance(best),
            granularity=granularity,
            label=best,
            octant=octant.value,
        )

    def predict_cost(
        self, partition: Partition, speeds: np.ndarray
    ) -> PredictedCost:
        """Compose the predicted interval cost of a trial partition."""
        comm_per_step, _ = per_step_comm_times(
            partition, self.cost, self.cluster.link.bandwidth
        )
        comp = partition.proc_loads() / np.maximum(speeds, 1e-9)
        exposed = comp + (1.0 - self.cost.comm_overlap) * comm_per_step
        step_total = float(
            max(exposed.max(), comm_per_step.max(initial=0.0))
        )
        comp_share = float(comp.max())
        comm_share = max(step_total - comp_share, 0.0)
        regrid = (
            partition.partition_time
            + partition.rect_fragments() * self.cost.seconds_per_fragment
        )
        return PredictedCost(
            partitioner=partition.partitioner_name,
            compute=comp_share * self.regrid_interval,
            comm=comm_share * self.regrid_interval,
            regrid=regrid,
        )

    # -- internals ------------------------------------------------------------

    def _instance(self, name: str) -> Partitioner:
        if name not in PARTITIONER_REGISTRY:
            raise LookupError(f"unknown partitioner {name!r}")
        if name not in self._instances:
            self._instances[name] = PARTITIONER_REGISTRY[name]()
        return self._instances[name]

    def _effective_speeds(self) -> np.ndarray:
        """Forecast per-processor speeds (proactive) or nominal speeds."""
        speeds = self.cluster.speeds()[: self.num_procs]
        if self.monitor is not None:
            cpu = np.clip(
                self.monitor.forecast_vector("cpu")[: self.num_procs], 0.0, 1.0
            )
            return speeds * cpu
        return speeds