"""Compute nodes of the simulated grid."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node"]


@dataclass(frozen=True, slots=True)
class Node:
    """One processing element.

    ``cpu_speed`` is in work units per second (a work unit is one cell
    update of the SAMR solver); ``memory`` is in cells of storable state.
    Both are relative capacities — the paper's capacity calculator only
    ever uses normalized values.
    """

    node_id: int
    cpu_speed: float = 1.0e6
    memory: float = 4.0e6

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.cpu_speed <= 0:
            raise ValueError(f"cpu_speed must be positive, got {self.cpu_speed}")
        if self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
