"""Failure injection for the simulated grid.

The paper lists "respond to system failures" among the control network's
responsibilities; the agent layer's fault paths (suspend / checkpoint /
migrate) and the execution simulator's rollback/repartition path
(:mod:`repro.resilience`) are exercised against schedules from this
module.

Grid nodes do not merely die — they slow down, flap, and lose
connectivity.  Beyond crash-stop :class:`FailureEvent` outages the
vocabulary covers the gray-failure modes the runtime must respond to
*proportionally*:

- :class:`DegradedWindow` — a node running at a fraction of its capacity
  (thermal throttling, co-tenant load).  The right response is a capacity
  down-weight through system-sensitive partitioning, never eviction.
- :class:`FlappingNode` — a node cycling through short outages.  Naive
  eviction triggers a rollback storm; eviction hysteresis bounds it.
- :class:`NetworkPartition` — groups of endpoints that cannot reach each
  other for a window.  Messages across the cut dead-letter instead of
  delivering.

Liveness queries are hot — the execution simulator asks ``is_alive`` per
processor per coarse step — so the schedule keeps a per-node index of
events sorted by ``t_fail`` with a prefix-max of ``t_recover``, giving
O(log events-per-node) lookups instead of a linear scan over the whole
schedule.  The index is rebuilt lazily after mutation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.util.rng import ensure_rng

__all__ = [
    "FailureEvent",
    "DegradedWindow",
    "FlappingNode",
    "NetworkPartition",
    "FailureSchedule",
]


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One node outage: down during ``[t_fail, t_recover)``.

    ``t_recover`` may be ``inf`` for a permanent failure.
    """

    node_id: int
    t_fail: float
    t_recover: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_fail < 0:
            raise ValueError(f"t_fail must be >= 0, got {self.t_fail}")
        if self.t_recover <= self.t_fail:
            raise ValueError(
                f"t_recover ({self.t_recover}) must exceed t_fail ({self.t_fail})"
            )

    def is_down(self, t: float) -> bool:
        """True while the node is failed at time ``t``."""
        return self.t_fail <= t < self.t_recover

    @property
    def duration(self) -> float:
        """Outage length in seconds (``inf`` for a permanent failure)."""
        return self.t_recover - self.t_fail


@dataclass(frozen=True, slots=True)
class DegradedWindow:
    """A node running slow — not dead — during ``[t_start, t_end)``.

    ``capacity_factor`` is the fraction of nominal capacity the node
    retains (0 < factor < 1).  Overlapping windows on the same node
    multiply.
    """

    node_id: int
    t_start: float
    t_end: float
    capacity_factor: float

    def __post_init__(self) -> None:
        if self.t_start < 0:
            raise ValueError(f"t_start must be >= 0, got {self.t_start}")
        if self.t_end <= self.t_start:
            raise ValueError(
                f"t_end ({self.t_end}) must exceed t_start ({self.t_start})"
            )
        if not 0.0 < self.capacity_factor < 1.0:
            raise ValueError(
                f"capacity_factor must be in (0, 1), got {self.capacity_factor}"
            )

    def active(self, t: float) -> bool:
        """True while the degradation applies at time ``t``."""
        return self.t_start <= t < self.t_end


@dataclass(frozen=True, slots=True)
class FlappingNode:
    """A node cycling through short outages during ``[t_start, t_end)``.

    Every ``period`` seconds the node goes down for ``down_time`` seconds.
    :meth:`events` expands the spec into the equivalent crash-stop
    :class:`FailureEvent` list; :meth:`FailureSchedule.add_flapping`
    registers them directly.
    """

    node_id: int
    t_start: float
    t_end: float
    period: float
    down_time: float

    def __post_init__(self) -> None:
        if self.t_start < 0:
            raise ValueError(f"t_start must be >= 0, got {self.t_start}")
        if self.t_end <= self.t_start:
            raise ValueError(
                f"t_end ({self.t_end}) must exceed t_start ({self.t_start})"
            )
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 < self.down_time < self.period:
            raise ValueError(
                f"down_time must be in (0, period), got {self.down_time}"
            )

    def events(self) -> list[FailureEvent]:
        """The flap cycle as discrete outages (clipped to the window)."""
        out: list[FailureEvent] = []
        t = self.t_start
        while t < self.t_end:
            out.append(
                FailureEvent(
                    self.node_id, t, min(t + self.down_time, self.t_end)
                )
            )
            t += self.period
        return out

    @property
    def num_flaps(self) -> int:
        """Outages the spec expands to."""
        return int(math.ceil((self.t_end - self.t_start) / self.period))


@dataclass(frozen=True, slots=True)
class NetworkPartition:
    """Connectivity split into ``groups`` during ``[t_start, t_end)``.

    Members are opaque endpoint ids (node ids or port-group labels — the
    message center binds ports to members).  Endpoints in different
    groups cannot exchange messages while the partition is active; an
    endpoint in no group is on a control plane reachable from everywhere.
    """

    t_start: float
    t_end: float
    groups: tuple[tuple, ...]

    def __post_init__(self) -> None:
        if self.t_start < 0:
            raise ValueError(f"t_start must be >= 0, got {self.t_start}")
        if self.t_end <= self.t_start:
            raise ValueError(
                f"t_end ({self.t_end}) must exceed t_start ({self.t_start})"
            )
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            for member in group:
                if member in seen:
                    raise ValueError(
                        f"member {member!r} appears in more than one group"
                    )
                seen.add(member)

    def active(self, t: float) -> bool:
        """True while the partition is in effect at time ``t``."""
        return self.t_start <= t < self.t_end

    def group_of(self, member) -> int | None:
        """Index of the group containing ``member`` (``None`` if unlisted)."""
        for i, group in enumerate(self.groups):
            if member in group:
                return i
        return None

    def severed(self, a, b, t: float) -> bool:
        """True when ``a`` and ``b`` cannot communicate at time ``t``."""
        if not self.active(t):
            return False
        ga, gb = self.group_of(a), self.group_of(b)
        return ga is not None and gb is not None and ga != gb


@dataclass(slots=True)
class FailureSchedule:
    """A set of failure events queryable by (node, time).

    Besides crash-stop :attr:`events`, the schedule carries the gray
    faults: :attr:`degraded` capacity windows (queried through
    :meth:`capacity_factor`) and :attr:`partitions` (queried through
    :meth:`severed`).  Flapping specs expand into ordinary events via
    :meth:`add_flapping`.
    """

    events: list[FailureEvent] = field(default_factory=list)
    degraded: list[DegradedWindow] = field(default_factory=list)
    partitions: list[NetworkPartition] = field(default_factory=list)
    #: lazily rebuilt per-node index: node -> (sorted t_fails, events
    #: sorted by t_fail, prefix-max of t_recover).  The prefix-max makes
    #: liveness correct even for overlapping hand-added outages.
    _index: dict[int, tuple[list[float], list[FailureEvent], list[float]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed_len: int = field(default=-1, repr=False, compare=False)

    def add(self, event: FailureEvent) -> None:
        """Register a failure event."""
        self.events.append(event)

    def add_degraded(self, window: DegradedWindow) -> None:
        """Register a degraded-capacity window."""
        self.degraded.append(window)

    def add_partition(self, partition: NetworkPartition) -> None:
        """Register a network partition."""
        self.partitions.append(partition)

    def add_flapping(self, spec: FlappingNode) -> list[FailureEvent]:
        """Expand a flapping spec into events; returns what was added."""
        events = spec.events()
        self.events.extend(events)
        return events

    def capacity_factor(self, node_id: int, t: float) -> float:
        """Fraction of nominal capacity ``node_id`` retains at ``t``.

        1.0 when healthy; overlapping degraded windows multiply.  This is
        orthogonal to liveness — a degraded node is slow, not dead.
        """
        if not self.degraded:
            return 1.0
        factor = 1.0
        for w in self.degraded:
            if w.node_id == node_id and w.active(t):
                factor *= w.capacity_factor
        return factor

    def degraded_windows_for(self, node_id: int) -> list[DegradedWindow]:
        """Degraded windows registered for ``node_id`` (any time)."""
        return [w for w in self.degraded if w.node_id == node_id]

    def severed(self, a, b, t: float) -> bool:
        """True when any registered partition severs ``a`` from ``b`` at ``t``."""
        return any(p.severed(a, b, t) for p in self.partitions)

    def _node_index(
        self, node_id: int
    ) -> tuple[list[float], list[FailureEvent], list[float]] | None:
        if self._indexed_len != len(self.events):
            by_node: dict[int, list[FailureEvent]] = {}
            for e in self.events:
                by_node.setdefault(e.node_id, []).append(e)
            self._index = {}
            for node, evs in by_node.items():
                evs.sort(key=lambda e: e.t_fail)
                prefix_max: list[float] = []
                running = -math.inf
                for e in evs:
                    running = max(running, e.t_recover)
                    prefix_max.append(running)
                self._index[node] = ([e.t_fail for e in evs], evs, prefix_max)
            self._indexed_len = len(self.events)
        return self._index.get(node_id)

    def is_alive(self, node_id: int, t: float) -> bool:
        """True unless some event has ``node_id`` down at ``t``.

        O(log k) in the node's event count via the per-node index.
        """
        idx = self._node_index(node_id)
        if idx is None:
            return True
        t_fails, _, prefix_max = idx
        pos = bisect_right(t_fails, t)
        if pos == 0:
            return True
        return prefix_max[pos - 1] <= t

    def failures_in(self, t0: float, t1: float) -> list[FailureEvent]:
        """Events whose failure time falls in ``[t0, t1)``.

        Note this misses outages that *began* before ``t0`` but are still
        in progress during the window — detectors scanning windows want
        :meth:`down_during` instead.
        """
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        return [e for e in self.events if t0 <= e.t_fail < t1]

    def down_during(self, t0: float, t1: float) -> list[FailureEvent]:
        """Events overlapping the window ``[t0, t1)`` at any point.

        Unlike :meth:`failures_in`, this includes outages that began
        before ``t0`` and are still unrepaired inside the window — the
        query a window-scanning failure detector actually needs.
        """
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        return [e for e in self.events if e.t_fail < t1 and e.t_recover > t0]

    def next_alive_time(self, node_id: int, t: float) -> float:
        """Earliest time ``>= t`` at which ``node_id`` is up.

        ``t`` itself when the node is already alive; ``inf`` for a
        permanent failure in progress.
        """
        idx = self._node_index(node_id)
        if idx is None:
            return t
        t_fails, events, prefix_max = idx
        cur = t
        pos = bisect_right(t_fails, cur)
        # Overlapping outages can extend each other, so iterate until no
        # event covering ``cur`` remains (each pass strictly advances cur).
        while pos > 0 and prefix_max[pos - 1] > cur:
            cur = max(e.t_recover for e in events[:pos] if e.t_recover > cur)
            if math.isinf(cur):
                return cur
            pos = bisect_right(t_fails, cur)
        return cur

    @classmethod
    def poisson(
        cls,
        num_nodes: int,
        horizon: float,
        mtbf: float,
        mttr: float,
        seed: int | None = 0,
    ) -> "FailureSchedule":
        """Random schedule: per-node Poisson failures, exponential repairs."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        rng = ensure_rng(seed)
        sched = cls()
        for node in range(num_nodes):
            t = float(rng.exponential(mtbf))
            while t < horizon:
                repair = float(rng.exponential(mttr))
                sched.add(FailureEvent(node, t, t + repair))
                t += repair + float(rng.exponential(mtbf))
        return sched
