"""Failure injection for the simulated grid.

The paper lists "respond to system failures" among the control network's
responsibilities; the agent layer's fault paths (suspend / checkpoint /
migrate) are exercised against schedules from this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import ensure_rng

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One node outage: down during ``[t_fail, t_recover)``.

    ``t_recover`` may be ``inf`` for a permanent failure.
    """

    node_id: int
    t_fail: float
    t_recover: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_fail < 0:
            raise ValueError(f"t_fail must be >= 0, got {self.t_fail}")
        if self.t_recover <= self.t_fail:
            raise ValueError(
                f"t_recover ({self.t_recover}) must exceed t_fail ({self.t_fail})"
            )

    def is_down(self, t: float) -> bool:
        """True while the node is failed at time ``t``."""
        return self.t_fail <= t < self.t_recover


@dataclass(slots=True)
class FailureSchedule:
    """A set of failure events queryable by (node, time)."""

    events: list[FailureEvent] = field(default_factory=list)

    def add(self, event: FailureEvent) -> None:
        """Register a failure event."""
        self.events.append(event)

    def is_alive(self, node_id: int, t: float) -> bool:
        """True unless some event has ``node_id`` down at ``t``."""
        return not any(e.node_id == node_id and e.is_down(t) for e in self.events)

    def failures_in(self, t0: float, t1: float) -> list[FailureEvent]:
        """Events whose failure time falls in ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        return [e for e in self.events if t0 <= e.t_fail < t1]

    @classmethod
    def poisson(
        cls,
        num_nodes: int,
        horizon: float,
        mtbf: float,
        mttr: float,
        seed: int | None = 0,
    ) -> "FailureSchedule":
        """Random schedule: per-node Poisson failures, exponential repairs."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        rng = ensure_rng(seed)
        sched = cls()
        for node in range(num_nodes):
            t = float(rng.exponential(mtbf))
            while t < horizon:
                repair = float(rng.exponential(mttr))
                sched.add(FailureEvent(node, t, t + repair))
                t += repair + float(rng.exponential(mtbf))
        return sched
