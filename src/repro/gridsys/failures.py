"""Failure injection for the simulated grid.

The paper lists "respond to system failures" among the control network's
responsibilities; the agent layer's fault paths (suspend / checkpoint /
migrate) and the execution simulator's rollback/repartition path
(:mod:`repro.resilience`) are exercised against schedules from this
module.

Liveness queries are hot — the execution simulator asks ``is_alive`` per
processor per coarse step — so the schedule keeps a per-node index of
events sorted by ``t_fail`` with a prefix-max of ``t_recover``, giving
O(log events-per-node) lookups instead of a linear scan over the whole
schedule.  The index is rebuilt lazily after mutation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.util.rng import ensure_rng

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One node outage: down during ``[t_fail, t_recover)``.

    ``t_recover`` may be ``inf`` for a permanent failure.
    """

    node_id: int
    t_fail: float
    t_recover: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_fail < 0:
            raise ValueError(f"t_fail must be >= 0, got {self.t_fail}")
        if self.t_recover <= self.t_fail:
            raise ValueError(
                f"t_recover ({self.t_recover}) must exceed t_fail ({self.t_fail})"
            )

    def is_down(self, t: float) -> bool:
        """True while the node is failed at time ``t``."""
        return self.t_fail <= t < self.t_recover


@dataclass(slots=True)
class FailureSchedule:
    """A set of failure events queryable by (node, time)."""

    events: list[FailureEvent] = field(default_factory=list)
    #: lazily rebuilt per-node index: node -> (sorted t_fails, events
    #: sorted by t_fail, prefix-max of t_recover).  The prefix-max makes
    #: liveness correct even for overlapping hand-added outages.
    _index: dict[int, tuple[list[float], list[FailureEvent], list[float]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed_len: int = field(default=-1, repr=False, compare=False)

    def add(self, event: FailureEvent) -> None:
        """Register a failure event."""
        self.events.append(event)

    def _node_index(
        self, node_id: int
    ) -> tuple[list[float], list[FailureEvent], list[float]] | None:
        if self._indexed_len != len(self.events):
            by_node: dict[int, list[FailureEvent]] = {}
            for e in self.events:
                by_node.setdefault(e.node_id, []).append(e)
            self._index = {}
            for node, evs in by_node.items():
                evs.sort(key=lambda e: e.t_fail)
                prefix_max: list[float] = []
                running = -math.inf
                for e in evs:
                    running = max(running, e.t_recover)
                    prefix_max.append(running)
                self._index[node] = ([e.t_fail for e in evs], evs, prefix_max)
            self._indexed_len = len(self.events)
        return self._index.get(node_id)

    def is_alive(self, node_id: int, t: float) -> bool:
        """True unless some event has ``node_id`` down at ``t``.

        O(log k) in the node's event count via the per-node index.
        """
        idx = self._node_index(node_id)
        if idx is None:
            return True
        t_fails, _, prefix_max = idx
        pos = bisect_right(t_fails, t)
        if pos == 0:
            return True
        return prefix_max[pos - 1] <= t

    def failures_in(self, t0: float, t1: float) -> list[FailureEvent]:
        """Events whose failure time falls in ``[t0, t1)``.

        Note this misses outages that *began* before ``t0`` but are still
        in progress during the window — detectors scanning windows want
        :meth:`down_during` instead.
        """
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        return [e for e in self.events if t0 <= e.t_fail < t1]

    def down_during(self, t0: float, t1: float) -> list[FailureEvent]:
        """Events overlapping the window ``[t0, t1)`` at any point.

        Unlike :meth:`failures_in`, this includes outages that began
        before ``t0`` and are still unrepaired inside the window — the
        query a window-scanning failure detector actually needs.
        """
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got [{t0}, {t1})")
        return [e for e in self.events if e.t_fail < t1 and e.t_recover > t0]

    def next_alive_time(self, node_id: int, t: float) -> float:
        """Earliest time ``>= t`` at which ``node_id`` is up.

        ``t`` itself when the node is already alive; ``inf`` for a
        permanent failure in progress.
        """
        idx = self._node_index(node_id)
        if idx is None:
            return t
        t_fails, events, prefix_max = idx
        cur = t
        pos = bisect_right(t_fails, cur)
        # Overlapping outages can extend each other, so iterate until no
        # event covering ``cur`` remains (each pass strictly advances cur).
        while pos > 0 and prefix_max[pos - 1] > cur:
            cur = max(e.t_recover for e in events[:pos] if e.t_recover > cur)
            if math.isinf(cur):
                return cur
            pos = bisect_right(t_fails, cur)
        return cur

    @classmethod
    def poisson(
        cls,
        num_nodes: int,
        horizon: float,
        mtbf: float,
        mttr: float,
        seed: int | None = 0,
    ) -> "FailureSchedule":
        """Random schedule: per-node Poisson failures, exponential repairs."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        rng = ensure_rng(seed)
        sched = cls()
        for node in range(num_nodes):
            t = float(rng.exponential(mtbf))
            while t < horizon:
                repair = float(rng.exponential(mttr))
                sched.add(FailureEvent(node, t, t + repair))
                t += repair + float(rng.exponential(mtbf))
        return sched
