"""Simulated computational grid: nodes, links, clusters, dynamics, failures.

The paper's experiments ran on two real machines — the NPACI IBM SP2 "Blue
Horizon" and a 32-node Linux cluster on switched fast Ethernet.  This
package simulates such machines: per-node compute rates and memory, a
network cost model, stochastic background load (driving heterogeneity),
and failure injection for the agent layer's fault-management paths.
"""

from repro.gridsys.node import Node
from repro.gridsys.link import Link
from repro.gridsys.cluster import Cluster, sp2_blue_horizon, linux_cluster
from repro.gridsys.failures import (
    DegradedWindow,
    FailureEvent,
    FailureSchedule,
    FlappingNode,
    NetworkPartition,
)

__all__ = [
    "Node",
    "Link",
    "Cluster",
    "sp2_blue_horizon",
    "linux_cluster",
    "DegradedWindow",
    "FailureEvent",
    "FailureSchedule",
    "FlappingNode",
    "NetworkPartition",
]
