"""Network links of the simulated grid."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Link"]


@dataclass(frozen=True, slots=True)
class Link:
    """Point-to-point (or switched shared) link with a latency/bandwidth model.

    Transfer time for ``n`` bytes is ``latency + n / bandwidth`` — the
    standard Hockney model, which is also the functional family the
    performance-function module fits (Section 3.2's switch PF).
    """

    latency: float = 1.0e-4          # seconds
    bandwidth: float = 12.5e6        # bytes/second (100 Mb/s fast Ethernet)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over the link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth
