"""Cluster: nodes + network + dynamics, with presets for the paper's testbeds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.loadgen import LoadPattern, SyntheticLoadGenerator
from repro.gridsys.failures import FailureSchedule
from repro.gridsys.link import Link
from repro.gridsys.node import Node

__all__ = ["Cluster", "sp2_blue_horizon", "linux_cluster"]


@dataclass(slots=True)
class Cluster:
    """A simulated parallel machine.

    The network model is a single switched fabric: every pair of distinct
    nodes communicates over ``link``, intra-node communication is free.
    Background load (heterogeneity over time) comes from an optional
    :class:`SyntheticLoadGenerator`; failures from a
    :class:`FailureSchedule`.
    """

    nodes: list[Node]
    link: Link = field(default_factory=Link)
    loadgen: SyntheticLoadGenerator | None = None
    failures: FailureSchedule = field(default_factory=FailureSchedule)
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if ids != list(range(len(ids))):
            raise ValueError("node ids must be 0..n-1 in order")
        if self.loadgen is not None and self.loadgen.num_nodes != len(self.nodes):
            raise ValueError(
                f"load generator covers {self.loadgen.num_nodes} nodes, "
                f"cluster has {len(self.nodes)}"
            )

    @property
    def num_nodes(self) -> int:
        """Number of processing elements."""
        return len(self.nodes)

    def background_load(self, node_id: int, t: float) -> float:
        """Background CPU fraction in use on ``node_id`` at time ``t``."""
        if self.loadgen is None:
            return 0.0
        return self.loadgen.load_at(node_id, t)

    def effective_speed(self, node_id: int, t: float) -> float:
        """Work units per second available to the application at time ``t``.

        Zero while the node is failed; scaled down by any active
        :class:`~repro.gridsys.failures.DegradedWindow` (a gray failure —
        the node is slow, not dead).
        """
        node = self.nodes[node_id]
        if not self.failures.is_alive(node_id, t):
            return 0.0
        speed = node.cpu_speed * (1.0 - self.background_load(node_id, t))
        if self.failures.degraded:
            speed *= self.failures.capacity_factor(node_id, t)
        return speed

    def comm_time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time between two nodes (0 for src == dst)."""
        for nid in (src, dst):
            if not (0 <= nid < self.num_nodes):
                raise ValueError(f"node {nid} out of range [0, {self.num_nodes})")
        if src == dst:
            return 0.0
        return self.link.transfer_time(nbytes)

    def speeds(self) -> np.ndarray:
        """Nominal (unloaded) per-node speeds."""
        return np.array([n.cpu_speed for n in self.nodes], dtype=float)

    def memories(self) -> np.ndarray:
        """Per-node memory capacities."""
        return np.array([n.memory for n in self.nodes], dtype=float)


def sp2_blue_horizon(num_procs: int = 64) -> Cluster:
    """NPACI IBM SP2 'Blue Horizon'-like homogeneous MPP.

    Blue Horizon was POWER3 nodes on a proprietary switch: fast uniform
    CPUs, low-latency high-bandwidth interconnect, no background load.
    Absolute rates are chosen so the RM3D run lands in the paper's
    hundreds-of-seconds regime; only relative behavior matters.
    """
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    nodes = [Node(i, cpu_speed=1.05e6, memory=64.0e6) for i in range(num_procs)]
    link = Link(latency=2.0e-5, bandwidth=350.0e6)
    return Cluster(nodes=nodes, link=link, name=f"sp2-blue-horizon-{num_procs}")


def linux_cluster(
    num_nodes: int = 32,
    *,
    load_pattern: LoadPattern = LoadPattern.STEPPED,
    max_load: float = 0.75,
    seed: int = 42,
    speeds: Sequence[float] | None = None,
) -> Cluster:
    """32-node Linux workstation cluster on switched 100 Mb/s fast Ethernet.

    Matches the Section 4.6 testbed: commodity nodes, fast-Ethernet switch,
    plus the synthetic background load generator producing heterogeneous
    node capacities.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if speeds is None:
        node_speeds = [1.0e6] * num_nodes
    else:
        if len(speeds) != num_nodes:
            raise ValueError(
                f"got {len(speeds)} speeds for {num_nodes} nodes"
            )
        node_speeds = [float(s) for s in speeds]
    nodes = [Node(i, cpu_speed=s, memory=16.0e6) for i, s in enumerate(node_speeds)]
    link = Link(latency=1.2e-4, bandwidth=12.5e6)
    loadgen = SyntheticLoadGenerator(
        num_nodes=num_nodes, pattern=load_pattern, max_load=max_load, seed=seed
    )
    return Cluster(
        nodes=nodes, link=link, loadgen=loadgen, name=f"linux-cluster-{num_nodes}"
    )
