"""Command-line interface: ``python -m repro <experiment> [...]``.

Runs any of the paper's reproduction experiments and prints the
corresponding table or figure, e.g.::

    python -m repro table2          # instant
    python -m repro table1 table3   # several at once
    python -m repro all             # everything (several minutes)

The heavyweight experiments (table3/4/5, fig3) consume the reference RM3D
trace, generated once (~30 s) and cached under ``.cache/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, common

#: experiments that consume the reference RM3D trace
_TRACE_EXPERIMENTS = {"table3", "table4", "table5", "fig3", "fig4"}


def _run_one(name: str, trace) -> str:
    module = EXPERIMENTS[name]
    if name in _TRACE_EXPERIMENTS:
        result = module.run(trace)
    else:
        result = module.run()
    return module.render(result)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the Pragma paper "
        "(Parashar & Hariri, IPDPS 2002).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment(s) to run ('all' for everything)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the cached reference trace (default: .cache/)",
    )
    args = parser.parse_args(argv)

    names = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    trace = None
    if any(n in _TRACE_EXPERIMENTS for n in names):
        print("loading reference RM3D trace (generated on first use) ...",
              file=sys.stderr)
        trace = common.rm3d_reference_trace(args.cache_dir)

    for name in names:
        t0 = time.perf_counter()
        output = _run_one(name, trace)
        elapsed = time.perf_counter() - t0
        print(output)
        print(f"[{name} took {elapsed:.1f}s]\n", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
