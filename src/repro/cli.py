"""Command-line interface: ``python -m repro <verb> [...]``.

One argparse subcommand parser; every verb shares the same ``--json``
(document output), ``--seed`` (base seed) and ``--cache-dir`` (cache
root) options via a single parent parser, so they parse and document
identically everywhere:

``run`` — paper-fidelity experiments (reference trace, 64 procs)::

    python -m repro run table2          # instant
    python -m repro run table1 table3   # several at once
    python -m repro run all             # everything (several minutes)
    python -m repro table2              # legacy spelling, same as 'run'

``sweep`` — the parallel, cache-aware scenario sweep
(:mod:`repro.sweep`) over the registered set of experiments, ablations
and chaos configurations::

    python -m repro sweep                        # everything, serial
    python -m repro sweep --filter 'table*' --jobs 4
    python -m repro sweep --no-cache --json BENCH_sweep.json
    python -m repro sweep --list                 # show the registry

``report`` — the observed quickstart run (:mod:`repro.obs`)::

    python -m repro report                  # text run report
    python -m repro report --json out.json  # JSON document to a file

``chaos`` — seeded Poisson failure sweeps through the fault-tolerant
simulator (:mod:`repro.resilience.chaos`), exiting non-zero when a
recovery invariant is violated::

    python -m repro chaos
    python -m repro chaos --json out.json   # BENCH_chaos.json document
    python -m repro chaos --matrix          # gray-failure fault matrix
    python -m repro chaos --matrix --intensity low  # CI smoke subset

``trace`` — the traced quickstart run as Chrome trace-event JSON, loadable
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``::

    python -m repro trace                        # trace JSON to stdout
    python -m repro trace --json trace.json      # ... or to a file
    python -m repro trace --timeline tl.jsonl    # also dump the timeline

``serve`` — the long-running scenario-serving runtime
(:mod:`repro.serve`): bounded priority admission, request coalescing,
batched dispatch, explicit load shedding — speaking JSONL requests on
stdin, a file, or a local socket::

    echo '{"op": "submit", "scenario": "table2"}' | python -m repro serve
    python -m repro serve --requests jobs.jsonl --json summary.json
    python -m repro serve --socket /tmp/repro.sock --workers 4
    python -m repro serve --socket /tmp/repro.sock \\
        --snapshot telemetry.jsonl --flight-dump flight.jsonl

``top`` — a refreshing terminal dashboard over a running server's
socket (lane depths, throughput, dedup/cache reuse, latency quantiles,
SLO burn rates, the flight-recorder tail), driven by the server's
``stats-stream`` verb::

    python -m repro top --socket /tmp/repro.sock
    python -m repro top --socket /tmp/repro.sock --once   # one frame

``benchdiff`` — the bench regression gate: compare a current
``BENCH_*.json`` against a committed baseline and exit non-zero on
regression (:mod:`repro.obs.benchdiff`)::

    python -m repro benchdiff BENCH_obs.json /tmp/BENCH_obs.json
    python -m repro benchdiff base.json cur.json --rel-tol 0.05 --json -

``kernels-bench`` — deterministic op-level microbenchmarks of the
scalar/vector kernel pairs (:mod:`repro.kernels.bench`), exiting
non-zero when any pair's outputs disagree::

    python -m repro kernels-bench
    python -m repro kernels-bench --json BENCH_kernels.json

``execsim-bench`` — the execsim comm-cost kernel pair and the regrid
reuse cache (:mod:`repro.execsim.bench`), exiting non-zero when the
backends disagree::

    python -m repro execsim-bench
    python -m repro execsim-bench --json BENCH_execsim.json

The heavyweight experiments (table3/4/5, fig3/4) consume the reference
RM3D trace, generated once (~30 s) and cached under ``.cache/``; the
sweep uses the reduced CI-sized trace and caches results
content-addressed under ``.cache/sweep/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS

#: the subcommand verbs; anything else in argv[0] is a legacy experiment
#: spelling and is rewritten to ``run <argv...>``
VERBS = ("run", "sweep", "report", "chaos", "trace", "serve", "top",
         "simtest", "benchdiff", "kernels-bench", "execsim-bench")


def _emit(document, json_arg) -> None:
    """Write ``document`` as JSON to stdout (``-``) or a path."""
    from repro.obs.export import export_json

    if json_arg == "-":
        export_json(document, sys.stdout)
    else:
        export_json(document, json_arg)
        print(f"wrote {json_arg}", file=sys.stderr)


#: canonical help strings for the shared options — one source of truth so
#: every verb documents (and parses) them identically
SHARED_OPTION_HELP = {
    "--json": "emit the result as JSON to PATH ('-' or no value: stdout)",
    "--seed": "base seed for deterministic scenario seed derivation "
    "(default 0)",
    "--cache-dir": "cache root for shared traces and cached results "
    "(default: .cache/)",
}


def _common_parent() -> argparse.ArgumentParser:
    """The ``--json`` / ``--seed`` / ``--cache-dir`` options every verb
    shares — one parent parser, so help text, defaults and parsing are
    identical across ``run``/``sweep``/``chaos``/``report`` and friends.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=SHARED_OPTION_HELP["--json"],
    )
    parent.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help=SHARED_OPTION_HELP["--seed"],
    )
    parent.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=SHARED_OPTION_HELP["--cache-dir"],
    )
    return parent


def run_main(args: argparse.Namespace) -> int:
    """The ``run`` verb: paper-fidelity experiments -> tables/figures."""
    from repro.sweep.builtin import paper_scenario

    names = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    trace_needed = any(
        "trace" in paper_scenario(n).params for n in names
    )
    if trace_needed:
        print("loading reference RM3D trace (generated on first use) ...",
              file=sys.stderr)

    from pathlib import Path

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    documents = {}
    for name in names:
        scenario = paper_scenario(name)
        ctx = scenario.make_context(args.seed, cache_dir)
        t0 = time.perf_counter()
        result = scenario.run(ctx)
        elapsed = time.perf_counter() - t0
        documents[name] = result
        if args.json is None:
            print(scenario.render(result))
            print(f"[{name} took {elapsed:.1f}s]\n", file=sys.stderr)
    if args.json is not None:
        _emit({"experiments": documents}, args.json)
    return 0


def sweep_main(args: argparse.Namespace) -> int:
    """The ``sweep`` verb: parallel cache-aware scenario execution."""
    from repro.sweep import run_sweep
    from repro.sweep.runner import _import_scenario_modules

    if args.list:
        from repro.sweep.scenario import all_scenarios

        _import_scenario_modules(("repro.sweep.builtin",))
        for scenario in all_scenarios():
            tags = ",".join(sorted(scenario.tags)) or "-"
            print(f"{scenario.name:<24} [{tags:<16}] {scenario.description}")
        return 0

    result = run_sweep(
        args.filter,
        tags=tuple(args.tag),
        jobs=args.jobs,
        use_cache=not args.no_cache,
        base_seed=args.seed,
        cache_dir=args.cache_dir,
    )
    if not result.tasks:
        print(f"no registered scenario matches {args.filter!r}",
              file=sys.stderr)
        return 2
    if args.json is None:
        print(result.render())
    else:
        _emit(result.to_dict(), args.json)
    return 0 if result.ok else 1


def report_main(args: argparse.Namespace) -> int:
    """The ``report`` verb: observed quickstart run -> text or JSON."""
    from repro.obs.report import collect_run_report

    print("running the observed quickstart scenario ...", file=sys.stderr)
    report = collect_run_report(
        num_coarse_steps=args.steps,
        online_steps=args.online_steps,
        include_spans=args.spans,
    )
    if args.json is None:
        print(report.render())
    else:
        _emit(report.to_dict(), args.json)
    return 0


def chaos_main(args: argparse.Namespace) -> int:
    """The ``chaos`` verb: Poisson failure sweep -> text or JSON.

    Exits non-zero when any recovery invariant is violated, so the sweep
    doubles as a CI gate.  With ``--matrix`` it runs the gray-failure
    fault matrix (fault type × intensity) instead of the Poisson sweep.
    """
    from repro.resilience.chaos import ChaosConfig, render_chaos, run_chaos

    if args.matrix:
        from repro.resilience.chaos import (
            INTENSITIES,
            MatrixConfig,
            render_chaos_matrix,
            run_chaos_matrix,
        )

        intensities = (
            tuple(args.intensity) if args.intensity else INTENSITIES
        )
        config = MatrixConfig(
            num_procs=args.procs if args.procs is not None else 8,
            num_coarse_steps=args.steps if args.steps is not None else 48,
            intensities=intensities,
            seed=args.seed,
        )
        print("running the gray-failure chaos matrix ...", file=sys.stderr)
        result = run_chaos_matrix(config)
        if args.json is None:
            print(render_chaos_matrix(result))
        else:
            _emit(result, args.json)
        return 0 if result["aggregate"]["all_invariants_hold"] else 1

    seeds = args.seeds if args.seeds else [args.seed + k for k in range(3)]
    config = ChaosConfig(
        num_procs=args.procs if args.procs is not None else 16,
        num_coarse_steps=args.steps if args.steps is not None else 96,
        mtbf=args.mtbf,
        mttr=args.mttr,
        seeds=tuple(seeds),
        loss_rate=args.loss_rate,
    )
    print("running the chaos sweep ...", file=sys.stderr)
    result = run_chaos(config)
    if args.json is None:
        print(render_chaos(result))
    else:
        _emit(result, args.json)
    return 0 if result["aggregate"]["all_invariants_hold"] else 1


def trace_main(args: argparse.Namespace) -> int:
    """The ``trace`` verb: traced quickstart -> Chrome trace-event JSON."""
    from repro.obs.chrome import collect_trace

    print("running the traced quickstart scenario ...", file=sys.stderr)
    doc = collect_trace(
        num_coarse_steps=args.steps,
        online_steps=args.online_steps,
        timeline_jsonl=args.timeline,
    )
    _emit(doc, args.json if args.json is not None else "-")
    if args.timeline is not None:
        print(f"wrote {args.timeline}", file=sys.stderr)
    return 0


def benchdiff_main(args: argparse.Namespace) -> int:
    """The ``benchdiff`` verb: bench regression gate over two documents."""
    from repro.obs.benchdiff import diff_files

    diff = diff_files(
        args.baseline,
        args.current,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
    )
    if args.json is None:
        print(diff.render())
    else:
        _emit(diff.to_dict(), args.json)
    return 0 if diff.ok else 1


def kernels_bench_main(args: argparse.Namespace) -> int:
    """The ``kernels-bench`` verb: scalar/vector kernel microbenchmarks.

    Exits non-zero when any kernel pair's outputs disagree, so the bench
    doubles as a CI equivalence gate.
    """
    from repro.kernels.bench import (
        DEFAULT_SIZES,
        render_kernels_bench,
        run_kernels_bench,
    )

    print("running the kernels microbenchmark ...", file=sys.stderr)
    doc = run_kernels_bench(
        sizes=tuple(args.sizes) if args.sizes else DEFAULT_SIZES,
        procs=args.procs,
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.json is None:
        print(render_kernels_bench(doc))
    else:
        _emit(doc, args.json)
    return 0 if doc["gate"]["all_match"] else 1


def execsim_bench_main(args: argparse.Namespace) -> int:
    """The ``execsim-bench`` verb: comm-cost kernels and regrid reuse.

    Exits non-zero when the kernel backends disagree or the reuse cache
    diverges from full rebuilds, so the bench doubles as a CI
    equivalence gate.
    """
    from repro.execsim.bench import (
        DEFAULT_PAIR_COUNTS,
        render_execsim_bench,
        run_execsim_bench,
    )

    print("running the execsim benchmark ...", file=sys.stderr)
    doc = run_execsim_bench(
        pair_counts=(
            tuple(args.pairs) if args.pairs else DEFAULT_PAIR_COUNTS
        ),
        procs=args.procs,
        repeats=args.repeats,
        seed=args.seed,
    )
    if args.json is None:
        print(render_execsim_bench(doc))
    else:
        _emit(doc, args.json)
    return 0 if doc["gate"]["all_match"] else 1


def serve_main(args: argparse.Namespace) -> int:
    """The ``serve`` verb: the long-running scenario-serving runtime.

    Speaks the JSONL protocol (:mod:`repro.serve.protocol`) over stdin,
    a request file, or a local UNIX-domain socket.  Stream mode exits
    non-zero when any submitted job failed or timed out (shed requests
    are an explicit, successful refusal and do not fail the run).
    """
    from repro.config import LiveObsOptions
    from repro.serve import ScenarioServer
    from repro.serve.jsonl import run_requests, serve_socket

    live_obs = LiveObsOptions(
        enabled=not args.no_live_obs,
        snapshot_path=args.snapshot,
        snapshot_interval_s=args.snapshot_interval,
        flight_dump_path=args.flight_dump,
    )
    server = ScenarioServer(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        base_seed=args.seed,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        live_obs=live_obs,
    )
    try:
        if args.socket is not None:
            print(f"serving JSONL on {args.socket} "
                  "(send {\"op\": \"shutdown\"} to stop) ...",
                  file=sys.stderr)
            serve_socket(server, args.socket)
            summary = {"requests": 0, "by_status": {},
                       "stats": server.stats()}
        else:
            if args.requests is not None:
                with open(args.requests, encoding="utf-8") as fh:
                    lines = fh.readlines()
            else:
                lines = sys.stdin
            summary = run_requests(server, lines, sys.stdout)
    finally:
        server.shutdown()
    if args.json is not None:
        _emit(summary, args.json)
    by_status = summary.get("by_status", {})
    bad = by_status.get("failed", 0) + by_status.get("timeout", 0)
    return 1 if bad else 0


def top_main(args: argparse.Namespace) -> int:
    """The ``top`` verb: live dashboard over a running server's socket.

    Connects to the UNIX-domain socket of a ``serve --socket`` process,
    drives its ``stats-stream`` verb and renders each tick as one
    :func:`~repro.obs.live.render_dashboard` frame.  ``--once`` prints a
    single frame and exits (scripting/tests); otherwise frames refresh
    every ``--interval`` seconds until ``--count`` frames (or Ctrl-C).
    """
    import json
    import socket

    from repro.obs.live import render_dashboard
    from repro.serve.protocol import encode

    frames = 1 if args.once else args.count
    previous = None
    rendered = 0
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.connect(args.socket)
            fh = conn.makefile("rwb")
            while frames is None or rendered < frames:
                # one stats-stream request per chunk; the server paces the
                # ticks, the client renders each line as it arrives
                chunk = 30 if frames is None else frames - rendered
                fh.write((encode({
                    "op": "stats-stream",
                    "count": chunk,
                    "interval_s": args.interval if chunk > 1 else 0,
                    "flight_tail": args.flight_tail,
                }) + "\n").encode())
                fh.flush()
                for _ in range(chunk):
                    raw = fh.readline()
                    if not raw:
                        print("server closed the connection", file=sys.stderr)
                        return 1
                    tick = json.loads(raw)
                    if tick.get("op") == "error":
                        print(f"server error: {tick.get('error')}",
                              file=sys.stderr)
                        return 1
                    if not args.once and sys.stdout.isatty():
                        print("\x1b[2J\x1b[H", end="")
                    print(render_dashboard(tick, previous), flush=True)
                    previous = tick
                    rendered += 1
                if frames is None:
                    time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except OSError as exc:
        print(f"cannot reach server at {args.socket}: {exc}", file=sys.stderr)
        return 1
    return 0


def simtest_main(args: argparse.Namespace) -> int:
    """The ``simtest`` verb: deterministic simulation of the runtime.

    Sweeps seeds (``--seeds``, or a committed corpus via ``--corpus``),
    running the serving + resilience stack under a virtual clock and a
    seeded cooperative schedule; every run is executed twice and the
    trace digests compared, so nondeterminism is itself a failure.  On
    an invariant violation the workload is delta-debugged and a
    self-contained ``simtest-repro-<seed>.json`` lands in ``--out-dir``.
    ``--replay`` runs such a file back.  Exits 1 on any failure.
    """
    import json
    from pathlib import Path

    from repro.simtest import load_repro, replay_repro, run_simtest
    from repro.simtest.fuzzer import CORPUS_FORMAT

    if args.replay is not None:
        doc = load_repro(args.replay)
        report = replay_repro(doc)
        reproduced = any(
            v.invariant == doc.get("invariant") for v in report.violations
        )
        out = {
            "format": "simtest-replay-v1",
            "repro": str(args.replay),
            "seed": doc["seed"],
            "invariant": doc.get("invariant"),
            "reproduced": reproduced,
            "violations": [v.to_dict() for v in report.violations],
            "steps": report.steps,
            "digest": report.digest,
        }
        if args.json is not None:
            _emit(out, args.json)
        else:
            status = "reproduced" if reproduced else "NOT reproduced"
            print(f"simtest replay {args.replay}: {out['invariant']} "
                  f"{status} in {report.steps} steps")
            for violation in report.violations:
                print(f"  {violation.invariant}: {violation.detail}")
        return 0 if reproduced else 1

    if args.corpus is not None:
        corpus = json.loads(Path(args.corpus).read_text(encoding="utf-8"))
        if corpus.get("format") != CORPUS_FORMAT:
            print(f"{args.corpus}: not a {CORPUS_FORMAT} file",
                  file=sys.stderr)
            return 2
        seeds = [int(s) for s in corpus["seeds"]]
        ops = int(corpus.get("ops", args.ops))
    else:
        seeds = [args.seed + i for i in range(args.seeds)]
        ops = args.ops

    summary = run_simtest(seeds, ops=ops, out_dir=args.out_dir)
    if args.json is not None:
        _emit(summary, args.json)
    else:
        print(f"simtest: {summary['seeds']} seeds, "
              f"{summary['failures']} failures, "
              f"{summary['total_steps']} scheduling steps")
        for entry in summary["results"]:
            if entry["ok"]:
                continue
            first = entry["violations"][0]
            print(f"  seed {entry['seed']}: {first['invariant']} — "
                  f"{first['detail']}")
            if "repro" in entry:
                print(f"    repro: {entry['repro']}")
    return 0 if summary["failures"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """The single subcommand parser behind ``python -m repro``."""
    common = [_common_parent()]
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the Pragma paper "
        "(Parashar & Hariri, IPDPS 2002).",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_run = sub.add_parser(
        "run",
        parents=common,
        help="run paper-fidelity experiments (reference trace)",
        description="Run experiments at paper fidelity and print the "
        "corresponding tables/figures.",
    )
    p_run.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment(s) to run ('all' for everything)",
    )
    p_run.set_defaults(func=run_main)

    p_sweep = sub.add_parser(
        "sweep",
        parents=common,
        help="parallel cache-aware sweep over the registered scenarios",
        description="Run the registered scenario set (experiments, "
        "ablations, chaos configs) in parallel with content-addressed "
        "result caching.",
    )
    p_sweep.add_argument(
        "--filter", default=None, metavar="PATTERN",
        help="substring or glob over scenario names (default: all)",
    )
    p_sweep.add_argument(
        "--tag", action="append", default=[], metavar="TAG",
        help="restrict to scenarios carrying TAG (repeatable; AND)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial; results are "
        "bit-identical across job counts)",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true",
        help="skip cache reads and writes (always execute)",
    )
    p_sweep.add_argument(
        "--list", action="store_true",
        help="list the registered scenarios and exit",
    )
    p_sweep.set_defaults(func=sweep_main)

    p_report = sub.add_parser(
        "report",
        parents=common,
        help="observed quickstart run report",
        description="Run the quickstart scenario under the observability "
        "layer and report per-phase timings, partitioner switching and "
        "message-center traffic.",
    )
    p_report.add_argument(
        "--steps", type=int, default=160,
        help="coarse steps for the trace-replay runs (default 160)",
    )
    p_report.add_argument(
        "--online-steps", type=int, default=48,
        help="coarse steps for the event-driven online run (default 48; "
        "0 disables it)",
    )
    p_report.add_argument(
        "--spans", action="store_true",
        help="include individual span records in the JSON output",
    )
    p_report.set_defaults(func=report_main)

    p_chaos = sub.add_parser(
        "chaos",
        parents=common,
        help="Poisson failure sweep through the fault-tolerant simulator",
        description="Sweep seeded Poisson failure schedules through the "
        "fault-tolerant execution simulator and check the recovery "
        "invariants (no work lost, patches on live nodes, bounded "
        "recovery lag).",
    )
    p_chaos.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="failure-schedule seeds, one replay each "
        "(default: --seed, --seed+1, --seed+2)",
    )
    p_chaos.add_argument(
        "--steps", type=int, default=None,
        help="coarse steps per replay (default 96; 48 with --matrix)",
    )
    p_chaos.add_argument(
        "--procs", type=int, default=None,
        help="processors in the simulated cluster (default 16; 8 with "
        "--matrix)",
    )
    p_chaos.add_argument(
        "--matrix", action="store_true",
        help="run the gray-failure fault matrix (crash / degraded / "
        "flapping / partition / checkpoint x intensity) instead of the "
        "Poisson sweep",
    )
    p_chaos.add_argument(
        "--intensity", choices=("low", "high"), nargs="+", default=None,
        help="restrict --matrix to these intensities (default: both)",
    )
    p_chaos.add_argument(
        "--mtbf", type=float, default=300.0,
        help="per-node mean time between failures, seconds (default 300)",
    )
    p_chaos.add_argument(
        "--mttr", type=float, default=40.0,
        help="mean time to repair, seconds (default 40)",
    )
    p_chaos.add_argument(
        "--loss-rate", type=float, default=0.05,
        help="message-center loss rate for the agent soak (default 0.05; "
        "0 skips the soak)",
    )
    p_chaos.set_defaults(func=chaos_main)

    p_trace = sub.add_parser(
        "trace",
        parents=common,
        help="traced quickstart run as Chrome trace-event JSON",
        description="Run a reduced quickstart scenario under causal "
        "tracing and emit Chrome trace-event JSON (Perfetto-loadable): "
        "spans as complete events, message sends linked to their handlers "
        "via flow arrows.",
    )
    p_trace.add_argument(
        "--steps", type=int, default=48,
        help="coarse steps for the trace-replay run (default 48)",
    )
    p_trace.add_argument(
        "--online-steps", type=int, default=24,
        help="coarse steps for the event-driven online run (default 24; "
        "0 disables it)",
    )
    p_trace.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="also write the collection window's timeline as JSONL",
    )
    p_trace.set_defaults(func=trace_main)

    p_serve = sub.add_parser(
        "serve",
        parents=common,
        help="scenario-serving runtime speaking JSONL requests",
        description="Run the long-running scenario server: bounded "
        "priority admission, request coalescing on the sweep cache key, "
        "batched dispatch on a persistent worker pool, and explicit load "
        "shedding.  Requests are JSONL documents on stdin (default), a "
        "file, or a local socket.",
    )
    p_serve.add_argument(
        "--requests", default=None, metavar="FILE",
        help="read JSONL requests from FILE instead of stdin",
    )
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve JSONL connections on a UNIX-domain socket at PATH "
        "until a client sends {\"op\": \"shutdown\"}",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="persistent worker threads (default 2)",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="bounded admission queue depth; requests beyond it are "
        "shed with reason 'queue-full' (default 64)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=4, metavar="N",
        help="max compatible jobs dispatched per batch (default 4)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="skip result-cache reads and writes (always execute)",
    )
    p_serve.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="append one JSONL metrics snapshot to PATH every "
        "--snapshot-interval seconds",
    )
    p_serve.add_argument(
        "--snapshot-interval", type=float, default=5.0, metavar="S",
        help="seconds between periodic snapshots (default 5)",
    )
    p_serve.add_argument(
        "--flight-dump", default=None, metavar="PATH",
        help="dump the flight recorder (last serve events) to PATH as "
        "JSONL on shutdown",
    )
    p_serve.add_argument(
        "--no-live-obs", action="store_true",
        help="disable the live telemetry plane (flight recorder, SLO "
        "tracker, snapshot exporter); stats/metrics/health verbs still "
        "answer",
    )
    p_serve.set_defaults(func=serve_main)

    p_top = sub.add_parser(
        "top",
        parents=common,
        help="live dashboard over a running server's socket",
        description="Connect to a 'serve --socket' process and render a "
        "refreshing terminal dashboard from its stats-stream verb: lane "
        "depths, throughput, dedup/cache reuse, latency quantiles, SLO "
        "burn rates and the flight-recorder tail.",
    )
    p_top.add_argument(
        "--socket", required=True, metavar="PATH",
        help="UNIX-domain socket of the running server (required)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between dashboard refreshes (default 2)",
    )
    p_top.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="render N frames then exit (default: until Ctrl-C)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p_top.add_argument(
        "--flight-tail", type=int, default=8, metavar="N",
        help="flight-recorder events to show per frame (default 8)",
    )
    p_top.set_defaults(func=top_main)

    p_sim = sub.add_parser(
        "simtest",
        parents=common,
        help="deterministic simulation testing of the serving runtime",
        description="Run the serving + resilience stack under a virtual "
        "clock and a seeded cooperative scheduler: every interleaving is "
        "a pure function of one integer seed, invariants are checked "
        "after every scheduling step, each seed is run twice to prove "
        "determinism, and violations are minimized into self-contained "
        "simtest-repro-<seed>.json files.",
    )
    p_sim.add_argument(
        "--seeds", type=int, default=50, metavar="N",
        help="number of seeds to sweep, starting at --seed (default 50)",
    )
    p_sim.add_argument(
        "--ops", type=int, default=24, metavar="N",
        help="workload ops generated per seed before the trailing "
        "awaits (default 24)",
    )
    p_sim.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="run the seeds of a committed simtest-corpus-v1 JSON file "
        "instead of a --seeds range",
    )
    p_sim.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-run a simtest-repro-<seed>.json file's minimized "
        "script; exits 0 when the violation reproduces",
    )
    p_sim.add_argument(
        "--out-dir", default="simtest-repros", metavar="DIR",
        help="directory for repro files on failure "
        "(default: simtest-repros/)",
    )
    p_sim.set_defaults(func=simtest_main)

    p_diff = sub.add_parser(
        "benchdiff",
        parents=common,
        help="bench regression gate: compare two BENCH_*.json documents",
        description="Flatten two bench documents to dotted-path leaves "
        "and compare numeric leaves within per-metric tolerances; "
        "wall-clock-like metrics are ignored.  Exits 1 on regression or "
        "on metrics missing from the current document.",
    )
    p_diff.add_argument("baseline", help="committed baseline JSON document")
    p_diff.add_argument("current", help="freshly generated JSON document")
    p_diff.add_argument(
        "--rel-tol", type=float, default=0.01,
        help="default relative tolerance per numeric leaf (default 0.01)",
    )
    p_diff.add_argument(
        "--abs-tol", type=float, default=1e-6,
        help="absolute tolerance floor for near-zero leaves (default 1e-6)",
    )
    p_diff.set_defaults(func=benchdiff_main)

    p_kb = sub.add_parser(
        "kernels-bench",
        parents=common,
        help="microbenchmark the scalar/vector kernel pairs",
        description="Time each partitioning kernel pair (scalar reference "
        "vs vectorized) on seeded synthetic inputs and verify their "
        "outputs agree; JSON output is the BENCH_kernels.json document.",
    )
    p_kb.add_argument(
        "--sizes", type=int, nargs="+", default=None, metavar="N",
        help="unit counts for the sequence kernels "
        "(default: 1000 10000 100000)",
    )
    p_kb.add_argument(
        "--procs", type=int, default=64,
        help="processors to partition across (default 64)",
    )
    p_kb.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per kernel, best-of (default 3)",
    )
    p_kb.set_defaults(func=kernels_bench_main)

    p_eb = sub.add_parser(
        "execsim-bench",
        parents=common,
        help="benchmark the execsim cost kernel and regrid reuse cache",
        description="Time the comm-cost kernel pair on synthetic "
        "adjacency problems, replay the regrid reuse cache over the "
        "RM3D and a localized trace, and verify every path matches the "
        "scalar/full-recompute reference; JSON output is the "
        "BENCH_execsim.json document.",
    )
    p_eb.add_argument(
        "--pairs", type=int, nargs="+", default=None, metavar="N",
        help="adjacency-pair counts for the cost kernel "
        "(default: 1000 10000 100000)",
    )
    p_eb.add_argument(
        "--procs", type=int, default=64,
        help="processors the synthetic assignments scatter over "
        "(default 64)",
    )
    p_eb.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per case, best-of (default 3)",
    )
    p_eb.set_defaults(func=execsim_bench_main)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    Legacy spellings without a verb (``python -m repro table2``) are
    rewritten to the ``run`` verb.
    """
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] not in VERBS and not argv[0].startswith("-"):
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verb == "report":
        if args.steps < 1:
            parser.error(f"--steps must be >= 1, got {args.steps}")
        if args.online_steps < 0:
            parser.error(
                f"--online-steps must be >= 0, got {args.online_steps}"
            )
    if args.verb == "sweep" and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.verb == "serve":
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        if args.queue_capacity < 1:
            parser.error(
                f"--queue-capacity must be >= 1, got {args.queue_capacity}"
            )
        if args.max_batch < 1:
            parser.error(f"--max-batch must be >= 1, got {args.max_batch}")
        if args.requests is not None and args.socket is not None:
            parser.error("--requests and --socket are mutually exclusive")
        if args.snapshot_interval <= 0:
            parser.error(
                f"--snapshot-interval must be > 0, got {args.snapshot_interval}"
            )
    if args.verb == "top":
        if args.interval <= 0:
            parser.error(f"--interval must be > 0, got {args.interval}")
        if args.count is not None and args.count < 1:
            parser.error(f"--count must be >= 1, got {args.count}")
        if args.flight_tail < 0:
            parser.error(f"--flight-tail must be >= 0, got {args.flight_tail}")
    if args.verb == "trace":
        if args.steps < 1:
            parser.error(f"--steps must be >= 1, got {args.steps}")
        if args.online_steps < 0:
            parser.error(
                f"--online-steps must be >= 0, got {args.online_steps}"
            )
    if args.verb == "kernels-bench":
        if args.sizes and any(n < 1 for n in args.sizes):
            parser.error(f"--sizes must all be >= 1, got {args.sizes}")
        if args.procs < 1:
            parser.error(f"--procs must be >= 1, got {args.procs}")
        if args.repeats < 1:
            parser.error(f"--repeats must be >= 1, got {args.repeats}")
    if args.verb == "simtest":
        if args.seeds < 1:
            parser.error(f"--seeds must be >= 1, got {args.seeds}")
        if args.ops < 1:
            parser.error(f"--ops must be >= 1, got {args.ops}")
        if args.corpus is not None and args.replay is not None:
            parser.error("--corpus and --replay are mutually exclusive")
    if args.verb == "benchdiff":
        if args.rel_tol < 0:
            parser.error(f"--rel-tol must be >= 0, got {args.rel_tol}")
        if args.abs_tol < 0:
            parser.error(f"--abs-tol must be >= 0, got {args.abs_tol}")
    try:
        return args.func(args)
    except ValueError as exc:
        parser.error(str(exc))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
