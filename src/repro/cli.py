"""Command-line interface: ``python -m repro <experiment> [...]``.

Runs any of the paper's reproduction experiments and prints the
corresponding table or figure, e.g.::

    python -m repro table2          # instant
    python -m repro table1 table3   # several at once
    python -m repro all             # everything (several minutes)

The heavyweight experiments (table3/4/5, fig3) consume the reference RM3D
trace, generated once (~30 s) and cached under ``.cache/``.

There is also an observability verb::

    python -m repro report                  # text run report
    python -m repro report --json           # JSON document on stdout
    python -m repro report --json out.json  # JSON document to a file

which drives the quickstart scenario under the metrics/tracing layer
(:mod:`repro.obs`) and summarizes where time goes.

And a chaos verb::

    python -m repro chaos                   # text chaos-sweep summary
    python -m repro chaos --json out.json   # BENCH_chaos.json document

which sweeps seeded Poisson failure schedules through the fault-tolerant
execution simulator (:mod:`repro.resilience.chaos`) and checks the
recovery invariants.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, common

#: experiments that consume the reference RM3D trace
_TRACE_EXPERIMENTS = {"table3", "table4", "table5", "fig3", "fig4"}


def _run_one(name: str, trace) -> str:
    module = EXPERIMENTS[name]
    if name in _TRACE_EXPERIMENTS:
        result = module.run(trace)
    else:
        result = module.run()
    return module.render(result)


def report_main(argv: list[str]) -> int:
    """The ``report`` verb: observed quickstart run -> text or JSON."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Run the quickstart scenario under the observability "
        "layer and report per-phase timings, partitioner switching and "
        "message-center traffic.",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the report as JSON to PATH ('-' or no value: stdout)",
    )
    parser.add_argument(
        "--steps", type=int, default=160,
        help="coarse steps for the trace-replay runs (default 160)",
    )
    parser.add_argument(
        "--online-steps", type=int, default=48,
        help="coarse steps for the event-driven online run (default 48; "
        "0 disables it)",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="include individual span records in the JSON output",
    )
    args = parser.parse_args(argv)
    if args.steps < 1:
        parser.error(f"--steps must be >= 1, got {args.steps}")
    if args.online_steps < 0:
        parser.error(f"--online-steps must be >= 0, got {args.online_steps}")

    from repro.obs.export import export_json
    from repro.obs.report import collect_run_report

    print("running the observed quickstart scenario ...", file=sys.stderr)
    report = collect_run_report(
        num_coarse_steps=args.steps,
        online_steps=args.online_steps,
        include_spans=args.spans,
    )
    if args.json is None:
        print(report.render())
    elif args.json == "-":
        export_json(report.to_dict(), sys.stdout)
    else:
        export_json(report.to_dict(), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def chaos_main(argv: list[str]) -> int:
    """The ``chaos`` verb: Poisson failure sweep -> text or JSON.

    Exits non-zero when any recovery invariant is violated, so the sweep
    doubles as a CI gate.
    """
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Sweep seeded Poisson failure schedules through the "
        "fault-tolerant execution simulator and check the recovery "
        "invariants (no work lost, patches on live nodes, bounded "
        "recovery lag).",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the result as JSON to PATH ('-' or no value: stdout)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="failure-schedule seeds, one replay each (default: 0 1 2)",
    )
    parser.add_argument(
        "--steps", type=int, default=96,
        help="coarse steps per replay (default 96)",
    )
    parser.add_argument(
        "--procs", type=int, default=16,
        help="processors in the simulated cluster (default 16)",
    )
    parser.add_argument(
        "--mtbf", type=float, default=300.0,
        help="per-node mean time between failures, seconds (default 300)",
    )
    parser.add_argument(
        "--mttr", type=float, default=40.0,
        help="mean time to repair, seconds (default 40)",
    )
    parser.add_argument(
        "--loss-rate", type=float, default=0.05,
        help="message-center loss rate for the agent soak (default 0.05; "
        "0 skips the soak)",
    )
    args = parser.parse_args(argv)

    from repro.obs.export import export_json
    from repro.resilience.chaos import ChaosConfig, render_chaos, run_chaos

    try:
        config = ChaosConfig(
            num_procs=args.procs,
            num_coarse_steps=args.steps,
            mtbf=args.mtbf,
            mttr=args.mttr,
            seeds=tuple(args.seeds),
            loss_rate=args.loss_rate,
        )
    except ValueError as exc:
        parser.error(str(exc))

    print("running the chaos sweep ...", file=sys.stderr)
    result = run_chaos(config)
    if args.json is None:
        print(render_chaos(result))
    elif args.json == "-":
        export_json(result, sys.stdout)
    else:
        export_json(result, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0 if result["aggregate"]["all_invariants_hold"] else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of the Pragma paper "
        "(Parashar & Hariri, IPDPS 2002).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment(s) to run ('all' for everything)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the cached reference trace (default: .cache/)",
    )
    args = parser.parse_args(argv)

    names = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    trace = None
    if any(n in _TRACE_EXPERIMENTS for n in names):
        print("loading reference RM3D trace (generated on first use) ...",
              file=sys.stderr)
        trace = common.rm3d_reference_trace(args.cache_dir)

    for name in names:
        t0 = time.perf_counter()
        output = _run_one(name, trace)
        elapsed = time.perf_counter() - t0
        print(output)
        print(f"[{name} took {elapsed:.1f}s]\n", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
