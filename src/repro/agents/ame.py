"""The Application Management Editor (AME).

"The Application Management Editor (AME) tool provides application
developers with the services required for specifying and characterizing
application requirements in terms of performance, fault-tolerance and
security, and for specifying the appropriate management scheme."

The :class:`ManagementEditor` is a small builder producing an
:class:`ApplicationSpec` that the MCS consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ApplicationSpec", "ManagementEditor"]


@dataclass(frozen=True, slots=True)
class ApplicationSpec:
    """A characterized application ready for environment construction."""

    name: str
    components: tuple[str, ...]
    work_per_component: Mapping[str, float]
    requirements: Mapping[str, float]
    management: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("application needs at least one component")
        missing = [c for c in self.components if c not in self.work_per_component]
        if missing:
            raise ValueError(f"components missing work estimates: {missing}")
        bad = {c: w for c, w in self.work_per_component.items() if w <= 0}
        if bad:
            raise ValueError(f"non-positive work estimates: {bad}")


class ManagementEditor:
    """Builder for :class:`ApplicationSpec`."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("application name must be non-empty")
        self._name = name
        self._components: dict[str, float] = {}
        self._requirements: dict[str, float] = {}
        self._management: dict[str, str] = {}

    def add_component(self, name: str, work: float) -> "ManagementEditor":
        """Declare one application task and its work estimate."""
        if name in self._components:
            raise ValueError(f"component {name!r} already declared")
        if work <= 0:
            raise ValueError(f"work must be positive, got {work}")
        self._components[name] = work
        return self

    def require(self, attribute: str, level: float) -> "ManagementEditor":
        """Declare a requirement (performance / fault_tolerance / security)."""
        if level < 0:
            raise ValueError(f"requirement level must be >= 0, got {level}")
        self._requirements[attribute] = level
        return self

    def manage(self, attribute: str, scheme: str) -> "ManagementEditor":
        """Pin a management scheme for an attribute (optional)."""
        self._management[attribute] = scheme
        return self

    def build(self) -> ApplicationSpec:
        """Produce the immutable spec."""
        return ApplicationSpec(
            name=self._name,
            components=tuple(self._components),
            work_per_component=dict(self._components),
            requirements=dict(self._requirements),
            management=dict(self._management),
        )
