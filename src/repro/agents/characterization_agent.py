"""Agent-based automatic application characterization.

Section 4.5: "The application characterization presented in this paper
was performed manually.  However, we are currently developing agent-based
mechanisms for automatically performing the characterization at
run-time."  And Section 4.7: "a local agent is used to generate events
when the load reaches a certain threshold - this event can then trigger
repartitioning."

The :class:`CharacterizationAgent` implements both: it observes the grid
hierarchy at each regrid step, classifies it into an octant (keeping the
previous footprint for the dynamics axis), publishes octant transitions
and load-threshold events to the Message Center, and answers queries with
the current application state.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.agents.message_center import MessageCenter
from repro.amr.hierarchy import GridHierarchy
from repro.policy.octant import (
    AppSignals,
    Octant,
    OctantThresholds,
    classify_hierarchy,
)

__all__ = ["CharacterizationAgent", "CharacterizationEvent"]


@dataclass(frozen=True, slots=True)
class CharacterizationEvent:
    """One published characterization event."""

    step: int
    topic: str
    octant: Octant
    signals: AppSignals


class CharacterizationAgent:
    """Classifies application state online and publishes transitions.

    Topics published on the message center:

    - ``app-state`` — every observation (octant + raw signals),
    - ``octant-transition`` — when the octant changed since the last
      regrid (the repartition trigger for the meta-partitioner),
    - ``load-threshold`` — when the hierarchy load jumped by more than
      ``load_jump_fraction`` between regrids (Section 4.7's example
      trigger).
    """

    def __init__(
        self,
        message_center: MessageCenter,
        *,
        thresholds: OctantThresholds | None = None,
        load_jump_fraction: float = 0.25,
        port_name: str = "characterization",
    ) -> None:
        if load_jump_fraction <= 0:
            raise ValueError(
                f"load_jump_fraction must be positive, got {load_jump_fraction}"
            )
        self.mc = message_center
        self.thresholds = thresholds or OctantThresholds()
        self.load_jump_fraction = load_jump_fraction
        self.port = self.mc.register(port_name)
        self._previous: GridHierarchy | None = None
        self._previous_octant: Octant | None = None
        self._previous_load: float | None = None
        self.history: list[CharacterizationEvent] = []

    @property
    def current_octant(self) -> Octant | None:
        """Most recently observed octant (``None`` before any observation)."""
        return self._previous_octant

    def observe(self, step: int, hierarchy: GridHierarchy) -> Octant:
        """Characterize the hierarchy at a regrid step; publish events."""
        octant, signals = classify_hierarchy(
            hierarchy, self._previous, self.thresholds
        )
        self._publish(step, "app-state", octant, signals)

        if self._previous_octant is not None and octant is not self._previous_octant:
            self._publish(step, "octant-transition", octant, signals)

        load = hierarchy.load_per_coarse_step()
        if self._previous_load is not None and self._previous_load > 0:
            jump = abs(load - self._previous_load) / self._previous_load
            if jump > self.load_jump_fraction:
                self._publish(step, "load-threshold", octant, signals)

        self._previous = hierarchy
        self._previous_octant = octant
        self._previous_load = load
        return octant

    def _publish(
        self, step: int, topic: str, octant: Octant, signals: AppSignals
    ) -> None:
        event = CharacterizationEvent(
            step=step, topic=topic, octant=octant, signals=signals
        )
        self.history.append(event)
        self.mc.publish(
            self.port.name,
            topic,
            {
                "step": step,
                "octant": octant.value,
                "num_components": signals.num_components,
                "spread": signals.spread,
                "activity": signals.activity,
                "comm_ratio": signals.comm_ratio,
            },
            time=float(step),
        )
