"""Component Agents (CAs).

"For each task/component in the application, the ADM launches an
appropriate Component Agent (CA) to monitor execution using appropriate
component sensors.  The CA intervenes whenever component execution on the
assigned machine cannot meet its requirements using component actuators."

A CA is *autonomous* for local decisions (Section 4.7): it monitors its
sensors each tick, publishes threshold events to the message center, and
applies local actuation (e.g. requesting migration off a failed node) —
but complies with ADM directives arriving on its mailbox.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.agents.actuators import (
    CheckpointActuator,
    ComponentActuator,
    MigrateActuator,
    ResumeActuator,
    SuspendActuator,
)
from repro.agents.component import ComponentState, ManagedComponent
from repro.agents.message_center import MessageCenter
from repro.agents.messages import Message
from repro.agents.sensors import (
    ComponentSensor,
    ProgressSensor,
    StateSensor,
    ThroughputSensor,
)

__all__ = ["Requirement", "ComponentAgent"]


@dataclass(frozen=True, slots=True)
class Requirement:
    """A maintained constraint on one sensor: value must stay >= threshold."""

    sensor: str
    min_value: float

    def violated(self, value: float) -> bool:
        """True when the measured value breaks the requirement."""
        return value < self.min_value


class ComponentAgent:
    """Monitors one component and keeps its requirements satisfied."""

    def __init__(
        self,
        component: ManagedComponent,
        message_center: MessageCenter,
        requirements: list[Requirement] | None = None,
        adm_port: str = "adm",
        checkpoint_period: float = 10.0,
    ) -> None:
        self.component = component
        self.mc = message_center
        self.requirements = requirements or []
        self.adm_port = adm_port
        self.checkpoint_period = checkpoint_period
        self.port = self.mc.register(f"ca.{component.name}")
        self.sensors: dict[str, ComponentSensor] = {
            s.name: s
            for s in (
                ThroughputSensor(component),
                ProgressSensor(component),
                StateSensor(component),
            )
        }
        self.actuators: dict[str, ComponentActuator] = {
            a.name: a
            for a in (
                SuspendActuator(component),
                ResumeActuator(component),
                CheckpointActuator(component),
                MigrateActuator(component),
            )
        }
        self._last_checkpoint = 0.0
        self.events_published = 0
        self.actions_taken: list[tuple[float, str]] = []

    def interrogate(self, t: float) -> dict[str, float]:
        """Read every sensor (the runtime-interrogation interface)."""
        return {name: s.read(t) for name, s in self.sensors.items()}

    def tick(self, t: float) -> None:
        """One management cycle: obey ADM, checkpoint, monitor, escalate."""
        self._process_directives(t)
        self._periodic_checkpoint(t)
        readings = self.interrogate(t)

        if self.component.state is ComponentState.FAILED:
            self._publish(t, "component-failed", readings)
            return

        for req in self.requirements:
            value = readings.get(req.sensor)
            if value is not None and req.violated(value):
                self._publish(
                    t,
                    f"requirement-violated.{req.sensor}",
                    {**readings, "threshold": req.min_value},
                )

    # -- internals ---------------------------------------------------------------

    def _process_directives(self, t: float) -> None:
        while (msg := self.mc.receive(self.port.name)) is not None:
            if msg.topic == "actuate":
                with obs.handler_span("ca.handle", msg, topic=msg.topic):
                    name = msg.payload["actuator"]
                    kwargs = dict(msg.payload.get("kwargs", {}))
                    ok = self.actuators[name].actuate(t, **kwargs)
                    self.actions_taken.append((t, name))
                    self.mc.send(
                        Message(
                            sender=self.port.name,
                            dest=msg.sender,
                            topic="actuate-ack",
                            payload={"actuator": name, "ok": ok},
                            time=t,
                        )
                    )

    def _periodic_checkpoint(self, t: float) -> None:
        if t - self._last_checkpoint >= self.checkpoint_period:
            if self.actuators["checkpoint"].actuate(t):
                self._last_checkpoint = t
                self.actions_taken.append((t, "checkpoint"))

    def _publish(self, t: float, topic: str, payload: dict) -> None:
        self.mc.publish(
            self.port.name,
            topic,
            {"component": self.component.name, "node": self.component.node_id,
             **payload},
            time=t,
        )
        self.events_published += 1
