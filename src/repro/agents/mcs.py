"""The Management Computing System (MCS).

"The next step utilizes the management services provided by the Management
Computing System (MCS) to build the appropriate application execution
environment that can dynamically control the allocated resources to
maintain application requirements during its execution."

:meth:`ManagementComputingSystem.build_environment` performs the Figure 1
pipeline: spec → template discovery → ADM assignment → CA launch.  The
resulting :class:`ExecutionEnvironment` is stepped with :meth:`run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.adm import ApplicationDelegatedManager
from repro.agents.ame import ApplicationSpec
from repro.agents.component import ComponentState, ManagedComponent
from repro.agents.component_agent import ComponentAgent, Requirement
from repro.agents.message_center import DeliveryPolicy, MessageCenter
from repro.agents.templates import Template, TemplateRegistry, builtin_templates
from repro.gridsys.cluster import Cluster
from repro.monitoring.monitor import ResourceMonitor

__all__ = ["ExecutionEnvironment", "ManagementComputingSystem"]


@dataclass(slots=True)
class ExecutionEnvironment:
    """A built application execution environment, ready to run."""

    spec: ApplicationSpec
    template: Template
    cluster: Cluster
    message_center: MessageCenter
    adm: ApplicationDelegatedManager
    components: list[ManagedComponent]
    agents: list[ComponentAgent]
    monitor: ResourceMonitor | None = None
    time: float = 0.0
    history: list[dict] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """True once every component finished its work."""
        return all(c.state is ComponentState.DONE for c in self.components)

    def run(self, duration: float, dt: float = 1.0) -> float:
        """Advance the environment; returns the simulation time reached.

        Each tick: monitor samples (if attached), components execute, CAs
        manage locally, the ADM consolidates.  Stops early when all
        components are done.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        end = self.time + duration
        while self.time < end and not self.done:
            t = self.time
            if self.monitor is not None:
                self.monitor.sample(t)
            for comp in self.components:
                comp.advance(t, dt)
            for agent in self.agents:
                agent.tick(t)
            self.adm.tick(t)
            self.history.append(
                {
                    "t": t,
                    "progress": sum(c.progress for c in self.components),
                    "states": [c.state.value for c in self.components],
                    "nodes": [c.node_id for c in self.components],
                }
            )
            self.time += dt
        return self.time


class ManagementComputingSystem:
    """Builds execution environments from specs and templates."""

    def __init__(
        self,
        cluster: Cluster,
        registry: TemplateRegistry | None = None,
        monitor: ResourceMonitor | None = None,
        delivery_policy: DeliveryPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.registry = registry or builtin_templates()
        self.monitor = monitor
        self.delivery_policy = delivery_policy

    def build_environment(self, spec: ApplicationSpec) -> ExecutionEnvironment:
        """Figure 1 pipeline: discover template, assign ADM, launch CAs."""
        matches = self.registry.discover(spec.requirements)
        if not matches:
            raise LookupError(
                f"no template satisfies requirements {dict(spec.requirements)}"
            )
        template = matches[0]
        bp = template.blueprint

        mc = MessageCenter(policy=self.delivery_policy)
        adm = ApplicationDelegatedManager(
            message_center=mc,
            cluster=self.cluster,
            monitor=self.monitor,
            attribute="performance",
        )

        components: list[ManagedComponent] = []
        agents: list[ComponentAgent] = []
        # Initial placement: round-robin over the fastest nodes.
        order = np.argsort(-self.cluster.speeds(), kind="stable")
        min_frac = float(bp.get("min_throughput_fraction", 0.0))
        top_speed = float(self.cluster.speeds().max())
        for i, name in enumerate(spec.components):
            node = int(order[i % self.cluster.num_nodes])
            comp = ManagedComponent(
                name=name,
                cluster=self.cluster,
                node_id=node,
                total_work=float(spec.work_per_component[name]),
            )
            reqs = [Requirement(sensor="healthy", min_value=0.5)]
            if min_frac > 0:
                reqs.append(
                    Requirement(
                        sensor="throughput", min_value=min_frac * top_speed
                    )
                )
            agent = ComponentAgent(
                component=comp,
                message_center=mc,
                requirements=reqs,
                checkpoint_period=float(bp.get("checkpoint_period", 10.0)),
            )
            adm.launch_agent(agent)
            components.append(comp)
            agents.append(agent)

        return ExecutionEnvironment(
            spec=spec,
            template=template,
            cluster=self.cluster,
            message_center=mc,
            adm=adm,
            components=components,
            agents=agents,
            monitor=self.monitor,
        )
