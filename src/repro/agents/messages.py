"""Messages exchanged through the Message Center."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Message"]

_sequence = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """One message: sender port name → destination port name.

    ``topic`` routes published events (e.g. ``"load-threshold"``);
    ``payload`` is an arbitrary mapping.  ``seq`` totally orders messages
    within a run, which keeps the agent system deterministic.
    """

    sender: str
    dest: str
    topic: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    time: float = 0.0
    seq: int = field(default_factory=lambda: next(_sequence))
    #: causal flow id stamped by the message center at send time (trace
    #: viewers link the send span to the handler span through it)
    trace_ctx: int | None = None

    def __post_init__(self) -> None:
        if not self.topic:
            raise ValueError("message topic must be non-empty")
