"""The CATALINA Message Center.

"CATALINA uses a Message Center (MC) for all the communications between
its modules and agents.  In the MC, every component is assigned a port
which acts as its mailbox.  Every message directed to a component is
placed on this mailbox."

This implementation adds publish/subscribe on topics — the paper's agents
"publish" local state to the message center so every agent has "direct and
immediate access to all relevant information" (Section 4.7).

Delivery is resilient: a :class:`DeliveryPolicy` can model lossy links
(seeded, deterministic), per-send timeouts, bounded exponential-backoff
retries (optionally with deterministic full jitter), and duplicate
delivery.  Undeliverable messages — unknown destination, timeout, retry
exhaustion, or a network partition severing sender from destination —
land on a dead-letter queue instead of raising, so one misaddressed
message cannot take down the control network.  Each port suppresses
re-deliveries of a message id it has already accepted (a bounded
per-port dedup window), which is what makes retry- and duplicate-prone
links safe for handlers that are only idempotent per message.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.agents.messages import Message
from repro.gridsys.failures import NetworkPartition

__all__ = ["DeadLetter", "DeliveryPolicy", "Port", "MessageCenter"]

#: per-port count of recent message ids remembered for duplicate
#: suppression; ids older than the window can in principle be delivered
#: twice, but seqs are monotonic so a realistic retry horizon is far
#: shorter than this
DEDUP_WINDOW = 1024


@dataclass(slots=True)
class Port:
    """A named mailbox with a bounded duplicate-suppression window."""

    name: str
    mailbox: deque = field(default_factory=deque)
    #: message seqs already accepted (bounded by :data:`DEDUP_WINDOW`)
    seen: set = field(default_factory=set)
    seen_order: deque = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.mailbox)


@dataclass(frozen=True, slots=True)
class DeliveryPolicy:
    """Link-quality and retry knobs for point-to-point delivery.

    The default policy is a perfect link: no loss, no retries needed, no
    timeout.  ``loss_rate`` drops each delivery attempt independently
    (seeded — runs are reproducible); a dropped attempt is retried up to
    ``max_retries`` times with capped exponential backoff.  The summed
    backoff is simulated seconds, charged against ``send_timeout`` when
    one is set.
    """

    #: probability a single delivery attempt is lost
    loss_rate: float = 0.0
    #: retries after the first attempt before dead-lettering
    max_retries: int = 3
    #: backoff before the first retry (simulated seconds)
    backoff_base: float = 0.05
    #: multiplier applied per retry
    backoff_factor: float = 2.0
    #: upper bound on a single backoff wait
    backoff_cap: float = 2.0
    #: total simulated seconds a send may spend retrying (None = unbounded)
    send_timeout: float | None = None
    #: seed for the loss process
    seed: int = 0
    #: probability a delivered message is delivered a second time (the
    #: classic at-least-once artifact; the receiving port's dedup window
    #: suppresses the copy)
    duplicate_rate: float = 0.0
    #: full-jitter backoff: each wait is drawn uniformly from [0, capped
    #: backoff), seeded per (policy seed, message seq, retry) so runs
    #: stay deterministic.  Off by default — the un-jittered ladder is
    #: byte-identical to prior releases.
    backoff_jitter: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1), got {self.duplicate_rate}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.send_timeout is not None and self.send_timeout <= 0:
            raise ValueError(f"send_timeout must be > 0, got {self.send_timeout}")

    def backoff(self, retry: int, key: int | None = None) -> float:
        """Backoff before the ``retry``-th retry (0-based), capped.

        With ``backoff_jitter`` and a ``key`` (the message seq), returns
        a full-jitter wait: uniform in [0, capped ladder value), drawn
        from a generator seeded by ``(seed, key, retry)`` — the same
        message retrying the same attempt always waits the same time, but
        distinct messages desynchronize instead of thundering together.
        """
        bound = min(self.backoff_base * self.backoff_factor**retry, self.backoff_cap)
        if not self.backoff_jitter or key is None:
            return bound
        mix = (self.seed * 1_000_003 + key) * 1_000_003 + retry
        return bound * random.Random(mix).random()


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """A message the center could not deliver, and why."""

    message: Message
    #: "unregistered-destination", "timeout", "max-retries", or "partitioned"
    reason: str
    #: message timestamp at the time of failure
    time: float
    #: delivery attempts made (0 for an unknown destination)
    attempts: int


#: default bound on the dead-letter queue.  An unconsumed queue on a
#: sustained-lossy link previously grew without limit — a slow memory
#: leak in any long-running control network that never drains it.
DEAD_LETTER_CAPACITY = 4096


class MessageCenter:
    """Port registry, point-to-point delivery, and topic pub/sub."""

    def __init__(
        self,
        policy: DeliveryPolicy | None = None,
        *,
        dead_letter_capacity: int = DEAD_LETTER_CAPACITY,
    ) -> None:
        if dead_letter_capacity < 1:
            raise ValueError(
                f"dead_letter_capacity must be >= 1, got {dead_letter_capacity}"
            )
        self.policy = policy or DeliveryPolicy()
        self._rng = random.Random(self.policy.seed)
        self._ports: dict[str, Port] = {}
        self._subscriptions: dict[str, set[str]] = {}
        self._members: dict[str, object] = {}
        self._partitions: list[NetworkPartition] = []
        self._delivered = 0
        self._retries = 0
        self._duplicates_suppressed = 0
        #: bounded: oldest entries are evicted (and counted in
        #: :attr:`dead_letters_dropped`) once the capacity is reached
        self.dead_letters: deque[DeadLetter] = deque(
            maxlen=dead_letter_capacity
        )
        self.dead_letters_dropped = 0

    # -- ports ------------------------------------------------------------------

    def register(self, name: str) -> Port:
        """Create the mailbox for a component/agent; names are unique."""
        if not name:
            raise ValueError("port name must be non-empty")
        if name in self._ports:
            raise ValueError(f"port {name!r} already registered")
        port = Port(name=name)
        self._ports[name] = port
        return port

    def unregister(self, name: str) -> None:
        """Remove a mailbox and all its subscriptions.

        Topics whose subscriber set becomes empty are pruned, so
        long-lived agent networks with churning membership don't grow the
        subscription table unboundedly.
        """
        if name not in self._ports:
            raise KeyError(f"no port named {name!r}")
        del self._ports[name]
        for topic in list(self._subscriptions):
            subscribers = self._subscriptions[topic]
            subscribers.discard(name)
            if not subscribers:
                del self._subscriptions[topic]

    def has_port(self, name: str) -> bool:
        """True if a mailbox exists for ``name``."""
        return name in self._ports

    # -- network partitions --------------------------------------------------------

    def bind_port(self, name: str, member) -> None:
        """Place a port on a partition-group member (a node id or label).

        Partition checks apply only between *bound* ports; unbound ports
        (most tests, loopback agents) are never severed.
        """
        if name not in self._ports:
            raise KeyError(f"no port named {name!r}")
        self._members[name] = member

    def inject_partition(self, partition: NetworkPartition) -> None:
        """Sever deliveries across the partition's cut while it is active.

        Sends between bound ports whose members sit in different groups
        during the partition window dead-letter with reason
        ``"partitioned"`` — retries cannot cross a cut, so the loss/retry
        machinery is bypassed entirely.
        """
        self._partitions.append(partition)

    def heal_partitions(self) -> None:
        """Drop every injected partition (the cut is repaired)."""
        self._partitions.clear()

    def _severed(self, message: Message) -> bool:
        if not self._partitions:
            return False
        a = self._members.get(message.sender)
        b = self._members.get(message.dest)
        if a is None or b is None or a == b:
            return False
        return any(p.severed(a, b, message.time) for p in self._partitions)

    # -- point-to-point -----------------------------------------------------------

    def send(self, message: Message) -> bool:
        """Deliver a message to the destination's mailbox.

        Returns ``True`` on delivery.  A message that cannot be delivered
        — unknown destination, retry budget exhausted on a lossy link, or
        per-send timeout exceeded — is appended to :attr:`dead_letters`
        with a reason, and ``False`` is returned.  Sending never raises:
        the control network must survive a misaddressed message (e.g. a
        migration order for a component that just deregistered).

        When tracing is enabled the send runs inside an ``mc.send`` span
        and the message is stamped with a fresh causal flow id
        (``trace_ctx``); the handler that later consumes the message
        closes the flow, linking the two spans in trace exports.
        """
        tracer = obs.get_tracer()
        if not tracer.enabled:
            return self._send_inner(message)
        if message.trace_ctx is None:
            # Message is frozen + slotted; the flow stamp is the one
            # sanctioned mutation (publish pre-stamps fanout copies).
            object.__setattr__(message, "trace_ctx", tracer.new_flow())
        with tracer.span("mc.send", topic=message.topic, dest=message.dest):
            tracer.flow_start(message.trace_ctx)
            return self._send_inner(message)

    def _send_inner(self, message: Message) -> bool:
        if message.dest not in self._ports:
            self._dead_letter(message, "unregistered-destination", attempts=0)
            return False
        if self._severed(message):
            self._dead_letter(message, "partitioned", attempts=0)
            return False

        policy = self.policy
        attempts = 1
        waited = 0.0
        while policy.loss_rate > 0.0 and self._rng.random() < policy.loss_rate:
            retry = attempts - 1
            if retry >= policy.max_retries:
                self._dead_letter(message, "max-retries", attempts=attempts)
                return False
            wait = policy.backoff(retry, key=message.seq)
            if policy.send_timeout is not None and waited + wait > policy.send_timeout:
                self._dead_letter(message, "timeout", attempts=attempts)
                return False
            waited += wait
            attempts += 1
            self._retries += 1
            obs.counter("mc.retries").inc()

        delivered = self._deliver(message)
        if (
            policy.duplicate_rate > 0.0
            and self._rng.random() < policy.duplicate_rate
        ):
            # The link delivered a second copy (at-least-once artifact);
            # the port's dedup window must absorb it.
            obs.counter("mc.duplicates_injected").inc()
            self._deliver(message)
        return delivered

    def _deliver(self, message: Message) -> bool:
        """Hand a message to its port, suppressing duplicate seqs."""
        port = self._ports[message.dest]
        if message.seq in port.seen:
            self._duplicates_suppressed += 1
            obs.counter("mc.duplicates_suppressed").inc()
            return True
        port.seen.add(message.seq)
        port.seen_order.append(message.seq)
        if len(port.seen_order) > DEDUP_WINDOW:
            port.seen.discard(port.seen_order.popleft())
        port.mailbox.append(message)
        self._delivered += 1
        obs.counter("mc.sends").inc()
        obs.gauge("mc.mailbox_hwm", port=message.dest).set_max(len(port.mailbox))
        return True

    def receive(self, port_name: str) -> Message | None:
        """Pop the oldest message from a mailbox, or ``None`` if empty."""
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        box = self._ports[port_name].mailbox
        return box.popleft() if box else None

    def drain(self, port_name: str) -> list[Message]:
        """Pop every pending message from a mailbox."""
        out = []
        while (m := self.receive(port_name)) is not None:
            out.append(m)
        return out

    # -- dead letters -------------------------------------------------------------

    def _dead_letter(self, message: Message, reason: str, *, attempts: int) -> None:
        if len(self.dead_letters) == self.dead_letters.maxlen:
            self.dead_letters_dropped += 1
            obs.counter("mc.dead_letters_dropped").inc()
        self.dead_letters.append(
            DeadLetter(message=message, reason=reason,
                       time=message.time, attempts=attempts)
        )
        obs.counter("mc.dead_letters", reason=reason).inc()

    def drain_dead_letters(self) -> list[DeadLetter]:
        """Pop and return every retained dead letter (oldest first).

        Letters evicted by the capacity bound are gone — only the
        :attr:`dead_letters_dropped` count (and the
        ``mc.dead_letters_dropped`` counter) records that they existed.
        """
        out = list(self.dead_letters)
        self.dead_letters.clear()
        return out

    @property
    def dead_letter_count(self) -> int:
        """Dead letters currently queued (diagnostics)."""
        return len(self.dead_letters)

    @property
    def retry_count(self) -> int:
        """Total delivery retries since construction (diagnostics)."""
        return self._retries

    @property
    def duplicates_suppressed_count(self) -> int:
        """Duplicate deliveries absorbed by port dedup windows."""
        return self._duplicates_suppressed

    # -- publish/subscribe ------------------------------------------------------------

    def subscribe(self, port_name: str, topic: str) -> None:
        """Deliver future publications on ``topic`` to ``port_name``."""
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        if not topic:
            raise ValueError("topic must be non-empty")
        self._subscriptions.setdefault(topic, set()).add(port_name)

    def unsubscribe(self, port_name: str, topic: str) -> None:
        """Stop delivering ``topic`` publications to ``port_name``.

        Idempotent for subscriptions that don't exist; raises ``KeyError``
        only for an unknown port (matching :meth:`subscribe`).  A topic
        left with no subscribers is pruned from the subscription table.
        """
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        subscribers = self._subscriptions.get(topic)
        if subscribers is None:
            return
        subscribers.discard(port_name)
        if not subscribers:
            del self._subscriptions[topic]

    def topics(self) -> tuple[str, ...]:
        """Topics that currently have at least one subscriber (sorted)."""
        return tuple(sorted(self._subscriptions))

    def publish(self, sender: str, topic: str, payload: dict, time: float = 0.0) -> int:
        """Fan a message out to every subscriber of ``topic``.

        Returns the number of mailboxes reached — lost or dead-lettered
        deliveries are not counted.  Subscribers are visited in sorted
        order for determinism.
        """
        count = 0
        with obs.span("mc.publish", topic=topic):
            for dest in sorted(self._subscriptions.get(topic, ())):
                if dest in self._ports:
                    delivered = self.send(
                        Message(sender=sender, dest=dest, topic=topic,
                                payload=payload, time=time)
                    )
                    if delivered:
                        count += 1
        obs.counter("mc.publishes").inc()
        obs.counter("mc.fanout", topic=topic).inc(count)
        return count

    @property
    def delivered_count(self) -> int:
        """Total messages delivered since construction (diagnostics)."""
        return self._delivered
