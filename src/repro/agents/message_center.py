"""The CATALINA Message Center.

"CATALINA uses a Message Center (MC) for all the communications between
its modules and agents.  In the MC, every component is assigned a port
which acts as its mailbox.  Every message directed to a component is
placed on this mailbox."

This implementation adds publish/subscribe on topics — the paper's agents
"publish" local state to the message center so every agent has "direct and
immediate access to all relevant information" (Section 4.7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.agents.messages import Message

__all__ = ["Port", "MessageCenter"]


@dataclass(slots=True)
class Port:
    """A named mailbox."""

    name: str
    mailbox: deque = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self.mailbox)


class MessageCenter:
    """Port registry, point-to-point delivery, and topic pub/sub."""

    def __init__(self) -> None:
        self._ports: dict[str, Port] = {}
        self._subscriptions: dict[str, set[str]] = {}
        self._delivered = 0

    # -- ports ------------------------------------------------------------------

    def register(self, name: str) -> Port:
        """Create the mailbox for a component/agent; names are unique."""
        if not name:
            raise ValueError("port name must be non-empty")
        if name in self._ports:
            raise ValueError(f"port {name!r} already registered")
        port = Port(name=name)
        self._ports[name] = port
        return port

    def unregister(self, name: str) -> None:
        """Remove a mailbox and all its subscriptions.

        Topics whose subscriber set becomes empty are pruned, so
        long-lived agent networks with churning membership don't grow the
        subscription table unboundedly.
        """
        if name not in self._ports:
            raise KeyError(f"no port named {name!r}")
        del self._ports[name]
        for topic in list(self._subscriptions):
            subscribers = self._subscriptions[topic]
            subscribers.discard(name)
            if not subscribers:
                del self._subscriptions[topic]

    def has_port(self, name: str) -> bool:
        """True if a mailbox exists for ``name``."""
        return name in self._ports

    # -- point-to-point -----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Place a message on the destination's mailbox."""
        if message.dest not in self._ports:
            raise KeyError(f"no port named {message.dest!r}")
        box = self._ports[message.dest].mailbox
        box.append(message)
        self._delivered += 1
        obs.counter("mc.sends").inc()
        obs.gauge("mc.mailbox_hwm", port=message.dest).set_max(len(box))

    def receive(self, port_name: str) -> Message | None:
        """Pop the oldest message from a mailbox, or ``None`` if empty."""
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        box = self._ports[port_name].mailbox
        return box.popleft() if box else None

    def drain(self, port_name: str) -> list[Message]:
        """Pop every pending message from a mailbox."""
        out = []
        while (m := self.receive(port_name)) is not None:
            out.append(m)
        return out

    # -- publish/subscribe ------------------------------------------------------------

    def subscribe(self, port_name: str, topic: str) -> None:
        """Deliver future publications on ``topic`` to ``port_name``."""
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        if not topic:
            raise ValueError("topic must be non-empty")
        self._subscriptions.setdefault(topic, set()).add(port_name)

    def unsubscribe(self, port_name: str, topic: str) -> None:
        """Stop delivering ``topic`` publications to ``port_name``.

        Idempotent for subscriptions that don't exist; raises ``KeyError``
        only for an unknown port (matching :meth:`subscribe`).  A topic
        left with no subscribers is pruned from the subscription table.
        """
        if port_name not in self._ports:
            raise KeyError(f"no port named {port_name!r}")
        subscribers = self._subscriptions.get(topic)
        if subscribers is None:
            return
        subscribers.discard(port_name)
        if not subscribers:
            del self._subscriptions[topic]

    def topics(self) -> tuple[str, ...]:
        """Topics that currently have at least one subscriber (sorted)."""
        return tuple(sorted(self._subscriptions))

    def publish(self, sender: str, topic: str, payload: dict, time: float = 0.0) -> int:
        """Fan a message out to every subscriber of ``topic``.

        Returns the number of mailboxes reached.  Subscribers are visited
        in sorted order for determinism.
        """
        count = 0
        for dest in sorted(self._subscriptions.get(topic, ())):
            if dest in self._ports:
                self.send(
                    Message(sender=sender, dest=dest, topic=topic,
                            payload=payload, time=time)
                )
                count += 1
        obs.counter("mc.publishes").inc()
        obs.counter("mc.fanout", topic=topic).inc(count)
        return count

    @property
    def delivered_count(self) -> int:
        """Total messages delivered since construction (diagnostics)."""
        return self._delivered
