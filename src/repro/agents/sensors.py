"""Application-level sensors co-located with components.

"Application level sensors and actuators are embedded within the
application source using high level programming abstractions ... deployed
(and co-located) with the application's computational data structures"
(Section 3.4.2).  Here a sensor is an object bound to one component that
reports a named scalar when interrogated.
"""

from __future__ import annotations

import abc

from repro.agents.component import ComponentState, ManagedComponent

__all__ = ["ComponentSensor", "ThroughputSensor", "ProgressSensor", "StateSensor"]


class ComponentSensor(abc.ABC):
    """A readout embedded with one component."""

    def __init__(self, component: ManagedComponent) -> None:
        self.component = component

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Sensor identifier."""

    @abc.abstractmethod
    def read(self, t: float) -> float:
        """Current sensor value at time ``t``."""


class ThroughputSensor(ComponentSensor):
    """Observed work rate of the component (work units per second)."""

    @property
    def name(self) -> str:
        return "throughput"

    def read(self, t: float) -> float:
        return self.component.throughput


class ProgressSensor(ComponentSensor):
    """Fraction of the component's work completed, in [0, 1]."""

    @property
    def name(self) -> str:
        return "progress"

    def read(self, t: float) -> float:
        return self.component.progress / self.component.total_work


class StateSensor(ComponentSensor):
    """1.0 while the component is RUNNING or DONE, 0.0 otherwise."""

    @property
    def name(self) -> str:
        return "healthy"

    def read(self, t: float) -> float:
        ok = self.component.state in (ComponentState.RUNNING, ComponentState.DONE)
        return 1.0 if ok else 0.0
