"""Application Delegated Managers (ADMs).

"The MCS assigns an Application Delegated Manager (ADM) to manage one or
more application attributes (performance, fault, security, etc.) ...  to
manage the component performance, ADM may use active redundancy, passive
redundancy, or may migrate the task to a faster machine.  The appropriate
management scheme is selected at runtime."  Local CA decisions are
"hierarchically consolidated by the application delegation manager agent"
(Section 4.7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.agents.component_agent import ComponentAgent
from repro.agents.message_center import MessageCenter
from repro.agents.messages import Message
from repro.gridsys.cluster import Cluster
from repro.monitoring.monitor import ResourceMonitor

__all__ = ["ManagementScheme", "ApplicationDelegatedManager"]


class ManagementScheme(enum.Enum):
    """Strategies the ADM can select at runtime for a managed attribute."""

    MIGRATION = "migration"            # move work to a faster/live machine
    PASSIVE_REDUNDANCY = "passive"     # checkpoint + restart on failure
    ACTIVE_REDUNDANCY = "active"       # run copies (not used by default)


@dataclass(slots=True)
class ApplicationDelegatedManager:
    """Consolidates CA events and issues global management directives.

    Subscribes to failure and requirement-violation topics; on each tick it
    drains its mailbox, selects a management scheme, and (for the default
    MIGRATION scheme) directs the affected CA to migrate its component to
    the node the resource monitor forecasts as best.
    """

    message_center: MessageCenter
    cluster: Cluster
    monitor: ResourceMonitor | None = None
    attribute: str = "performance"
    port_name: str = "adm"
    agents: dict[str, ComponentAgent] = field(default_factory=dict)
    decisions: list[tuple[float, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.message_center.register(self.port_name)
        for topic in (
            "component-failed",
            "node-failed",
            "requirement-violated.throughput",
            "requirement-violated.healthy",
        ):
            self.message_center.subscribe(self.port_name, topic)

    def launch_agent(self, agent: ComponentAgent) -> None:
        """Adopt a CA (normally called by the MCS at environment build)."""
        agent.adm_port = self.port_name
        self.agents[agent.component.name] = agent

    def select_scheme(self, topic: str) -> ManagementScheme:
        """Runtime scheme selection: failures migrate from the checkpoint,
        performance violations migrate to a faster machine."""
        return ManagementScheme.MIGRATION

    def tick(self, t: float) -> None:
        """Consolidate events and issue directives."""
        handled: set[str] = set()
        while (msg := self.message_center.receive(self.port_name)) is not None:
            with obs.handler_span("adm.handle", msg, topic=msg.topic):
                self._handle(t, msg, handled)

    def _handle(self, t: float, msg: Message, handled: set[str]) -> None:
        if msg.topic == "actuate-ack":
            return
        if msg.topic == "node-failed":
            # Failure-detector declaration: evacuate every component
            # still placed on the dead node.
            node = msg.payload.get("node")
            for name, agent in self.agents.items():
                if agent.component.node_id == node and name not in handled:
                    handled.add(name)
                    self._direct_migration(t, name, dict(msg.payload))
            return
        comp_name = msg.payload.get("component")
        if comp_name is None or comp_name in handled:
            return
        handled.add(comp_name)
        scheme = self.select_scheme(msg.topic)
        if scheme is ManagementScheme.MIGRATION:
            self._direct_migration(t, comp_name, msg.payload)

    def best_node(self, t: float, exclude: int) -> int:
        """Node with the highest (forecast) effective speed, not ``exclude``.

        Uses the resource monitor's CPU forecast when available —
        proactive management — falling back to the cluster's current truth.
        """
        n = self.cluster.num_nodes
        if self.monitor is not None:
            cpu = self.monitor.forecast_vector("cpu")
            speeds = self.cluster.speeds() * np.clip(cpu, 0.0, 1.0)
        else:
            speeds = np.array(
                [self.cluster.effective_speed(i, t) for i in range(n)]
            )
        order = np.argsort(-speeds, kind="stable")
        for node in order:
            if int(node) != exclude and self.cluster.failures.is_alive(int(node), t):
                return int(node)
        return exclude

    def _direct_migration(self, t: float, comp_name: str, payload: dict) -> None:
        agent = self.agents.get(comp_name)
        if agent is None:
            return
        target = self.best_node(t, exclude=agent.component.node_id)
        if target == agent.component.node_id:
            return
        self.message_center.send(
            Message(
                sender=self.port_name,
                dest=agent.port.name,
                topic="actuate",
                payload={"actuator": "migrate", "kwargs": {"target": target}},
                time=t,
            )
        )
        self.decisions.append((t, comp_name, f"migrate->{target}"))
