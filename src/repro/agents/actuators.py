"""Application-level actuators.

"The CA intervenes whenever component execution on the assigned machine
cannot meet its requirements using component actuators that can suspend,
save component execution state, or migrate the component execution to
another machine" (Section 3.4.1).
"""

from __future__ import annotations

import abc

from repro.agents.component import ComponentState, ManagedComponent

__all__ = [
    "ComponentActuator",
    "SuspendActuator",
    "ResumeActuator",
    "CheckpointActuator",
    "MigrateActuator",
]


class ComponentActuator(abc.ABC):
    """A control embedded with one component."""

    def __init__(self, component: ManagedComponent) -> None:
        self.component = component

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Actuator identifier."""

    @abc.abstractmethod
    def actuate(self, t: float, **kwargs) -> bool:
        """Apply the action at time ``t``; returns success."""


class SuspendActuator(ComponentActuator):
    """Pause a running component."""

    @property
    def name(self) -> str:
        return "suspend"

    def actuate(self, t: float, **kwargs) -> bool:
        if self.component.state is not ComponentState.RUNNING:
            return False
        self.component.state = ComponentState.SUSPENDED
        return True


class ResumeActuator(ComponentActuator):
    """Resume a suspended component."""

    @property
    def name(self) -> str:
        return "resume"

    def actuate(self, t: float, **kwargs) -> bool:
        if self.component.state is not ComponentState.SUSPENDED:
            return False
        self.component.state = ComponentState.RUNNING
        return True


class CheckpointActuator(ComponentActuator):
    """Save the component's execution state."""

    @property
    def name(self) -> str:
        return "checkpoint"

    def actuate(self, t: float, **kwargs) -> bool:
        if self.component.state is ComponentState.MIGRATING:
            return False
        self.component.checkpoint = self.component.progress
        return True


class MigrateActuator(ComponentActuator):
    """Move the component to another node, restoring from checkpoint.

    A failed component restarts from its last checkpoint (work since then
    is lost); a live component carries its progress along.  ``target``
    must name a node that is currently alive.
    """

    @property
    def name(self) -> str:
        return "migrate"

    def actuate(self, t: float, *, target: int | None = None, **kwargs) -> bool:
        comp = self.component
        if target is None:
            raise ValueError("migrate requires a target node")
        if not (0 <= target < comp.cluster.num_nodes):
            raise ValueError(
                f"target {target} out of range [0, {comp.cluster.num_nodes})"
            )
        if not comp.cluster.failures.is_alive(target, t):
            return False
        if comp.state is ComponentState.DONE:
            return False
        if comp.state is ComponentState.RUNNING and target == comp.node_id:
            # Idempotent no-op: a duplicate migration order for a healthy
            # component already on the target must not count a migration
            # (dedup upstream can miss — e.g. a re-sent order with a
            # fresh seq — so the actuator is the last line of defense).
            return True
        if comp.state is ComponentState.FAILED:
            comp.progress = comp.checkpoint
        comp.node_id = target
        comp.state = ComponentState.RUNNING
        comp.migrations += 1
        return True
