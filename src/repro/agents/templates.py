"""Execution-environment templates and their registry.

"To configure the application execution environment, the MCS searches for
an appropriate template in the template database that can meet all
application requirements.  The template can be viewed as a blueprint of
the application execution environment.  The CATALINA template registry is
being updated to use a JINI-based open architecture to allow third party
template registration and discovery."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Template", "TemplateRegistry"]


@dataclass(frozen=True, slots=True)
class Template:
    """Blueprint of an execution environment.

    ``provides`` declares the capabilities the template guarantees
    (attribute → level); a template can satisfy an application whose
    requirement levels do not exceed the provided ones.  ``blueprint``
    carries construction parameters for the MCS (managed attributes,
    checkpoint period, CA requirement thresholds).
    """

    name: str
    provides: Mapping[str, float]
    blueprint: Mapping[str, object] = field(default_factory=dict)
    vendor: str = "builtin"

    def satisfies(self, requirements: Mapping[str, float]) -> bool:
        """True if every required attribute is provided at >= the level."""
        return all(
            attr in self.provides and self.provides[attr] >= level
            for attr, level in requirements.items()
        )


class TemplateRegistry:
    """Open registry with third-party registration and discovery."""

    def __init__(self) -> None:
        self._templates: dict[str, Template] = {}

    def __len__(self) -> int:
        return len(self._templates)

    def register(self, template: Template, *, replace: bool = False) -> None:
        """Register a template (third parties included)."""
        if template.name in self._templates and not replace:
            raise ValueError(f"template {template.name!r} already registered")
        self._templates[template.name] = template

    def unregister(self, name: str) -> Template:
        """Remove and return a template."""
        if name not in self._templates:
            raise KeyError(f"no template named {name!r}")
        return self._templates.pop(name)

    def discover(self, requirements: Mapping[str, float]) -> list[Template]:
        """All templates satisfying the requirements, best-fit first.

        Best fit = smallest total over-provisioning on the required
        attributes, tie-broken by name.
        """
        matches = [
            t for t in self._templates.values() if t.satisfies(requirements)
        ]

        def slack(t: Template) -> float:
            return sum(
                t.provides[a] - lvl for a, lvl in requirements.items()
            )

        matches.sort(key=lambda t: (slack(t), t.name))
        return matches


def builtin_templates() -> TemplateRegistry:
    """Registry preloaded with the stock execution-environment blueprints."""
    reg = TemplateRegistry()
    reg.register(
        Template(
            name="performance-managed",
            provides={"performance": 1.0},
            blueprint={
                "attributes": ("performance",),
                "min_throughput_fraction": 0.5,
                "checkpoint_period": 10.0,
            },
        )
    )
    reg.register(
        Template(
            name="fault-tolerant",
            provides={"performance": 0.5, "fault_tolerance": 1.0},
            blueprint={
                "attributes": ("performance", "fault"),
                "min_throughput_fraction": 0.25,
                "checkpoint_period": 5.0,
            },
        )
    )
    reg.register(
        Template(
            name="best-effort",
            provides={"performance": 0.1},
            blueprint={
                "attributes": (),
                "min_throughput_fraction": 0.0,
                "checkpoint_period": 30.0,
            },
        )
    )
    return reg
