"""CATALINA-style agent-based application management (Section 3.4).

The active control network: an in-process, deterministic reimplementation
of the CATALINA architecture of Figure 1 —

- :class:`MessageCenter` — ports/mailboxes for all agent communication,
- :class:`ApplicationSpec` (built by the AME) — application requirements
  and management schemes,
- :class:`TemplateRegistry` — blueprint discovery for execution
  environments,
- :class:`ManagementComputingSystem` (MCS) — builds the environment,
  assigning an :class:`ApplicationDelegatedManager` (ADM) per managed
  attribute and a :class:`ComponentAgent` (CA) per application component,
- sensors and actuators embedded with components (interrogate, suspend,
  checkpoint, migrate).
"""

from repro.agents.messages import Message
from repro.agents.message_center import (
    DeadLetter,
    DeliveryPolicy,
    MessageCenter,
    Port,
)
from repro.agents.component import ManagedComponent, ComponentState
from repro.agents.sensors import ComponentSensor, ThroughputSensor, ProgressSensor
from repro.agents.actuators import (
    ComponentActuator,
    SuspendActuator,
    ResumeActuator,
    CheckpointActuator,
    MigrateActuator,
)
from repro.agents.component_agent import ComponentAgent, Requirement
from repro.agents.adm import ApplicationDelegatedManager, ManagementScheme
from repro.agents.templates import Template, TemplateRegistry, builtin_templates
from repro.agents.ame import ApplicationSpec, ManagementEditor
from repro.agents.mcs import ManagementComputingSystem, ExecutionEnvironment
from repro.agents.characterization_agent import (
    CharacterizationAgent,
    CharacterizationEvent,
)

__all__ = [
    "Message",
    "DeadLetter",
    "DeliveryPolicy",
    "MessageCenter",
    "Port",
    "ManagedComponent",
    "ComponentState",
    "ComponentSensor",
    "ThroughputSensor",
    "ProgressSensor",
    "ComponentActuator",
    "SuspendActuator",
    "ResumeActuator",
    "CheckpointActuator",
    "MigrateActuator",
    "ComponentAgent",
    "Requirement",
    "ApplicationDelegatedManager",
    "ManagementScheme",
    "Template",
    "TemplateRegistry",
    "builtin_templates",
    "ApplicationSpec",
    "ManagementEditor",
    "ManagementComputingSystem",
    "ExecutionEnvironment",
    "CharacterizationAgent",
    "CharacterizationEvent",
]
