"""Managed application components.

A :class:`ManagedComponent` stands for one task of the distributed
application (e.g. the solver ranks working one partition).  It runs on a
cluster node, makes progress at a rate set by that node's effective speed,
and exposes the state machine the actuators drive: running → suspended →
migrating → running, with checkpoints capturing progress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.gridsys.cluster import Cluster

__all__ = ["ComponentState", "ManagedComponent"]


class ComponentState(enum.Enum):
    """Lifecycle states of a managed component."""

    RUNNING = "running"
    SUSPENDED = "suspended"
    MIGRATING = "migrating"
    FAILED = "failed"
    DONE = "done"


@dataclass(slots=True)
class ManagedComponent:
    """One application task executing on a simulated cluster node."""

    name: str
    cluster: Cluster
    node_id: int
    total_work: float
    progress: float = 0.0
    state: ComponentState = ComponentState.RUNNING
    checkpoint: float = 0.0
    migrations: int = 0
    _last_rate: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not (0 <= self.node_id < self.cluster.num_nodes):
            raise ValueError(
                f"node {self.node_id} out of range [0, {self.cluster.num_nodes})"
            )
        if self.total_work <= 0:
            raise ValueError(f"total_work must be positive, got {self.total_work}")

    @property
    def done(self) -> bool:
        """True once all work has completed."""
        return self.progress >= self.total_work

    @property
    def throughput(self) -> float:
        """Work rate observed during the last advance (work units / s)."""
        return self._last_rate

    def advance(self, t: float, dt: float) -> float:
        """Execute for ``dt`` seconds starting at time ``t``.

        Returns work completed.  A component on a failed node transitions
        to FAILED and makes no progress; suspended/migrating components
        idle.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if self.state is ComponentState.DONE:
            return 0.0
        if not self.cluster.failures.is_alive(self.node_id, t):
            self.state = ComponentState.FAILED
            self._last_rate = 0.0
            return 0.0
        if self.state is not ComponentState.RUNNING:
            self._last_rate = 0.0
            return 0.0
        rate = self.cluster.effective_speed(self.node_id, t)
        work = min(rate * dt, self.total_work - self.progress)
        self.progress += work
        self._last_rate = rate
        if self.done:
            self.state = ComponentState.DONE
        return work
