"""The invariant library the schedule fuzzer checks after every step.

Two tiers, matching when a property must hold:

- **step invariants** (:meth:`InvariantChecker.check_step`) hold at
  every point where all simulated tasks are parked — the cooperative
  scheduler's equivalent of "any observable moment": the queue respects
  its capacity bound, every queued job owns its inflight entry (by
  identity, not just key), ``committed`` agrees with the terminal
  status, subscriber counts never go negative, counters never move
  backwards, and no job commits a terminal status twice.

- **quiescence invariants** (:meth:`InvariantChecker.check_quiescent`)
  hold once every task has finished: no submission is lost (every
  admitted job committed exactly one terminal event, every handle is
  done), no client that never cancelled observes ``cancelled``
  (the dedup twin-attach race's signature), done results are actually
  correct, the inflight table and queue are empty, the admission ledger
  balances (``submitted == admitted + shed + dedup + cache``), the
  failure detector never declared a failure for a flap shorter than its
  hysteresis window, and the modeled-partition-time override did not
  leak outside its context manager.

Violations are plain data (:class:`Violation`) so repro files can embed
them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.partitioners import base as _partitioner_base
from repro.serve.queue import TERMINAL_STATUSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simtest.world import SimWorld

__all__ = ["Violation", "InvariantChecker"]


@dataclass
class Violation:
    """One broken invariant, with enough context to read the repro."""

    invariant: str
    detail: str
    step: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (embedded in repro files)."""
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "step": self.step,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Violation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            invariant=str(doc["invariant"]),
            detail=str(doc["detail"]),
            step=int(doc.get("step", -1)),
        )


class InvariantChecker:
    """Accumulates observations and violations over one simulated run."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        #: one line per scheduling step — the "invariant log" whose
        #: digest (with the trace) defines run determinism
        self.log: list[str] = []
        self.jobs: dict[int, Any] = {}
        self.admitted: set[int] = set()
        self.terminal_events: dict[int, int] = {}
        self._counter_last: dict[tuple, float] = {}
        self._last_event_t = float("-inf")

    def violate(self, invariant: str, detail: str, step: int) -> None:
        """Record one violation."""
        self.violations.append(Violation(invariant, detail, step))

    # -- event tap (called from the world's listener) ----------------------------

    def observe_event(self, job: Any, kind: str, t: float,
                      step: int) -> None:
        """Fold one job event into the checker's model."""
        self.jobs[job.seq] = job
        if t < self._last_event_t - 1e-9:
            self.violate(
                "event-time-monotone",
                f"event {kind!r} for job-{job.seq} at t={t} after an "
                f"event at t={self._last_event_t}",
                step,
            )
        self._last_event_t = max(self._last_event_t, t)
        if kind == "queued":
            self.admitted.add(job.seq)
        if kind in TERMINAL_STATUSES:
            n = self.terminal_events.get(job.seq, 0) + 1
            self.terminal_events[job.seq] = n
            if n > 1:
                self.violate(
                    "terminal-exactly-once",
                    f"job-{job.seq} committed a {n}th terminal event "
                    f"({kind!r} at t={t})",
                    step,
                )

    # -- step invariants ---------------------------------------------------------

    def check_step(self, world: "SimWorld", step: int) -> None:
        """Check every property that must hold at any parked moment."""
        server = world.server
        depth = len(server.queue)
        if depth > server.queue.capacity:
            self.violate(
                "queue-bound",
                f"queue depth {depth} exceeds capacity "
                f"{server.queue.capacity}",
                step,
            )
        for lane in server.queue._lanes.values():
            for job in lane:
                if server._inflight.get(job.key) is not job:
                    self.violate(
                        "inflight-identity",
                        f"job-{job.seq} is queued but _inflight[{job.key!r}] "
                        f"is not it — a racing pop orphaned the entry",
                        step,
                    )
        for seq, job in self.jobs.items():
            if job.committed != job.terminal:
                self.violate(
                    "commit-status-agreement",
                    f"job-{seq}: committed={job.committed} but "
                    f"status={job.status!r}",
                    step,
                )
            if job.subscribers < 0:
                self.violate(
                    "subscribers-nonnegative",
                    f"job-{seq}: subscribers={job.subscribers}",
                    step,
                )
        for key, counter in list(server.metrics._counters.items()):
            value = counter.value
            last = self._counter_last.get(key, 0.0)
            if value < last - 1e-9:
                name, labels = key
                self.violate(
                    "counters-monotone",
                    f"counter {name}{dict(labels)!r} moved backwards: "
                    f"{last} -> {value}",
                    step,
                )
            self._counter_last[key] = value
        self.log.append(
            f"step={step} depth={depth} inflight={len(server._inflight)} "
            f"jobs={len(self.jobs)} "
            f"terminal={sum(self.terminal_events.values())} "
            f"violations={len(self.violations)}"
        )

    # -- quiescence invariants ---------------------------------------------------

    def check_quiescent(self, world: "SimWorld") -> None:
        """Check end-state properties once every task has finished."""
        server = world.server
        step = world.sched.steps
        for hid, entry in world.handles.items():
            handle = entry.handle
            if not handle.done:
                self.violate(
                    "no-lost-submission",
                    f"handle {hid} ({handle.job_id}, {entry.scenario}) "
                    f"never reached a terminal state "
                    f"(status={handle.status!r})",
                    step,
                )
                continue
            status = handle.status
            if status == "cancelled" and hid not in world.cancel_attempted:
                self.violate(
                    "no-phantom-cancel",
                    f"handle {hid} ({handle.job_id}) reads 'cancelled' but "
                    f"no client ever cancelled it — it was attached to a "
                    f"dead dedup twin",
                    step,
                )
            if status == "done" and entry.scenario in ("sim-fast", "sim-slow"):
                result = entry.handle.record().get("result")
                expected = entry.x * entry.x
                got = result.get("square") if isinstance(result, dict) else None
                if got != expected:
                    self.violate(
                        "results-correct",
                        f"handle {hid} ({handle.job_id}): expected "
                        f"square={expected} for x={entry.x}, got {result!r}",
                        step,
                    )
        for seq in sorted(self.admitted):
            job = self.jobs.get(seq)
            if job is None or not (job.committed and job.terminal):
                status = getattr(job, "status", "<gone>")
                self.violate(
                    "no-lost-job",
                    f"admitted job-{seq} never committed "
                    f"(status={status!r})",
                    step,
                )
            n = self.terminal_events.get(seq, 0)
            if n != 1:
                self.violate(
                    "terminal-exactly-once",
                    f"admitted job-{seq} emitted {n} terminal events "
                    f"(want exactly 1)",
                    step,
                )
        if server._inflight:
            self.violate(
                "inflight-drains",
                f"{len(server._inflight)} inflight entries survive "
                f"quiescence: "
                f"{sorted(f'job-{j.seq}' for j in server._inflight.values())}",
                step,
            )
        if len(server.queue):
            self.violate(
                "queue-drains",
                f"{len(server.queue)} jobs still queued at quiescence",
                step,
            )
        m = server.metrics
        submitted = m.sum_counters("serve.submitted")
        admitted = m.sum_counters("serve.admitted")
        shed = m.sum_counters("serve.shed")
        dedup = m.sum_counters("serve.dedup_hits")
        cache = m.sum_counters("serve.cache_hits")
        if submitted != admitted + shed + dedup + cache:
            self.violate(
                "admission-ledger",
                f"submitted={submitted} != admitted={admitted} + "
                f"shed={shed} + dedup={dedup} + cache={cache}",
                step,
            )
        terminal = m.sum_counters("serve.jobs_terminal")
        if terminal != admitted:
            self.violate(
                "terminal-ledger",
                f"jobs_terminal={terminal} != admitted={admitted}",
                step,
            )
        leak = getattr(
            _partitioner_base._MODELED_TIME, "seconds_per_unit", None
        )
        if leak is not None:
            self.violate(
                "no-modeled-time-leak",
                f"deterministic_partition_time override ({leak!r}) is "
                f"visible outside its context manager — the modeled-time "
                f"state is not isolated per thread",
                step,
            )
        cfg = world.detector.config
        declare_at = cfg.misses_to_declare + cfg.eviction_hysteresis_polls
        for ev in world.detector.events:
            if ev.kind != "failure":
                continue
            outage = next(
                (
                    o for o in world.outages
                    if o["node"] == ev.node_id
                    and o["t_fail"] <= ev.t_detected < o["t_recover"]
                ),
                None,
            )
            if outage is None:
                self.violate(
                    "detector-no-spurious-failure",
                    f"detector declared node {ev.node_id} failed at "
                    f"t={ev.t_detected} with no covering outage",
                    step,
                )
            elif outage["polls"] < declare_at:
                self.violate(
                    "detector-hysteresis",
                    f"node {ev.node_id} evicted at t={ev.t_detected} during "
                    f"a {outage['polls']}-poll flap "
                    f"(declare_at={declare_at} polls)",
                    step,
                )
