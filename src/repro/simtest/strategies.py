"""Hypothesis strategies over the simtest workload-script format.

Property-based tests draw :class:`~repro.simtest.script.WorkloadScript`
values directly (rather than integer seeds), so hypothesis shrinks the
*script* on failure — complementary to the fuzzer's own ddmin, and
sharing the exact corpus format: a script hypothesis found embeds in a
repro file unchanged.

Import is guarded: the strategies are only usable where hypothesis is
installed (the test environment); the runtime package never needs it.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised via tests when hypothesis exists
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - runtime installs may lack it
    st = None  # type: ignore[assignment]

from repro.serve.protocol import PRIORITIES
from repro.simtest.script import SIM_SCENARIOS, WorkloadScript

__all__ = ["workload_scripts", "HAVE_HYPOTHESIS"]

HAVE_HYPOTHESIS = st is not None


def _require_hypothesis() -> None:
    if st is None:  # pragma: no cover - runtime installs may lack it
        raise RuntimeError(
            "repro.simtest.strategies requires hypothesis; "
            "use repro.simtest.generate_script for seed-derived scripts"
        )


def workload_scripts(
    *,
    max_ops: int = 16,
    clients: int = 2,
    workers: int = 2,
):
    """A strategy producing small, always-valid workload scripts.

    Handles are drawn from a tiny symbolic pool (``h1``..``h6``) —
    cancels/awaits may reference handles no submit created, which the
    world skips by design, so every draw is runnable.  Trailing awaits
    for the submitted handles are appended to guarantee the quiescence
    invariants bind the whole submission set.
    """
    _require_hypothesis()
    handle_ids = [f"h{i}" for i in range(1, 7)]
    client_st = st.integers(min_value=0, max_value=clients - 1)
    submit_op = st.fixed_dictionaries({
        "op": st.just("submit"),
        "client": client_st,
        "handle": st.sampled_from(handle_ids),
        "scenario": st.sampled_from(SIM_SCENARIOS),
        "x": st.integers(min_value=0, max_value=2),
        "priority": st.sampled_from(PRIORITIES),
    })
    handle_op = st.fixed_dictionaries({
        "op": st.sampled_from(("cancel", "await")),
        "client": client_st,
        "handle": st.sampled_from(handle_ids),
    })
    drain_op = st.fixed_dictionaries({
        "op": st.just("drain"),
        "client": client_st,
    })
    advance_op = st.fixed_dictionaries({
        "op": st.just("advance"),
        "client": client_st,
        "dt": st.floats(min_value=0.5, max_value=3.0,
                        allow_nan=False, allow_infinity=False),
    })
    fault_op = st.fixed_dictionaries({
        "op": st.just("fault"),
        "client": client_st,
        "node": st.integers(min_value=0, max_value=2),
        "polls": st.sampled_from((1, 2, 3, 5)),
    })
    ops_st = st.lists(
        st.one_of(submit_op, submit_op, handle_op, drain_op,
                  advance_op, fault_op),
        min_size=1,
        max_size=max_ops,
    )

    def _build(draw_tuple: tuple[list[dict[str, Any]], int, int, bool,
                                 int, float, int]) -> WorkloadScript:
        ops, capacity, max_batch, use_cache, retries, death, dseed = (
            draw_tuple
        )
        ops = [dict(op) for op in ops]
        submitted = []
        renumbered = []
        for op in ops:
            if op["op"] == "submit":
                # re-key submit handles to be unique while keeping
                # cancels/awaits pointed at the symbolic pool
                hid = f"h{len(submitted) + 1}"
                submitted.append(hid)
                op = {**op, "handle": hid}
            if op["op"] == "advance":
                op = {**op, "dt": round(float(op["dt"]), 3)}
            renumbered.append(op)
        for hid in submitted:
            renumbered.append({"op": "await", "client": 0, "handle": hid})
        return WorkloadScript(
            ops=renumbered,
            workers=workers,
            clients=clients,
            queue_capacity=capacity,
            max_batch=max_batch,
            use_cache=use_cache,
            max_retries=retries,
            death_rate=death,
            death_seed=dseed,
        )

    return st.tuples(
        ops_st,
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.booleans(),
        st.integers(min_value=0, max_value=2),
        st.sampled_from((0.0, 0.0, 0.15, 0.4)),
        st.integers(min_value=0, max_value=1 << 20),
    ).map(_build)
