"""One simulated world: the real runtime under virtual time.

:class:`SimWorld` wires a **real** :class:`~repro.serve.server.
ScenarioServer` (no worker pool — parked cooperative tasks drive
:meth:`~repro.serve.scheduler.Scheduler.step` instead) and a **real**
:class:`~repro.resilience.detector.FailureDetector` (heartbeats are
:class:`~repro.simtest.clock.SimClock` timers on an exact grid) into a
closed world, then executes a :class:`~repro.simtest.script.
WorkloadScript` under a seeded cooperative schedule:

- every server/scheduler job event funnels through one listener that
  feeds the :class:`~repro.simtest.invariants.InvariantChecker`, appends
  to the trace, and *parks the emitting task* — so the windows between
  an event and the code after it (commit → pop, cancel → done-set) are
  exactly the schedule points the fuzzer permutes;
- client tasks run the script's ops (submits, cancels, awaits, drains,
  clock advances, fault injections), worker tasks run one batch dispatch
  per grant;
- fault ops write ground-truth outages aligned to the heartbeat grid so
  the detector-hysteresis invariant is exact: an outage spanning fewer
  polls than ``misses_to_declare + eviction_hysteresis_polls`` is a flap
  the detector must absorb.

The controller loop (:meth:`SimWorld.run`) grants one task per step,
checks step invariants while everything is parked, and declares a
violation on stall (lost wakeup / deadlock), task crash, or
non-termination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.config import LiveObsOptions
from repro.gridsys.cluster import Cluster
from repro.gridsys.failures import FailureEvent
from repro.gridsys.node import Node
from repro.resilience.detector import DetectorConfig, FailureDetector
from repro.serve.server import JobHandle, ScenarioServer
from repro.simtest.clock import SimClock
from repro.simtest.invariants import InvariantChecker
from repro.simtest.scheduler import SimScheduler, sim_wait, sim_yield
from repro.simtest.script import WorkloadScript
from repro.sweep.scenario import FunctionScenario, ScenarioContext, register

__all__ = ["SimWorld", "HandleEntry", "SIM_DETECTOR_CONFIG"]

#: the world's detector tuning: declare-at = 2 misses + 2 hysteresis
#: polls = 4 consecutive missed heartbeats on a 1 s grid
SIM_DETECTOR_CONFIG = DetectorConfig(
    heartbeat_period=1.0,
    misses_to_declare=2,
    eviction_hysteresis_polls=2,
    recovery_confirmations=1,
)

_SIM_NODES = 3


def _sim_fast(ctx: ScenarioContext) -> dict[str, int]:
    x = int(ctx.params.get("x", 0))
    sim_yield("scenario:fast")
    return {"x": x, "square": x * x}


def _sim_slow(ctx: ScenarioContext) -> dict[str, int]:
    x = int(ctx.params.get("x", 0))
    for i in range(3):
        sim_yield(f"scenario:slow-{i}")
    return {"x": x, "square": x * x}


def _sim_boom(ctx: ScenarioContext) -> dict[str, int]:
    sim_yield("scenario:boom")
    raise RuntimeError("sim-boom always fails")


def register_sim_scenarios() -> None:
    """(Re-)register the simulation's scenario vocabulary (idempotent)."""
    for name, fn in (
        ("sim-fast", _sim_fast),
        ("sim-slow", _sim_slow),
        ("sim-boom", _sim_boom),
    ):
        register(FunctionScenario(name, fn), replace=True)


@dataclass
class HandleEntry:
    """The world's bookkeeping for one script handle."""

    hid: str
    handle: JobHandle
    scenario: str
    x: int
    client: int = 0


@dataclass
class _Outcome:
    """What :meth:`SimWorld.run` leaves behind for the fuzzer."""

    completed: bool = False
    stalled: bool = False
    extra: dict[str, Any] = field(default_factory=dict)


class SimWorld:
    """A deterministic simulation of the serving + resilience stack."""

    def __init__(self, script: WorkloadScript, seed: int) -> None:
        register_sim_scenarios()
        self.script = script
        self.seed = seed
        self.clock = SimClock()
        self.sched = SimScheduler(seed)
        self.checker = InvariantChecker()
        self.trace: list[dict[str, Any]] = []
        self.handles: dict[str, HandleEntry] = {}
        self.cancel_attempted: set[str] = set()
        self.outages: list[dict[str, Any]] = []
        self._node_free_at: dict[int, float] = {}
        self.stop_workers = False
        self.outcome = _Outcome()
        self.cluster = Cluster(
            nodes=[Node(node_id=i) for i in range(_SIM_NODES)]
        )
        self.detector = FailureDetector(
            self.cluster, SIM_DETECTOR_CONFIG, clock=self.clock
        )
        self.clock.every(
            SIM_DETECTOR_CONFIG.heartbeat_period,
            self._heartbeat,
            name="detector-heartbeat",
        )
        self.server = ScenarioServer(
            workers=script.workers,
            queue_capacity=script.queue_capacity,
            max_batch=script.max_batch,
            use_cache=script.use_cache,
            max_retries=script.max_retries,
            scenario_modules=(),
            death_injector=self._death,
            live_obs=LiveObsOptions(enabled=True, flight_capacity=256),
            clock=self.clock,
            sleeper=self._sim_sleep,
            start=False,
        )
        self.server.add_listener(self._on_event)
        self._ops_by_client: dict[int, list[dict[str, Any]]] = {
            cid: [] for cid in range(script.clients)
        }
        for op in script.ops:
            cid = int(op.get("client", 0)) % script.clients
            self._ops_by_client[cid].append(op)
        self._client_tasks = [
            self.sched.spawn(f"client-{cid}", self._client_fn(cid))
            for cid in range(script.clients)
        ]
        self._worker_tasks = [
            self.sched.spawn(f"worker-{wid}", self._worker_fn(wid))
            for wid in range(script.workers)
        ]

    # -- seams -------------------------------------------------------------------

    def _sim_sleep(self, dt: float) -> None:
        # the runtime's only in-sim sleeper (retry backoff): virtual
        # time moves, due timers fire, and the sleeping task parks
        self.clock.advance(dt)
        sim_yield("sleep")

    def _death(self, job: Any, attempt: int) -> str | None:
        return self.script.death_plan(job.seq, attempt)

    def _heartbeat(self) -> None:
        for ev in self.detector.poll_now():
            self.trace.append({
                "e": "detect", "kind": ev.kind, "node": ev.node_id,
                "t": round(ev.t_detected, 6),
            })

    def _on_event(self, job: Any, kind: str, t: float,
                  attrs: dict[str, Any]) -> None:
        self.checker.observe_event(job, kind, t, self.sched.steps)
        rec: dict[str, Any] = {
            "e": "ev", "kind": kind, "job": job.seq, "t": round(t, 6),
        }
        for key in sorted(attrs):
            value = attrs[key]
            if isinstance(value, (str, int, float, bool)):
                rec[key] = round(value, 6) if isinstance(value, float) else value
        self.trace.append(rec)
        # park the emitting task *here*: the window between an event and
        # the code after it (commit -> done-set -> inflight pop) is where
        # the interesting races live
        sim_yield(f"event:{kind}")

    # -- task bodies -------------------------------------------------------------

    def _client_fn(self, cid: int):
        def _body() -> None:
            for op in self._ops_by_client[cid]:
                sim_yield("op-start")
                self._run_op(cid, op)
        return _body

    def _worker_fn(self, wid: int):
        def _body() -> None:
            while True:
                sim_wait(
                    "worker-idle",
                    lambda: self.stop_workers or len(self.server.queue) > 0,
                )
                if self.stop_workers and len(self.server.queue) == 0:
                    return
                self.server.scheduler.step(wid)
        return _body

    def _run_op(self, cid: int, op: dict[str, Any]) -> None:
        kind = op["op"]
        self.trace.append({
            "e": "op", "client": cid,
            **{k: v for k, v in op.items() if k != "client"},
        })
        if kind == "submit":
            handle = self.server.submit(
                op["scenario"], {"x": int(op["x"])},
                priority=op.get("priority", "normal"),
            )
            self.handles[op["handle"]] = HandleEntry(
                hid=op["handle"], handle=handle,
                scenario=op["scenario"], x=int(op["x"]), client=cid,
            )
        elif kind == "cancel":
            entry = self.handles.get(op["handle"])
            if entry is None:
                return
            self.cancel_attempted.add(op["handle"])
            ok = entry.handle.cancel()
            self.trace.append({
                "e": "cancel-result", "handle": op["handle"], "ok": bool(ok),
            })
        elif kind == "await":
            entry = self.handles.get(op["handle"])
            if entry is None:
                return
            sim_wait("await", lambda: entry.handle.done)
            self.trace.append({
                "e": "await-result", "handle": op["handle"],
                "status": entry.handle.status,
            })
        elif kind == "drain":
            sim_wait("drain", lambda: not self.server._inflight)
            ok = self.server.drain(timeout=0)
            self.trace.append({"e": "drain-result", "ok": bool(ok)})
        elif kind == "advance":
            self.clock.advance(float(op["dt"]))
            sim_yield("advance")
        elif kind == "fault":
            self._inject_fault(op)

    def _inject_fault(self, op: dict[str, Any]) -> None:
        """Write one grid-aligned ground-truth outage.

        ``t_fail`` lands half a period before the next heartbeat tick
        and ``t_recover`` exactly ``polls`` periods later, so the outage
        covers precisely ``polls`` heartbeats.  A new outage on a node
        must leave at least one healthy heartbeat after the previous one
        (the detector's miss counter is consecutive); conflicting ops
        are skipped deterministically.
        """
        cfg = self.detector.config
        period = cfg.heartbeat_period
        node = int(op["node"]) % self.cluster.num_nodes
        polls = max(1, int(op["polls"]))
        t_fail = (math.floor(self.clock.now() / period) + 1) * period - period / 2
        free_at = self._node_free_at.get(node)
        if free_at is not None and t_fail < free_at + period:
            self.trace.append({"e": "fault-skipped", "node": node})
            return
        t_recover = t_fail + polls * period
        self.cluster.failures.add(
            FailureEvent(node_id=node, t_fail=t_fail, t_recover=t_recover)
        )
        self._node_free_at[node] = t_recover
        self.outages.append({
            "node": node, "t_fail": t_fail, "t_recover": t_recover,
            "polls": polls,
        })
        self.trace.append({
            "e": "fault", "node": node, "t_fail": round(t_fail, 6),
            "polls": polls,
        })

    # -- controller --------------------------------------------------------------

    def _clients_done(self) -> bool:
        return all(task.done for task in self._client_tasks)

    def run(self, max_steps: int = 50_000) -> None:
        """Drive the world to quiescence (or to a violation)."""
        try:
            while True:
                if self._clients_done() and not self.stop_workers:
                    self.stop_workers = True
                if all(task.done for task in self.sched.tasks):
                    self.outcome.completed = True
                    break
                task = self.sched.step()
                if task is None:
                    live = [
                        (t.name, t.where) for t in self.sched.live
                    ]
                    self.outcome.stalled = True
                    self.checker.violate(
                        "no-deadlock",
                        f"all live tasks are blocked (lost wakeup or "
                        f"deadlock): {live}",
                        self.sched.steps,
                    )
                    break
                if task.error is not None:
                    self.checker.violate(
                        "no-uncaught-task-error",
                        f"{task.name} crashed at {task.where!r}: "
                        f"{type(task.error).__name__}: {task.error}",
                        self.sched.steps,
                    )
                    break
                self.checker.check_step(self, self.sched.steps)
                if self.checker.violations:
                    break
                if self.sched.steps >= max_steps:
                    self.checker.violate(
                        "termination",
                        f"no quiescence after {max_steps} scheduling steps",
                        self.sched.steps,
                    )
                    break
        finally:
            self.sched.abort_all()
        if self.outcome.completed and not self.checker.violations:
            self.checker.check_quiescent(self)
        try:
            self.server.shutdown(wait=False)
        except Exception:  # noqa: BLE001 - teardown must not mask findings
            pass
