"""The seeded cooperative scheduler: one runnable thread at a time.

Real threads run the real runtime code, but they only *run* while the
controller has granted them the baton: every task parks at
:func:`sim_yield` points (reached through the runtime's event/sleep
seams) and the controller — a plain loop on the driving thread — picks
which parked task resumes next with a seeded RNG.  Exactly one thread
executes at any moment, so shared-state interleavings are totally
ordered by the grant sequence, which is a pure function of the seed.

The park/grant handshake is a pair of binary semaphores per task;
:data:`_CURRENT` (a thread-local) lets :func:`sim_yield` find the
calling thread's task, and makes it a no-op on unmanaged threads — the
same seams cost nothing in production.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable

__all__ = ["SimAbort", "SimTask", "SimScheduler", "sim_yield", "sim_wait"]

_CURRENT = threading.local()


class SimAbort(BaseException):
    """Unwinds a task's thread during teardown.

    Derives :class:`BaseException` so the runtime's job-isolation
    ``except Exception`` handlers do not swallow it into a spurious
    ``failed`` commit.
    """


def sim_yield(label: str) -> None:
    """Park the calling task and hand the baton back to the controller.

    No-op when the calling thread is not a managed :class:`SimTask` —
    production code paths that share the seams never block here.
    """
    task = getattr(_CURRENT, "task", None)
    if task is None:
        return
    task.where = label
    task._parked.release()
    task._grant.acquire()
    if task.aborted:
        raise SimAbort()


def sim_wait(label: str, pred: Callable[[], bool]) -> None:
    """Park until ``pred()`` holds; the controller only grants then.

    The predicate is evaluated by the controller while every task is
    parked, so it may read shared state without synchronization.
    """
    task = getattr(_CURRENT, "task", None)
    if task is None:
        return
    while not pred():
        task.wait_pred = pred
        sim_yield(label)
        task.wait_pred = None


class SimTask:
    """One cooperatively scheduled thread of the simulated world."""

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        self.name = name
        self.fn = fn
        self.where = "spawned"
        self.done = False
        self.aborted = False
        self.error: BaseException | None = None
        #: gating predicate for the controller; None = runnable
        self.wait_pred: Callable[[], bool] | None = None
        self._grant = threading.Semaphore(0)
        self._parked = threading.Semaphore(0)
        self._thread = threading.Thread(
            target=self._body, name=f"sim-{name}", daemon=True
        )
        self._thread.start()

    def _body(self) -> None:
        _CURRENT.task = self
        self._grant.acquire()
        try:
            if not self.aborted:
                self.fn()
        except SimAbort:
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced as a violation
            self.error = exc
        finally:
            self.done = True
            self.where = "done"
            self._parked.release()

    @property
    def runnable(self) -> bool:
        """True when a grant would make progress."""
        if self.done:
            return False
        if self.wait_pred is not None:
            return bool(self.wait_pred())
        return True


class SimScheduler:
    """Grants the baton to one runnable task at a time, seeded.

    ``step()`` picks a runnable task uniformly with the seed's RNG,
    wakes it, and blocks until it parks again (or finishes).  The grant
    trace — ``(step, task, where-label)`` — *is* the schedule: two runs
    with equal seeds and equal world state produce identical traces.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.tasks: list[SimTask] = []
        self.trace: list[tuple[int, str, str]] = []
        self.steps = 0

    def spawn(self, name: str, fn: Callable[[], Any]) -> SimTask:
        """Create a managed task; it parks immediately, before ``fn``."""
        task = SimTask(name, fn)
        self.tasks.append(task)
        return task

    def runnable(self) -> list[SimTask]:
        """Tasks a grant would advance, in stable spawn order."""
        return [t for t in self.tasks if t.runnable]

    @property
    def live(self) -> list[SimTask]:
        """Tasks that have not finished."""
        return [t for t in self.tasks if not t.done]

    def _grant(self, task: SimTask) -> None:
        task._grant.release()
        task._parked.acquire()

    def step(self) -> SimTask | None:
        """Run one scheduling step; None when nothing is runnable."""
        ready = self.runnable()
        if not ready:
            return None
        task = ready[self.rng.randrange(len(ready))]
        came_from = task.where
        self._grant(task)
        self.steps += 1
        self.trace.append((self.steps, task.name, came_from))
        return task

    def abort_all(self) -> None:
        """Unwind every live task (raises :class:`SimAbort` in each)."""
        for task in self.tasks:
            if task.done:
                continue
            task.aborted = True
            self._grant(task)
        for task in self.tasks:
            task._thread.join(timeout=10.0)
