"""The workload-script corpus format and its seeded generator.

One format, three producers: :func:`generate_script` derives a script
from an integer seed (the fuzzer's corpus), the hypothesis strategy in
:mod:`repro.simtest.strategies` draws the same shape property-based,
and repro files embed the minimized script verbatim — so a failure
found by any of them replays through the same door.

A script is a server/detector configuration plus a flat op list.  Ops
reference handles by symbolic id (``h1``, ``h2``, ...); an op whose
handle does not (yet) exist is *skipped*, which keeps every subset of
an op list a valid script — the property the delta-debugging minimizer
relies on.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import PRIORITIES

__all__ = [
    "WorkloadScript",
    "generate_script",
    "derive_sim_seed",
    "SIM_SCENARIOS",
]

#: the simulation's scenario vocabulary (registered by the world):
#: ``sim-fast``/``sim-slow`` compute ``x**2`` with 1/3 in-scenario yield
#: points, ``sim-boom`` raises (a ``failed`` commit)
SIM_SCENARIOS = ("sim-fast", "sim-slow", "sim-boom")

#: op kinds a script may contain
OP_KINDS = ("submit", "cancel", "await", "drain", "advance", "fault")


def derive_sim_seed(*parts: Any) -> int:
    """A process-independent integer seed from arbitrary parts.

    ``random.Random(tuple)`` falls back to ``hash()``, which
    ``PYTHONHASHSEED`` randomizes per process — useless for a corpus
    whose digests must agree across machines.  This derivation is pure
    sha256 over the stringified parts.
    """
    digest = hashlib.sha256(
        ":".join(map(str, parts)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class WorkloadScript:
    """A runnable workload: configuration + ops, JSON round-trippable."""

    ops: list[dict[str, Any]] = field(default_factory=list)
    workers: int = 2
    clients: int = 2
    queue_capacity: int = 4
    max_batch: int = 2
    use_cache: bool = False
    max_retries: int = 2
    #: worker-death injection: each (job.seq, attempt) dies "before" /
    #: "after" / not at all, decided by a pure hash of (death_seed, seq,
    #: attempt) against this rate — no registration, no races
    death_rate: float = 0.0
    death_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if not 0.0 <= self.death_rate <= 1.0:
            raise ValueError(
                f"death_rate must be in [0, 1], got {self.death_rate}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the shape embedded in repro files)."""
        return {
            "workers": self.workers,
            "clients": self.clients,
            "queue_capacity": self.queue_capacity,
            "max_batch": self.max_batch,
            "use_cache": self.use_cache,
            "max_retries": self.max_retries,
            "death_rate": self.death_rate,
            "death_seed": self.death_seed,
            "ops": [dict(op) for op in self.ops],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "WorkloadScript":
        """Rebuild a script from :meth:`to_dict` output."""
        fields = {k: v for k, v in doc.items() if k != "ops"}
        return cls(ops=[dict(op) for op in doc.get("ops", [])], **fields)

    def replace_ops(self, ops: list[dict[str, Any]]) -> "WorkloadScript":
        """A copy with the same configuration and a different op list."""
        doc = self.to_dict()
        doc["ops"] = [dict(op) for op in ops]
        return WorkloadScript.from_dict(doc)

    def death_plan(self, seq: int, attempt: int) -> str | None:
        """The injected death (if any) for one job attempt.

        A pure function of ``(death_seed, seq, attempt)``, so the same
        attempt dies the same way on replay regardless of schedule.
        """
        if self.death_rate <= 0.0:
            return None
        r = random.Random(
            derive_sim_seed("death", self.death_seed, seq, attempt)
        ).random()
        if r < self.death_rate / 2:
            return "before"
        if r < self.death_rate:
            return "after"
        return None


def generate_script(
    seed: int,
    *,
    ops: int = 24,
    clients: int = 2,
    workers: int = 2,
) -> WorkloadScript:
    """Derive a workload script from ``seed`` (the fuzzer's corpus).

    The op mix leans into the race surfaces: small ``x`` domains force
    key collisions (dedup/twin attach), cancels target recent handles
    (commit races), drains land mid-burst, faults flap nodes inside the
    detector's hysteresis, and advances fire heartbeat timers.
    """
    rng = random.Random(derive_sim_seed("simtest-script", seed))
    script = WorkloadScript(
        workers=workers,
        clients=clients,
        queue_capacity=rng.choice((2, 3, 4, 6)),
        max_batch=rng.choice((1, 2, 3)),
        use_cache=rng.random() < 0.3,
        max_retries=rng.choice((0, 1, 2)),
        death_rate=rng.choice((0.0, 0.0, 0.15, 0.4)),
        death_seed=rng.randrange(1 << 30),
    )
    handles: list[str] = []
    n_handles = 0
    for _ in range(ops):
        kind = rng.choices(
            OP_KINDS, weights=(10, 4, 4, 1, 2, 2), k=1
        )[0]
        client = rng.randrange(clients)
        if kind == "submit":
            n_handles += 1
            handle = f"h{n_handles}"
            handles.append(handle)
            script.ops.append({
                "op": "submit",
                "client": client,
                "handle": handle,
                "scenario": rng.choices(
                    SIM_SCENARIOS, weights=(6, 3, 1), k=1
                )[0],
                "x": rng.randrange(3),
                "priority": rng.choice(PRIORITIES),
            })
        elif kind in ("cancel", "await"):
            if not handles:
                continue
            # bias toward recent handles: those are the ones still open
            idx = max(0, len(handles) - 1 - int(abs(rng.gauss(0, 2))))
            script.ops.append({
                "op": kind, "client": client, "handle": handles[idx],
            })
        elif kind == "drain":
            script.ops.append({"op": "drain", "client": client})
        elif kind == "advance":
            script.ops.append({
                "op": "advance", "client": client,
                "dt": round(rng.uniform(0.5, 3.0), 3),
            })
        elif kind == "fault":
            script.ops.append({
                "op": "fault", "client": client,
                "node": rng.randrange(3),
                # < declare_at (4 with the world's detector config) is a
                # flap the detector must absorb; >= is a real crash
                "polls": rng.choice((1, 2, 3, 3, 5)),
            })
    # every generated script ends by awaiting all handles, so quiescence
    # invariants always apply to the full submission set
    for handle in handles:
        script.ops.append({
            "op": "await", "client": rng.randrange(clients),
            "handle": handle,
        })
    return script
