"""Virtual monotonic time with deterministic timers.

:class:`SimClock` is the single time source of a simulated world: the
serving runtime's ``clock=`` seam reads it, its ``sleeper=`` seam
advances it, and periodic activities that production runs on real
threads (snapshot exporter ticks, failure-detector heartbeats) register
as timers that fire *during* advancement, at their exact due times, in
deterministic order.  Nothing here reads the real clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["SimClock"]


class SimClock:
    """Deterministic virtual time: ``now()``, ``sleep()``, timers.

    Time only moves through :meth:`advance` (or its alias
    :meth:`sleep`, the shape the runtime's ``sleeper=`` seam expects).
    Timers due within an advance fire in (due-time, registration) order
    with :meth:`now` set to their exact due time, so a periodic
    heartbeat polled through the clock lands on a precise grid — the
    property the detector-hysteresis invariant leans on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: heap of (due, seq, interval|None, name, fn)
        self._timers: list[tuple[float, int, float | None, str, Callable]] = []
        self._seq = 0
        self.fired = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    #: the clock object itself is callable, matching the ``clock=`` seams
    __call__ = now

    def _push(self, due: float, interval: float | None, name: str,
              fn: Callable[[], Any]) -> None:
        heapq.heappush(self._timers, (due, self._seq, interval, name, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], Any],
              name: str = "") -> None:
        """Fire ``fn`` once, ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._push(self._now + delay, None, name, fn)

    def every(self, interval: float, fn: Callable[[], Any],
              name: str = "") -> None:
        """Fire ``fn`` every ``interval`` seconds, first at now+interval."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._push(self._now + interval, interval, name, fn)

    def next_due(self) -> float | None:
        """Virtual time of the nearest pending timer (None when idle)."""
        return self._timers[0][0] if self._timers else None

    def advance(self, dt: float) -> int:
        """Move time forward ``dt`` seconds, firing due timers in order.

        Returns the number of timer fires.  Each timer runs with
        :meth:`now` equal to its due time; periodic timers re-arm before
        running, so a callback advancing the clock recursively (unusual,
        but legal) stays well-ordered.
        """
        if dt < 0:
            raise ValueError(f"cannot advance by {dt}; time is monotonic")
        target = self._now + dt
        fired = 0
        while self._timers and self._timers[0][0] <= target:
            due, _, interval, name, fn = heapq.heappop(self._timers)
            self._now = max(self._now, due)
            if interval is not None:
                self._push(due + interval, interval, name, fn)
            fn()
            fired += 1
        self._now = target
        self.fired += fired
        return fired

    #: the shape the runtime's ``sleeper=`` seams expect
    sleep = advance
